"""Shared benchmark fixtures.

Benchmarks run at the scale named by ``REPRO_SCALE`` (default "tiny").
The expensive inputs (world build, audit, national dataset) are
materialized once per session *before* timing starts, so each benchmark
measures the analysis it names, not world construction.
"""

from __future__ import annotations

import pytest

from repro.analysis.context import ExperimentContext


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    ctx = ExperimentContext.at_scale()
    # Materialize the memoized inputs outside the timed region.
    _ = ctx.world
    _ = ctx.report
    _ = ctx.national
    return ctx


def show(result) -> None:
    """Print an experiment result beneath the benchmark output."""
    print()
    print(result.render())
