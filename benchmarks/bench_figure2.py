"""Figure 2 — serviceability rates by ISP and state."""

from conftest import show

from repro.analysis import figure2


def test_fig2a_by_isp(benchmark, context):
    analysis = context.report.serviceability
    rates = benchmark(analysis.rate_by_isp)
    assert rates["centurylink"] > rates["att"]


def test_fig2b_by_state(benchmark, context):
    analysis = context.report.serviceability
    rates = benchmark(analysis.rate_by_state)
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())


def test_fig2c_att_states(benchmark, context):
    analysis = context.report.serviceability
    distribution = benchmark(analysis.isp_state_distribution, "att")
    assert distribution


def test_figure2_full_experiment(benchmark, context):
    result = benchmark(figure2.run, context)
    show(result)
