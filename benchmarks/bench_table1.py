"""Table 1 — certified vs advertised speeds, and Q2 compliance."""

from conftest import show

from repro.analysis import table1


def test_table1_tier_distributions(benchmark, context):
    compliance = context.report.compliance
    table = benchmark(compliance.table1)
    assert len(table) > 0


def test_table1_compliance_rates(benchmark, context):
    compliance = context.report.compliance
    rates = benchmark(compliance.rate_by_isp)
    assert rates["consolidated"] > rates["att"]


def test_table1_full_experiment(benchmark, context):
    result = benchmark(table1.run, context)
    show(result)
