"""Table 3 — CAF addresses collected per ISP per state."""

from conftest import show

from repro.analysis.tables34 import run_table3
from repro.synth.calibration import TABLE3_QUERIED_ADDRESSES


def test_table3_collection_footprint(benchmark, context):
    result = benchmark(run_table3, context)
    show(result)
    table = result.tables["table3"]
    cells = {(row["state"], row["isp"]) for row in table.iter_rows()}
    # Every collected cell exists in the paper's footprint.
    for state, isp in cells:
        assert isp in TABLE3_QUERIED_ADDRESSES[state], (state, isp)
