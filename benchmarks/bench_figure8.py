"""Figure 8 — CDF of the percentage of addresses collected per CBG."""

from conftest import show

from repro.analysis.collection_figures import run_figure8


def test_fig8_collected_fraction_cdfs(benchmark, context):
    result = benchmark(run_figure8, context)
    show(result)
    assert result.series
