"""Longitudinal — incremental vs from-scratch wave timing.

The panel's pitch is that a re-audit costs O(churn), not O(world):
a wave in which c% of cells churned should re-query ~c% of the
campaign. This benchmark measures that directly, at several churn
rates: each wave's incremental cost (digesting every cell + querying
the changed ones + the replay merge) against a from-scratch
re-collection of the same evolved world.

The acceptance bar is a >= 3x wall-clock speedup for the incremental
waves at 10% cell churn.

Unlike the earlier free-text benchmarks, the results are also written
machine-readable — ``benchmarks/BENCH_longitudinal.json`` — so bench
trajectories can be tracked across commits. Run at study scale with
``REPRO_SCALE=small`` or ``paper``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.collection import CollectionCampaign, collect_q3_dataset
from repro.longitudinal import PanelCampaign
from repro.synth.churn import ChurnModel, churned_world

CELL_RATES = (0.05, 0.10, 0.30)
HORIZONS = (1, 2)
OUTPUT_PATH = Path(__file__).with_name("BENCH_longitudinal.json")

# The speedup the ISSUE's acceptance criterion demands at 10% churn.
REQUIRED_SPEEDUP_AT_10PCT = 3.0


def _scratch_seconds(world, model, horizon) -> float:
    """Wall time of a from-scratch re-collection at one horizon.

    The evolved world is built *outside* the timed region on both
    sides of the comparison: in a real panel the world is reality —
    only collection work is on the meter.
    """
    evolved = churned_world(world, years=horizon, model=model)
    start = time.perf_counter()
    CollectionCampaign(evolved).run()
    collect_q3_dataset(evolved)
    return time.perf_counter() - start


def _run_rate(world, cell_rate: float) -> dict:
    model = ChurnModel(cell_rate=cell_rate)
    campaign = PanelCampaign(world, model=model, horizons=HORIZONS)
    waves = []
    for outcome in campaign.waves():
        if outcome.wave == 0:
            continue  # the snapshot is full-cost by definition
        incremental = outcome.digest_seconds + outcome.collect_seconds
        scratch = _scratch_seconds(world, model, outcome.horizon_years)
        waves.append({
            "wave": outcome.wave,
            "horizon_years": outcome.horizon_years,
            "requeried_cells": outcome.fresh_q12 + outcome.fresh_q3,
            "total_cells": (outcome.delta.total_q12
                            + outcome.delta.total_q3),
            "reuse_fraction": round(outcome.reuse_fraction, 4),
            "incremental_seconds": round(incremental, 4),
            "scratch_seconds": round(scratch, 4),
            "speedup": round(scratch / incremental, 2)
            if incremental > 0 else None,
        })
    return {"cell_rate": cell_rate, "waves": waves}


def test_incremental_vs_scratch_waves(benchmark, context):
    world = context.world

    # The benchmarked op: one full incremental panel at the acceptance
    # churn rate (snapshot + 2 delta waves).
    benchmark.pedantic(
        lambda: PanelCampaign(world, model=ChurnModel(cell_rate=0.10),
                              horizons=HORIZONS).run(),
        iterations=1, rounds=1)

    results = {
        "benchmark": "longitudinal",
        "scale": {
            "seed": world.config.seed,
            "address_scale": world.config.address_scale,
        },
        "horizons": list(HORIZONS),
        "cell_rates": [_run_rate(world, rate) for rate in CELL_RATES],
    }
    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")

    print()
    print(f"wrote {OUTPUT_PATH}")
    for entry in results["cell_rates"]:
        for wave in entry["waves"]:
            print(f"  cell_rate={entry['cell_rate']:.2f} "
                  f"wave={wave['wave']}: re-queried "
                  f"{wave['requeried_cells']}/{wave['total_cells']} cells, "
                  f"incremental {wave['incremental_seconds']:.2f}s vs "
                  f"scratch {wave['scratch_seconds']:.2f}s "
                  f"(x{wave['speedup']})")

    # The acceptance bar: >= 3x at 10% churn (averaged over the
    # incremental waves, so one unlucky wave cannot flake the bench).
    ten_pct = next(e for e in results["cell_rates"]
                   if e["cell_rate"] == 0.10)
    speedups = [w["speedup"] for w in ten_pct["waves"]
                if w["speedup"] is not None]
    assert speedups, "no incremental wave completed"
    mean_speedup = sum(speedups) / len(speedups)
    assert mean_speedup >= REQUIRED_SPEEDUP_AT_10PCT, (
        f"incremental waves at 10% churn averaged x{mean_speedup:.2f}, "
        f"below the x{REQUIRED_SPEEDUP_AT_10PCT} acceptance bar")
