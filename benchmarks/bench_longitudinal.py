"""Longitudinal — incremental vs from-scratch waves, analysis, storage.

The panel's pitch is that a re-audit costs O(churn), not O(world), and
since the analysis/CAS work that now holds *downstream* of collection
too. Three measurements, three acceptance bars, all at 10% cell churn:

* **collection** — each wave's incremental cost (digesting every cell
  + querying the changed ones + the replay merge) against a
  from-scratch re-collection of the same evolved world: >= 3x.
* **analysis** — each wave's digest-keyed row fold
  (:func:`repro.analysis.incremental.wave_analysis`, rows cached
  across waves) against the full recompute that rebuilds an
  ``AuditDataset`` from the entire merged logbook, over a
  :data:`PANEL_HORIZONS`-wave panel: >= 3x aggregate.
* **storage** — the format-2 panel store (cell CAS + thin manifests)
  against the format-1 layout that serialized every cell into every
  wave document: >= 2x fewer bytes on disk.

Results are written machine-readable to
``benchmarks/BENCH_longitudinal.json`` so bench trajectories can be
tracked across commits (the longitudinal CI job asserts the analysis
bar straight from the artifact). Run at study scale with
``REPRO_SCALE=small`` or ``paper``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.incremental import (
    full_wave_analysis,
    row_cache_for,
    wave_analysis,
)
from repro.core.collection import CollectionCampaign, collect_q3_dataset
from repro.longitudinal import PanelCampaign
from repro.runtime.checkpoint import _shard_to_json
from repro.synth.churn import ChurnModel, churned_world

CELL_RATES = (0.05, 0.10, 0.30)
HORIZONS = (1, 2)
# The >= 5-wave panel the analysis/storage acceptance bars run on.
PANEL_HORIZONS = (1, 2, 3, 4, 5)
ACCEPTANCE_CELL_RATE = 0.10
OUTPUT_PATH = Path(__file__).with_name("BENCH_longitudinal.json")

# The speedups/shrink the ISSUE's acceptance criteria demand at 10%
# churn.
REQUIRED_SPEEDUP_AT_10PCT = 3.0
REQUIRED_ANALYSIS_SPEEDUP = 3.0
REQUIRED_STORE_SHRINK = 2.0


def _scratch_seconds(world, model, horizon) -> float:
    """Wall time of a from-scratch re-collection at one horizon.

    The evolved world is built *outside* the timed region on both
    sides of the comparison: in a real panel the world is reality —
    only collection work is on the meter.
    """
    evolved = churned_world(world, years=horizon, model=model)
    start = time.perf_counter()
    CollectionCampaign(evolved).run()
    collect_q3_dataset(evolved)
    return time.perf_counter() - start


def _run_rate(world, cell_rate: float) -> dict:
    model = ChurnModel(cell_rate=cell_rate)
    campaign = PanelCampaign(world, model=model, horizons=HORIZONS)
    waves = []
    for outcome in campaign.waves():
        if outcome.wave == 0:
            continue  # the snapshot is full-cost by definition
        incremental = outcome.digest_seconds + outcome.collect_seconds
        scratch = _scratch_seconds(world, model, outcome.horizon_years)
        waves.append({
            "wave": outcome.wave,
            "horizon_years": outcome.horizon_years,
            "requeried_cells": outcome.fresh_q12 + outcome.fresh_q3,
            "total_cells": (outcome.delta.total_q12
                            + outcome.delta.total_q3),
            "reuse_fraction": round(outcome.reuse_fraction, 4),
            "incremental_seconds": round(incremental, 4),
            "scratch_seconds": round(scratch, 4),
            "speedup": round(scratch / incremental, 2)
            if incremental > 0 else None,
        })
    return {"cell_rate": cell_rate, "waves": waves}


def _v1_wave_bytes(outcome) -> int:
    """The bytes the format-1 store wrote for one wave: a single
    document embedding every cell's records (as the pre-CAS layout's
    double-encoded string payload)."""
    cell_payload = json.dumps(_shard_to_json(outcome.cells),
                              sort_keys=True, separators=(",", ":"))
    import hashlib

    document = {
        "format": 1,
        "fingerprint": "0" * 64,
        "wave": outcome.wave,
        "horizon_years": outcome.horizon_years,
        "counts": {"fresh_q12": outcome.fresh_q12,
                   "replayed_q12": outcome.replayed_q12,
                   "fresh_q3": outcome.fresh_q3,
                   "replayed_q3": outcome.replayed_q3},
        "cells_sha256": hashlib.sha256(
            cell_payload.encode("utf-8")).hexdigest(),
        "cells": cell_payload,
    }
    return len(json.dumps(document, sort_keys=True).encode("utf-8"))


def _run_panel_acceptance(world, tmp_path: Path) -> dict:
    """The 5-wave acceptance panel: per-wave analysis speedup and
    on-disk store shrink at 10% churn."""
    model = ChurnModel(cell_rate=ACCEPTANCE_CELL_RATE)
    campaign = PanelCampaign(world, model=model, horizons=PANEL_HORIZONS,
                             store_dir=str(tmp_path / "panel-store"))
    rows = row_cache_for(campaign)
    waves = []
    v1_bytes = 0
    incremental_total = full_total = 0.0
    for outcome in campaign.waves():
        start = time.perf_counter()
        wave_analysis(outcome, cache=rows)
        incremental_seconds = time.perf_counter() - start
        start = time.perf_counter()
        full_wave_analysis(outcome)
        full_seconds = time.perf_counter() - start
        v1_bytes += _v1_wave_bytes(outcome)
        if outcome.wave == 0:
            continue  # the snapshot's analysis is full-cost either way
        incremental_total += incremental_seconds
        full_total += full_seconds
        waves.append({
            "wave": outcome.wave,
            "requeried_cells": outcome.fresh_q12 + outcome.fresh_q3,
            "incremental_analysis_seconds": round(incremental_seconds, 5),
            "full_analysis_seconds": round(full_seconds, 5),
            "speedup": round(full_seconds / incremental_seconds, 2)
            if incremental_seconds > 0 else None,
        })
    cas_bytes = campaign.store.total_bytes()
    return {
        "cell_rate": ACCEPTANCE_CELL_RATE,
        "horizons": list(PANEL_HORIZONS),
        "analysis": {
            "waves": waves,
            "incremental_seconds_total": round(incremental_total, 5),
            "full_seconds_total": round(full_total, 5),
            "speedup_at_10pct": round(full_total / incremental_total, 2)
            if incremental_total > 0 else None,
            "row_cache_hits": rows.hits,
            "row_cache_misses": rows.misses,
        },
        "store": {
            "cas_bytes": cas_bytes,
            "v1_bytes": v1_bytes,
            "shrink_at_10pct": round(v1_bytes / cas_bytes, 2)
            if cas_bytes else None,
        },
    }


def test_incremental_vs_scratch_waves(benchmark, context, tmp_path):
    world = context.world

    # The benchmarked op: one full incremental panel at the acceptance
    # churn rate (snapshot + 2 delta waves).
    benchmark.pedantic(
        lambda: PanelCampaign(world, model=ChurnModel(cell_rate=0.10),
                              horizons=HORIZONS).run(),
        iterations=1, rounds=1)

    acceptance = _run_panel_acceptance(world, tmp_path)
    results = {
        "benchmark": "longitudinal",
        "scale": {
            "seed": world.config.seed,
            "address_scale": world.config.address_scale,
        },
        "horizons": list(HORIZONS),
        "cell_rates": [_run_rate(world, rate) for rate in CELL_RATES],
        "panel_5wave_10pct": acceptance,
    }
    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")

    print()
    print(f"wrote {OUTPUT_PATH}")
    for entry in results["cell_rates"]:
        for wave in entry["waves"]:
            print(f"  cell_rate={entry['cell_rate']:.2f} "
                  f"wave={wave['wave']}: re-queried "
                  f"{wave['requeried_cells']}/{wave['total_cells']} cells, "
                  f"incremental {wave['incremental_seconds']:.2f}s vs "
                  f"scratch {wave['scratch_seconds']:.2f}s "
                  f"(x{wave['speedup']})")
    analysis = acceptance["analysis"]
    store = acceptance["store"]
    print(f"  5-wave analysis: incremental "
          f"{analysis['incremental_seconds_total']:.3f}s vs full "
          f"{analysis['full_seconds_total']:.3f}s "
          f"(x{analysis['speedup_at_10pct']})")
    print(f"  5-wave store: CAS {store['cas_bytes']} bytes vs v1 "
          f"{store['v1_bytes']} bytes (x{store['shrink_at_10pct']})")

    # The acceptance bars. Collection: >= 3x at 10% churn (averaged
    # over the incremental waves, so one unlucky wave cannot flake the
    # bench).
    ten_pct = next(e for e in results["cell_rates"]
                   if e["cell_rate"] == 0.10)
    speedups = [w["speedup"] for w in ten_pct["waves"]
                if w["speedup"] is not None]
    assert speedups, "no incremental wave completed"
    mean_speedup = sum(speedups) / len(speedups)
    assert mean_speedup >= REQUIRED_SPEEDUP_AT_10PCT, (
        f"incremental waves at 10% churn averaged x{mean_speedup:.2f}, "
        f"below the x{REQUIRED_SPEEDUP_AT_10PCT} acceptance bar")
    # Analysis: >= 3x aggregate over the 5-wave panel's follow-ups.
    assert analysis["speedup_at_10pct"] >= REQUIRED_ANALYSIS_SPEEDUP, (
        f"incremental analysis at 10% churn ran x"
        f"{analysis['speedup_at_10pct']}, below the x"
        f"{REQUIRED_ANALYSIS_SPEEDUP} acceptance bar")
    # Storage: the CAS must shrink the panel >= 2x vs one-doc-per-wave.
    assert store["shrink_at_10pct"] >= REQUIRED_STORE_SHRINK, (
        f"panel CAS stored the 5-wave panel at only x"
        f"{store['shrink_at_10pct']} below the format-1 layout; the "
        f"bar is x{REQUIRED_STORE_SHRINK}")
