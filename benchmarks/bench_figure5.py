"""Figure 5 — Type B (CAF + competition) comparisons."""

from conftest import show

from repro.analysis.monopoly_figures import run_figure5


def test_fig5a_outcome_shares(benchmark, context):
    monopoly = context.report.monopoly
    shares = benchmark(monopoly.outcome_shares, "B", "competition")
    assert abs(sum(shares.values()) - 1.0) < 1e-9


def test_figure5_full_experiment(benchmark, context):
    result = benchmark(run_figure5, context)
    show(result)
