"""Campaign arithmetic — the paper's §1 feasibility claims."""

from repro.bqt.campaign import estimate_duration, plan_full_census, plan_study


def test_full_census_duration(benchmark):
    estimate = benchmark(lambda: estimate_duration(plan_full_census()))
    print(f"\nfull census: {estimate.wall_clock_months:.1f} months "
          f"(paper: >6 months), bottleneck {estimate.bottleneck_isp}")
    assert estimate.wall_clock_months > 6.0


def test_study_campaign_duration(benchmark):
    study = {"att": 233_000, "centurylink": 112_000,
             "frontier": 170_000, "consolidated": 23_000}
    estimate = benchmark(lambda: estimate_duration(plan_study(study)))
    print(f"\nstudy campaign: {estimate.wall_clock_months:.1f} months "
          "(the paper collected from June 2023 into late fall)")
    assert estimate.wall_clock_months < \
        estimate_duration(plan_full_census()).wall_clock_months
