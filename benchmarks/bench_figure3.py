"""Figure 3 — population density vs AT&T serviceability."""

from conftest import show

from repro.analysis import figure3


def test_fig3_density_correlation(benchmark, context):
    analysis = context.report.serviceability

    def pooled_correlation():
        from repro.stats.correlation import spearman
        rates = analysis.cbg_rates.where_equal(isp_id="att")
        return spearman(rates["population_density"], rates["rate"])

    result = benchmark(pooled_correlation)
    assert result.coefficient > 0.0  # density helps AT&T serviceability


def test_figure3_full_experiment(benchmark, context):
    result = benchmark(figure3.run, context)
    show(result)
