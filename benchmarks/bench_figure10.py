"""Figure 10 — geospatial distribution of AT&T serviceability."""

from conftest import show

from repro.analysis import figure10


def test_fig10_geospatial_rows(benchmark, context):
    result = benchmark(figure10.run, context)
    show(result)
    # Paper claim: rates fall away from city centers.
    for state in ("CA", "GA"):
        key = f"distance_rate_spearman_{state}"
        if key in result.scalars:
            assert result.scalars[key] < 0.3
