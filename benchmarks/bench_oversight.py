"""Oversight comparison — §2.4's critique of USAC reviews, quantified."""

from repro.core.oversight import compare_oversight


def test_oversight_comparison(benchmark, context):
    comparison = benchmark.pedantic(
        compare_oversight,
        args=(context.world,),
        kwargs={"isp_id": "att", "review_fractions": (0.01, 0.05)},
        iterations=1, rounds=1,
    )
    print()
    print(comparison.render())
    # The external audit should land close to truth.
    assert comparison.audit_error_pp < 12.0
