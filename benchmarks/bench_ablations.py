"""Ablation benches for the design choices DESIGN.md calls out."""

from conftest import show

from repro.analysis.ablations import (
    run_q3_granularity_ablation,
    run_retry_budget_ablation,
    run_sampling_floor_ablation,
    run_weighting_ablation,
)


def test_weighting_ablation(benchmark, context):
    result = benchmark(run_weighting_ablation, context)
    show(result)
    scalars = result.scalars
    assert 0.0 <= scalars["weighted_rate"] <= 1.0
    assert 0.0 <= scalars["unweighted_cbg_rate"] <= 1.0


def test_sampling_floor_ablation(benchmark, context):
    result = benchmark.pedantic(
        run_sampling_floor_ablation, args=(context,),
        iterations=1, rounds=1)
    show(result)
    sweep = result.tables["floor_sweep"]
    errors = {row["floor"]: row["abs_error_pp"] for row in sweep.iter_rows()}
    # The 30-floor estimate should not be worse than the 5-floor one by
    # a large margin (it queries strictly more addresses).
    assert errors[30] <= errors[5] + 10.0


def test_retry_budget_ablation(benchmark, context):
    result = benchmark.pedantic(
        run_retry_budget_ablation, args=(context,),
        iterations=1, rounds=1)
    show(result)
    sweep = result.tables["budget_sweep"]
    rows = sorted(sweep.iter_rows(), key=lambda r: r["max_attempts"])
    # More attempts → no more unknowns, and no less virtual time.
    assert rows[-1]["unknown_fraction"] <= rows[0]["unknown_fraction"] + 1e-9
    assert rows[-1]["virtual_hours"] >= rows[0]["virtual_hours"] - 1e-9


def test_q3_granularity_ablation(benchmark, context):
    result = benchmark(run_q3_granularity_ablation, context)
    show(result)
    assert result.scalars["num_cbgs"] <= result.scalars["num_blocks"]
