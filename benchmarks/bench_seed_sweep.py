"""Seed sweep — estimator variance across worlds (extension)."""

from conftest import show

from repro.analysis.seed_sweep import run_seed_sweep


def test_seed_sweep(benchmark, context):
    result = benchmark.pedantic(run_seed_sweep, args=(context,),
                                kwargs={"seeds": (0, 1, 2)},
                                iterations=1, rounds=1)
    show(result)
    # The estimator is stable across worlds at this scale.
    assert result.scalars["serviceability_spread_pp"] < 15.0
    assert 0.3 < result.scalars["serviceability_mean"] < 0.8
