"""Carriage values — §4.2's rate-leniency argument, quantified."""

from conftest import show

from repro.analysis.carriage import run


def test_carriage_values(benchmark, context):
    result = benchmark(run, context)
    show(result)
    scalars = result.scalars
    # The FCC floor (~0.11 Mbps/$) is far below urban value-for-money.
    assert scalars["fcc_implied_carriage_10mbps"] < 0.15
    # Most CAF households sit below the non-competitive urban median.
    assert scalars["share_below_urban_noncompetitive"] > 0.5
