"""Runtime — shard-count speedup curves and cache hits.

Two speedups matter and both are reported:

* **Virtual campaign speedup** — what the paper's fleet arithmetic
  cares about: the wall-clock a polite worker fleet needs for the
  merged query log (LPT schedule per ISP), at 1 vs N workers. This is
  deterministic in the world seed and must exceed 1 at 4 workers.
* **Host speedup** — process-pool wall time vs the serial backend on
  this machine, and the distributed fleet (leased subprocess workers
  over local sockets) vs both — the overhead of fault tolerance.
  Reported only when the host has the cores to show it (a single-core
  CI box runs the pool at a slowdown, not a speedup).

Like ``bench_longitudinal.py``, the results are also written
machine-readable — ``benchmarks/BENCH_runtime.json`` — so runtime
bench trajectories can be tracked across commits; each test merges
its own section into the artifact.

Run at study scale with ``REPRO_SCALE=small`` (the acceptance
configuration) or ``paper``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bqt.logbook import QueryLog
from repro.bqt.scheduler import schedule_campaign
from repro.core.pipeline import run_full_audit
from repro.runtime import AuditCache, RuntimeConfig, audit_digest, execute_campaign

SHARD_COUNTS = (1, 2, 4, 8)
WORKER_COUNTS = (1, 2, 4, 8)
OUTPUT_PATH = Path(__file__).with_name("BENCH_runtime.json")


def _merge_results(section: str, payload: dict) -> None:
    """Merge one test's section into the shared artifact, so the two
    benchmark tests can run in any order (or alone) without clobbering
    each other's numbers."""
    try:
        results = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        if not isinstance(results, dict):
            results = {}
    except (OSError, json.JSONDecodeError):
        results = {}
    results["benchmark"] = "runtime"
    results[section] = payload
    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")


def _merged_log(collection, q3) -> QueryLog:
    log = QueryLog()
    log.extend(collection.log)
    log.extend(q3.log)
    return log


def test_shard_speedup_curve(benchmark, context):
    world = context.world

    def sharded(shards: int):
        return execute_campaign(
            world, RuntimeConfig(shards=shards, backend="serial"))

    # The benchmarked op: the canonical 4-shard campaign.
    collection, q3 = benchmark.pedantic(
        sharded, args=(4,), iterations=1, rounds=1)

    print()
    print("serial host time by shard count (sharding overhead):")
    host_seconds = {}
    for shards in SHARD_COUNTS:
        start = time.perf_counter()
        sharded(shards)
        host_seconds[shards] = time.perf_counter() - start
        print(f"  shards={shards}: {host_seconds[shards]:.2f}s "
              f"(x{host_seconds[1] / host_seconds[shards]:.2f} vs 1 shard)")

    log = _merged_log(collection, q3)
    baseline_days = schedule_campaign(log, workers_per_isp=1).wall_clock_days
    print("virtual campaign speedup by polite fleet size "
          "(LPT schedule of the merged log):")
    speedups = {}
    for workers in WORKER_COUNTS:
        days = schedule_campaign(log, workers_per_isp=workers).wall_clock_days
        speedups[workers] = baseline_days / days
        print(f"  workers={workers}: {days:.2f} days "
              f"(speedup x{speedups[workers]:.2f})")

    # The acceptance bar: 4 polite workers beat 1 on campaign wall-clock.
    assert speedups[4] > 1.0
    # Sharding itself must not distort the measurement: same record
    # count at every shard count (merge is bit-identical; see tests).
    assert len(log) > 0

    pool_seconds = distributed_seconds = None
    cores = os.cpu_count() or 1
    if cores >= 4:
        start = time.perf_counter()
        execute_campaign(world, RuntimeConfig(shards=8, workers=4,
                                              backend="process"))
        pool_seconds = time.perf_counter() - start
        print(f"process pool (8 shards, 4 workers): {pool_seconds:.2f}s "
              f"(host speedup x{host_seconds[1] / pool_seconds:.2f})")

    # The distributed backend pays per-worker interpreter startup and
    # socket framing on top of fork cost; against the serial line that
    # gap is the price of machine-failure tolerance (leases,
    # checksummed frames, reassignment). Unlike the pool, this line is
    # measured on every host — overhead is meaningful even where
    # parallel speedup is not, so the fleet is sized to the cores
    # available and runs over TCP loopback (the cross-host transport,
    # so the measured framing cost is the real deployment's).
    fleet = max(1, min(4, cores))
    start = time.perf_counter()
    execute_campaign(world, RuntimeConfig(shards=8, workers=fleet,
                                          backend="distributed",
                                          worker_address="127.0.0.1:0"))
    distributed_seconds = time.perf_counter() - start
    versus_pool = ("" if pool_seconds is None else
                   f", x{pool_seconds / distributed_seconds:.2f} vs pool")
    print(f"distributed fleet (8 shards, {fleet} workers, TCP): "
          f"{distributed_seconds:.2f}s "
          f"(host speedup x{host_seconds[1] / distributed_seconds:.2f}"
          f"{versus_pool})")

    _merge_results("sharding", {
        "scale": {
            "seed": world.config.seed,
            "address_scale": world.config.address_scale,
        },
        "host_seconds_by_shards": {
            str(shards): round(seconds, 4)
            for shards, seconds in host_seconds.items()
        },
        "virtual_speedup_by_workers": {
            str(workers): round(speedup, 4)
            for workers, speedup in speedups.items()
        },
        "process_pool_seconds": (None if pool_seconds is None
                                 else round(pool_seconds, 4)),
        "distributed_seconds": (None if distributed_seconds is None
                                else round(distributed_seconds, 4)),
        "distributed_workers": fleet,
        "host_cores": cores,
    })
    print(f"wrote {OUTPUT_PATH}")


def test_cache_hit_speedup(benchmark, context, tmp_path):
    scenario = context.scenario
    cache = AuditCache(tmp_path)
    digest = audit_digest(
        scenario, None, ("att", "centurylink", "frontier", "consolidated"))
    config = RuntimeConfig(shards=4, backend="serial",
                           cache_dir=str(tmp_path))

    start = time.perf_counter()
    run_full_audit(scenario=scenario, parallel=config)
    cold_seconds = time.perf_counter() - start
    assert cache.get(digest) is not None

    report = benchmark(run_full_audit, scenario=scenario, parallel=config)
    assert report.headline()

    start = time.perf_counter()
    run_full_audit(scenario=scenario, parallel=config)
    warm_seconds = time.perf_counter() - start
    print()
    print(f"audit cold: {cold_seconds:.2f}s, cached: {warm_seconds:.2f}s "
          f"(x{cold_seconds / max(warm_seconds, 1e-9):.0f})")
    assert warm_seconds < cold_seconds
    _merge_results("cache", {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 2),
    })
    print(f"wrote {OUTPUT_PATH}")
