"""Equity — non-compliance by income quartile (extension)."""

from conftest import show

from repro.analysis.equity import run


def test_equity_breakdown(benchmark, context):
    result = benchmark(run, context)
    show(result)
    # Digital-divide shape: richer CBGs fare no worse than poorer ones.
    assert result.scalars["disparity_ratio_q4_over_q1"] >= 0.8
