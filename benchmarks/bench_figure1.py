"""Figure 1 — attributes of the public CAF dataset (six panels)."""

from conftest import show

from repro.analysis import figure1
from repro.stats.ecdf import ECDF


def test_fig1a_addresses_by_state(benchmark, context):
    counts = benchmark(context.national.caf_map.count_by_state)
    assert sum(counts.values()) == len(context.national.caf_map)


def test_fig1b_addresses_by_isp(benchmark, context):
    counts = benchmark(context.national.caf_map.count_by_isp)
    top4 = sum(sorted(counts.values(), reverse=True)[:4])
    assert 0.5 < top4 / len(context.national.caf_map) < 0.75


def test_fig1c_addresses_per_cb_cbg(benchmark, context):
    def build_cdfs():
        caf_map = context.national.caf_map
        return (ECDF(list(caf_map.addresses_per_block().values())),
                ECDF(list(caf_map.addresses_per_block_group().values())))

    cb_cdf, cbg_cdf = benchmark(build_cdfs)
    assert cbg_cdf.median() >= cb_cdf.median()


def test_fig1d_disbursements_by_state(benchmark, context):
    totals = benchmark(context.national.ledger.by_state)
    assert all(amount >= 0 for amount in totals.values())


def test_fig1e_disbursements_by_isp(benchmark, context):
    totals = benchmark(context.national.ledger.by_isp)
    assert max(totals, key=totals.get) == "centurylink"


def test_fig1f_certified_speeds(benchmark, context):
    def certified_cdf():
        speeds = [r.certified_download_mbps
                  for r in context.national.caf_map.for_isp("att")]
        return ECDF(speeds)

    cdf = benchmark(certified_cdf)
    assert cdf.fraction_at_least(10.0) == 1.0


def test_figure1_full_experiment(benchmark, context):
    result = benchmark(figure1.run, context)
    show(result)
