"""Figure 11 — blocks where CAF performs worse."""

from conftest import show

from repro.analysis.monopoly_figures import run_figure11


def test_fig11_loser_side_cdfs(benchmark, context):
    monopoly = context.report.monopoly
    increase = benchmark(monopoly.pct_increase_cdf, "A", "monopoly", "rival")
    assert increase.median() > 0


def test_figure11_full_experiment(benchmark, context):
    result = benchmark(run_figure11, context)
    show(result)
    assert result.scalars["median_pct_increase_monopoly_wins"] < \
        result.scalars["paper_median_pct_increase_monopoly_wins"] * 3
