"""Figure 7 — CDF of the percentage of addresses queried per CBG."""

from conftest import show

from repro.analysis.collection_figures import run_figure7


def test_fig7_queried_fraction_cdfs(benchmark, context):
    result = benchmark(run_figure7, context)
    show(result)
    assert result.series
