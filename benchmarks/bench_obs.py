"""Observability overhead — the bench that keeps repro.obs honest.

Two numbers gate the obs subsystem (the ISSUE 9 acceptance bars), both
written to ``benchmarks/BENCH_obs.json``:

* **campaign overhead** — the same sharded serial campaign timed with
  tracing+metrics fully on (``REPRO_TRACE=1`` + a sidecar dir) vs off
  must cost at most 5% extra wall clock. Runs are interleaved and the
  per-arm minimum over several rounds is compared, so thermal drift
  hits both arms alike.
* **trace growth** — the published sidecar must stay bounded per
  shard: a handful of spans each, never a per-query firehose.

Before any timing, the bench re-proves the byte contract: the traced
campaign's canonical logbook bytes equal the untraced campaign's.

Run at study scale with ``REPRO_SCALE=small`` (the acceptance
configuration) or ``paper``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.metrics import REGISTRY
from repro.obs.trace import TraceStore, drain_spans
from repro.runtime import RuntimeConfig, execute_campaign

SHARDS = 4
ROUNDS = 5
OVERHEAD_CEILING = 0.05      # the <=5% acceptance bar
TRACE_BYTES_PER_SHARD = 4096  # sidecar growth bound
OUTPUT_PATH = Path(__file__).with_name("BENCH_obs.json")


def _canonical_bytes(collection, q3) -> bytes:
    # Dataclass reprs in merge order: enough to catch any traced-run
    # divergence here (the full canonical proof lives in the
    # equivalence suite).
    return (repr(list(collection.log))
            + repr(list(q3.log))).encode("utf-8")


def _run(world):
    return execute_campaign(
        world, RuntimeConfig(shards=SHARDS, backend="serial"))


def test_tracing_overhead_and_sidecar_growth(context, tmp_path):
    world = context.world
    trace_dir = tmp_path / "traces"

    def untraced():
        os.environ.pop("REPRO_TRACE", None)
        os.environ.pop("REPRO_TRACE_DIR", None)
        return _run(world)

    def traced():
        os.environ["REPRO_TRACE"] = "1"
        os.environ["REPRO_TRACE_DIR"] = str(trace_dir)
        try:
            return _run(world)
        finally:
            os.environ.pop("REPRO_TRACE", None)
            os.environ.pop("REPRO_TRACE_DIR", None)

    # The byte contract first: tracing must not move a single output
    # byte. (Also warms every cache, so round 1 isn't a cold outlier.)
    baseline_bytes = _canonical_bytes(*untraced())
    assert _canonical_bytes(*traced()) == baseline_bytes

    off_seconds, on_seconds = [], []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        untraced()
        off_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        traced()
        on_seconds.append(time.perf_counter() - start)
    drain_spans()  # leave the process buffer clean for other benches

    best_off, best_on = min(off_seconds), min(on_seconds)
    overhead = best_on / best_off - 1.0

    [namespace] = [p for p in trace_dir.iterdir() if p.is_dir()]
    store = TraceStore(trace_dir, namespace.name)
    sidecar_bytes = sum(
        path.stat().st_size
        for path in namespace.glob("trace-*.jsonl"))
    spans = store.load_spans()
    runs_traced = 1 + ROUNDS  # the equivalence run plus the timed ones
    bytes_per_shard = sidecar_bytes / (SHARDS * runs_traced)

    snapshot = REGISTRY.snapshot()
    names = {entry["name"] for entry in snapshot["metrics"]}

    print()
    print(f"campaign off: {best_off:.3f}s  on: {best_on:.3f}s  "
          f"overhead {overhead * 100:+.2f}% (ceiling "
          f"{OVERHEAD_CEILING * 100:.0f}%)")
    print(f"sidecar: {sidecar_bytes} bytes, {len(spans)} spans over "
          f"{runs_traced} traced runs = {bytes_per_shard:.0f} "
          f"bytes/shard (bound {TRACE_BYTES_PER_SHARD})")
    print(f"registry carries {len(names)} instruments")

    assert overhead <= OVERHEAD_CEILING, (
        f"tracing+metrics overhead {overhead * 100:.2f}% exceeds the "
        f"{OVERHEAD_CEILING * 100:.0f}% ceiling")
    assert spans, "traced runs must publish spans to the sidecar"
    assert bytes_per_shard <= TRACE_BYTES_PER_SHARD, (
        f"{bytes_per_shard:.0f} trace bytes/shard exceeds the "
        f"{TRACE_BYTES_PER_SHARD} bound — span spam in a hot path?")
    assert "shards_completed_total" in names

    OUTPUT_PATH.write_text(json.dumps({
        "benchmark": "obs",
        "scale": {
            "seed": world.config.seed,
            "address_scale": world.config.address_scale,
        },
        "shards": SHARDS,
        "rounds": ROUNDS,
        "campaign_seconds_off": round(best_off, 4),
        "campaign_seconds_on": round(best_on, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "sidecar_bytes": sidecar_bytes,
        "sidecar_spans": len(spans),
        "trace_bytes_per_shard": round(bytes_per_shard, 1),
        "trace_bytes_per_shard_bound": TRACE_BYTES_PER_SHARD,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
