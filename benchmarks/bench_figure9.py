"""Figure 9 — sampling-rate sensitivity (Appendix 8.2).

The sensitivity protocol re-queries tens of CBGs at several rates, so
the timed region is the whole replay (it is the experiment).
"""

from conftest import show

from repro.analysis import figure9
from repro.core.sensitivity import run_sensitivity_analysis


def test_fig9_sensitivity_replay(benchmark, context):
    result = benchmark.pedantic(
        run_sensitivity_analysis,
        args=(context.world,),
        kwargs={"num_cbgs": 8, "rates": (0.05, 0.15, 0.25)},
        iterations=1, rounds=1,
    )
    assert result.num_cbgs > 0


def test_figure9_full_experiment(benchmark, context):
    _ = context.sensitivity  # materialize outside timing
    result = benchmark(figure9.run, context)
    show(result)
