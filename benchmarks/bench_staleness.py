"""Staleness — §8.1's one-shot-snapshot limitation, measured."""

from conftest import show

from repro.analysis.staleness import run


def test_staleness_drift(benchmark, context):
    result = benchmark.pedantic(run, args=(context,), kwargs={"years": (2,)},
                                iterations=1, rounds=1)
    show(result)
    drift = result.scalars["compliance_drift_pp_at_max_horizon"]
    # Upgrade-dominated churn should not make the snapshot look
    # *better* than the future: compliance drifts up or stays flat.
    assert drift > -8.0
