"""Figure 6 — CAF speeds in Type A vs Type B blocks."""

from conftest import show

from repro.analysis.monopoly_figures import run_figure6


def test_fig6a_caf_speed_by_type(benchmark, context):
    monopoly = context.report.monopoly
    cdfs = benchmark(monopoly.caf_speed_cdf_by_type)
    assert "A" in cdfs


def test_figure6_full_experiment(benchmark, context):
    result = benchmark(run_figure6, context)
    show(result)
