"""Tabular kernels — vectorized groupby/join/reduce vs the row loops.

PR 7 replaced the tabular engines' per-row Python loops (dict bucket
groupby index, dict-probe join, per-row dict reduce) with factorized,
stable-argsort segment kernels. This bench re-measures that claim on
synthetic audit-shaped data at 10x the full-study tabular load and
proves the replacements exact:

* **groupby** — ``group_by(["isp", "cbg"]).agg(...)`` with segment
  kernels against the historical dict-bucket index + per-group
  reducers, verified bit-equal with the exact ``Table.__eq__`` (the
  benched aggregations reduce integer columns, where reduceat and
  ``np.sum`` agree exactly);
* **join** — the ``searchsorted`` probe against the dict probe,
  attaching CBG metadata to every audit row, verified bit-equal;
* **reduce** — the vectorized :func:`repro.analysis.incremental
  .reduce_rows` fold against the historical per-row fold, verified
  byte-equal on the canonical JSON of the resulting
  :class:`WaveAnalysis` (the ``np.dot`` summation-order contract).

Results are written machine-readable to ``benchmarks/
BENCH_tabular.json``; the tabular CI job asserts the >= 5x groupby and
combined groupby+reduce floors straight from the artifact. The reduce
alone clears a softer bar: its runtime is dominated by the per-row
dict field extraction both folds must do, so its honest win is ~2x.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.analysis.incremental import WaveAnalysis, reduce_rows
from repro.stats.weighted import weighted_mean
from repro.tabular import Table, join

OUTPUT_PATH = Path(__file__).with_name("BENCH_tabular.json")

# 10x the tabular load of the address_scale=1.0 study.
SCALE_FACTOR = 10
N_ROWS = 200_000
N_ISPS = 8
N_CBGS = 5_000
N_Q3_BLOCKS = 2_000
TIMING_ROUNDS = 3

# The ISSUE 7 acceptance floors, asserted here and from the artifact
# in CI.
REQUIRED_GROUPBY_SPEEDUP = 5.0
REQUIRED_COMBINED_SPEEDUP = 5.0
# In-bench sanity floors (not CI-asserted: see the module docstring).
REQUIRED_JOIN_SPEEDUP = 2.0
REQUIRED_REDUCE_SPEEDUP = 1.5


# ----------------------------------------------------------------------
# Synthetic audit-shaped data
# ----------------------------------------------------------------------

def _synthetic_audit_table(rng: np.random.Generator) -> Table:
    """Per-record rows as the collection layer emits them: one row per
    (address, ISP) query with string geo keys."""
    isp_names = [f"isp{i:02d}" for i in range(N_ISPS)]
    cbg_names = [f"{500019600000 + i:012d}" for i in range(N_CBGS)]
    isp_idx = rng.integers(0, N_ISPS, N_ROWS)
    cbg_idx = rng.integers(0, N_CBGS, N_ROWS)
    return Table({
        "isp": np.asarray([isp_names[i] for i in isp_idx], dtype=object),
        "cbg": np.asarray([cbg_names[i] for i in cbg_idx], dtype=object),
        "served": (rng.random(N_ROWS) < 0.7).astype(np.int64),
        "weight": rng.integers(1, 60, N_ROWS).astype(np.int64),
    })


def _synthetic_cbg_metadata(rng: np.random.Generator) -> Table:
    cbg_names = [f"{500019600000 + i:012d}" for i in range(N_CBGS)]
    return Table({
        "cbg": np.asarray(cbg_names, dtype=object),
        "density": rng.random(N_CBGS) * 5_000.0,
        "rural": rng.random(N_CBGS) < 0.4,
    })


def _synthetic_q12_rows(rng: np.random.Generator) -> list[dict]:
    """Per-cell analysis rows as wave_analysis folds them — roughly
    one per (ISP, CBG) cell at this scale."""
    rows = []
    for isp in range(N_ISPS):
        for cbg in range(N_CBGS):
            rows.append({
                "isp_id": f"isp{isp:02d}",
                "state": "VT",
                "cbg": f"{500019600000 + cbg:012d}",
                "served_rate": float(rng.random()),
                "compliant_rate": float(rng.random()),
                "queried": int(rng.integers(1, 12)),
                "weight": int(rng.integers(1, 60)),
            })
    return rows


def _synthetic_q3_rows(rng: np.random.Generator) -> list[dict]:
    modes = ("fiber", "dsl", "fixed_wireless")
    return [
        {"analyzed": bool(rng.random() < 0.8),
         "records": int(rng.integers(0, 40)),
         "modes": {modes[int(rng.integers(0, 3))]: int(rng.integers(1, 4))}}
        for _ in range(N_Q3_BLOCKS)
    ]


# ----------------------------------------------------------------------
# The historical row-loop implementations (pre-PR 7), verbatim
# ----------------------------------------------------------------------

def _legacy_group_index(table: Table,
                        keys: list[str]) -> dict[tuple, np.ndarray]:
    columns = [table[key] for key in keys]
    buckets: dict[tuple, list[int]] = {}
    for row_index in range(len(table)):
        key = tuple(column[row_index] for column in columns)
        buckets.setdefault(key, []).append(row_index)
    return {
        key: np.asarray(indices, dtype=np.intp)
        for key, indices in buckets.items()
    }


def _legacy_agg(table: Table, keys: list[str],
                aggregations: dict[str, tuple[str, Callable]]) -> Table:
    index = _legacy_group_index(table, keys)
    rows = []
    for key, indices in index.items():
        row: dict[str, Any] = dict(zip(keys, key))
        for name, (source, reducer) in aggregations.items():
            row[name] = reducer(table[source][indices])
        rows.append(row)
    return Table.from_rows(rows, columns=[*keys, *aggregations])


def _legacy_join(left: Table, right: Table, on: str) -> Table:
    keys = [on]
    right_index: dict[tuple, list[int]] = {}
    right_key_columns = [right[key] for key in keys]
    for row_index in range(len(right)):
        key = tuple(column[row_index] for column in right_key_columns)
        right_index.setdefault(key, []).append(row_index)

    left_key_columns = [left[key] for key in keys]
    left_rows: list[int] = []
    right_rows: list[int] = []
    for row_index in range(len(left)):
        key = tuple(column[row_index] for column in left_key_columns)
        matches = right_index.get(key)
        if matches:
            for match in matches:
                left_rows.append(row_index)
                right_rows.append(match)

    left_take = np.asarray(left_rows, dtype=np.intp)
    right_take = np.asarray(right_rows, dtype=np.intp)
    columns: dict[str, np.ndarray] = {}
    for name in left.column_names:
        columns[name] = left[name][left_take] if left_take.size else left[name][:0]
    for name in right.column_names:
        if name in keys:
            continue
        source = right[name]
        columns[name] = (source[right_take] if right_take.size
                         else source[:0])
    return Table(columns)


def _legacy_weighted(rows: list[dict], rate_key: str) -> float:
    return weighted_mean([row[rate_key] for row in rows],
                         [row["weight"] for row in rows])


def _legacy_reduce_rows(q12_rows: list[dict],
                        q3_rows: list[dict]) -> WaveAnalysis:
    if not q12_rows:
        raise ValueError("audit dataset is empty — no conclusive records")
    rows_by_isp: dict[str, list[dict]] = {}
    for row in q12_rows:
        rows_by_isp.setdefault(row["isp_id"], []).append(row)
    by_isp = {
        isp: {
            "serviceability": _legacy_weighted(rows_by_isp[isp], "served_rate"),
            "compliance": _legacy_weighted(rows_by_isp[isp], "compliant_rate"),
        }
        for isp in sorted(rows_by_isp)
    }
    mode_counts: dict[str, int] = {}
    for row in q3_rows:
        for mode, count in row["modes"].items():
            mode_counts[mode] = mode_counts.get(mode, 0) + count
    return WaveAnalysis(
        serviceability=_legacy_weighted(q12_rows, "served_rate"),
        compliance=_legacy_weighted(q12_rows, "compliant_rate"),
        by_isp=by_isp,
        q12_cells=len(q12_rows),
        q12_queried=sum(row["queried"] for row in q12_rows),
        q3_analyzed_blocks=sum(1 for row in q3_rows if row["analyzed"]),
        q3_records=sum(row["records"] for row in q3_rows),
        q3_mode_counts=dict(sorted(mode_counts.items())),
    )


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------

def _best_of(op: Callable[[], Any],
             rounds: int = TIMING_ROUNDS) -> tuple[float, Any]:
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = op()
        best = min(best, time.perf_counter() - start)
    return best, result


def _canonical_analysis_bytes(analysis: WaveAnalysis) -> bytes:
    return json.dumps(analysis.to_payload(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def test_tabular_kernels_vs_row_loops():
    rng = np.random.default_rng(7)
    records = _synthetic_audit_table(rng)
    metadata = _synthetic_cbg_metadata(rng)
    q12_rows = _synthetic_q12_rows(rng)
    q3_rows = _synthetic_q3_rows(rng)

    # groupby: the per-CBG rollup every audit metric starts from.
    # Integer sources, where segment kernels and the historical
    # per-group reducers agree bit for bit.
    legacy_aggs = {"served": ("served", np.sum),
                   "queried": ("served", len),
                   "min_weight": ("weight", np.min),
                   "max_weight": ("weight", np.max)}
    groupby_legacy_seconds, groupby_expected = _best_of(
        lambda: _legacy_agg(records, ["isp", "cbg"], legacy_aggs))
    groupby_seconds, groupby_result = _best_of(
        lambda: records.group_by(["isp", "cbg"]).agg(
            served=("served", "sum"),
            queried=("served", "count"),
            min_weight=("weight", "min"),
            max_weight=("weight", "max")))
    assert groupby_result == groupby_expected  # exact __eq__

    # join: attach CBG metadata to every audit row.
    join_legacy_seconds, join_expected = _best_of(
        lambda: _legacy_join(records, metadata, "cbg"))
    join_seconds, join_result = _best_of(
        lambda: join(records, metadata, on="cbg"))
    assert join_result == join_expected

    # reduce: the per-wave fold, np.dot summation order included.
    reduce_legacy_seconds, reduce_expected = _best_of(
        lambda: _legacy_reduce_rows(q12_rows, q3_rows))
    reduce_seconds, reduce_result = _best_of(
        lambda: reduce_rows(q12_rows, q3_rows))
    assert _canonical_analysis_bytes(reduce_result) == \
        _canonical_analysis_bytes(reduce_expected)

    groupby_speedup = groupby_legacy_seconds / groupby_seconds
    join_speedup = join_legacy_seconds / join_seconds
    reduce_speedup = reduce_legacy_seconds / reduce_seconds
    combined_speedup = ((groupby_legacy_seconds + reduce_legacy_seconds)
                        / (groupby_seconds + reduce_seconds))

    results = {
        "benchmark": "tabular",
        "scale": {
            "scale_factor": SCALE_FACTOR,
            "rows": N_ROWS,
            "isps": N_ISPS,
            "cbgs": N_CBGS,
            "q12_cells": len(q12_rows),
            "q3_blocks": len(q3_rows),
        },
        "groupby": {
            "legacy_seconds": round(groupby_legacy_seconds, 5),
            "vectorized_seconds": round(groupby_seconds, 5),
            "speedup": round(groupby_speedup, 2),
        },
        "join": {
            "legacy_seconds": round(join_legacy_seconds, 5),
            "vectorized_seconds": round(join_seconds, 5),
            "speedup": round(join_speedup, 2),
        },
        "reduce": {
            "legacy_seconds": round(reduce_legacy_seconds, 5),
            "vectorized_seconds": round(reduce_seconds, 5),
            "speedup": round(reduce_speedup, 2),
        },
        "groupby_reduce_speedup": round(combined_speedup, 2),
    }
    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")

    print()
    print(f"wrote {OUTPUT_PATH}")
    print(f"  groupby ({N_ROWS} rows -> {len(groupby_result)} groups): "
          f"legacy {groupby_legacy_seconds:.3f}s vs vectorized "
          f"{groupby_seconds:.3f}s (x{groupby_speedup:.1f})")
    print(f"  join ({N_ROWS} x {N_CBGS}): legacy "
          f"{join_legacy_seconds:.3f}s vs vectorized "
          f"{join_seconds:.3f}s (x{join_speedup:.1f})")
    print(f"  reduce ({len(q12_rows)} cell rows): legacy "
          f"{reduce_legacy_seconds:.3f}s vs vectorized "
          f"{reduce_seconds:.3f}s (x{reduce_speedup:.1f})")
    print(f"  combined groupby+reduce: x{combined_speedup:.1f}")

    assert groupby_speedup >= REQUIRED_GROUPBY_SPEEDUP, (
        f"vectorized groupby ran x{groupby_speedup:.2f}, below the "
        f"x{REQUIRED_GROUPBY_SPEEDUP} acceptance floor")
    assert combined_speedup >= REQUIRED_COMBINED_SPEEDUP, (
        f"combined groupby+reduce ran x{combined_speedup:.2f}, below "
        f"the x{REQUIRED_COMBINED_SPEEDUP} acceptance floor")
    assert join_speedup >= REQUIRED_JOIN_SPEEDUP, (
        f"vectorized join ran x{join_speedup:.2f}, below the "
        f"x{REQUIRED_JOIN_SPEEDUP} sanity floor")
    assert reduce_speedup >= REQUIRED_REDUCE_SPEEDUP, (
        f"vectorized reduce ran x{reduce_speedup:.2f}, below the "
        f"x{REQUIRED_REDUCE_SPEEDUP} sanity floor")
