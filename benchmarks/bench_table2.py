"""Table 2 — errors in traceback per ISP."""

from conftest import show

from repro.analysis.collection_figures import run_table2


def test_table2_error_taxonomy(benchmark, context):
    result = benchmark(run_table2, context)
    show(result)
    rows = {row["isp"]: row for row in
            result.tables["table2"].iter_rows()}
    # The paper's distinctive shape.
    assert rows["centurylink"]["empty_traceback"] == \
        rows["centurylink"]["total_unknown"]
    assert rows["att"]["select_dropdown"] > rows["att"]["empty_traceback"]
