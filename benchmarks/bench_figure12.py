"""Figure 12 — per-address query times for each ISP."""

from conftest import show

from repro.analysis.collection_figures import run_figure12


def test_fig12_query_time_distributions(benchmark, context):
    result = benchmark(run_figure12, context)
    show(result)
    assert result.scalars["median_query_seconds_att"] > \
        result.scalars["median_query_seconds_consolidated"]
