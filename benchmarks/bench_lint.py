"""Lint engine throughput — cold scan vs warm fact-cache re-scan.

The whole-program pass added a per-module fact cache keyed by source
digest: a warm re-scan skips parsing (and the module rules) for every
unchanged file and rebuilds the project view from cached facts alone.
This bench times both arms over the real ``src/`` tree and writes
``benchmarks/BENCH_lint.json``:

* **cold seconds** — full scan with an empty cache (parse everything);
* **warm seconds** — same scan against the populated cache (parse
  nothing), which must clear the ``WARM_SPEEDUP_FLOOR``;
* the warm arm must report every module as a cache hit, and both arms
  must agree finding-for-finding — a cache that changes the answer is
  worse than no cache.

Interleaved best-of-N, like the other benches, so thermal drift hits
both arms alike.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.lint import run_scan

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_ROOT = REPO_ROOT / "src"
ROUNDS = 3
WARM_SPEEDUP_FLOOR = 1.5
OUTPUT_PATH = Path(__file__).with_name("BENCH_lint.json")


def test_warm_fact_cache_speedup(tmp_path):
    cache = tmp_path / "facts.json"

    # Populate the cache (and sanity-check the tree scans clean —
    # the committed baseline is empty, so src/ must be too).
    seeded = run_scan([SCAN_ROOT], root=REPO_ROOT, cache_path=cache)
    assert seeded.findings == []
    module_count = seeded.scanned_modules

    cold_seconds, warm_seconds = [], []
    cold_cache = tmp_path / "cold.json"
    for _ in range(ROUNDS):
        cold_cache.unlink(missing_ok=True)
        start = time.perf_counter()
        cold = run_scan([SCAN_ROOT], root=REPO_ROOT,
                        cache_path=cold_cache)
        cold_seconds.append(time.perf_counter() - start)
        start = time.perf_counter()
        warm = run_scan([SCAN_ROOT], root=REPO_ROOT, cache_path=cache)
        warm_seconds.append(time.perf_counter() - start)
        # The cache must be invisible in the answer and total in its
        # coverage: zero modules parsed warm, all of them cold.
        assert warm.findings == cold.findings
        assert (cold.scanned_modules, cold.cached_modules) \
            == (module_count, 0)
        assert (warm.scanned_modules, warm.cached_modules) \
            == (0, module_count)

    best_cold, best_warm = min(cold_seconds), min(warm_seconds)
    speedup = best_cold / best_warm

    print()
    print(f"{module_count} modules: cold {best_cold:.3f}s, "
          f"warm {best_warm:.3f}s, speedup x{speedup:.2f} "
          f"(floor x{WARM_SPEEDUP_FLOOR})")

    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm re-scan only x{speedup:.2f} over cold — the fact cache "
        f"is not pulling its weight (floor x{WARM_SPEEDUP_FLOOR})")

    OUTPUT_PATH.write_text(json.dumps({
        "benchmark": "lint",
        "modules": module_count,
        "rounds": ROUNDS,
        "cold_seconds": round(best_cold, 4),
        "warm_seconds": round(best_warm, 4),
        "warm_speedup": round(speedup, 2),
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
