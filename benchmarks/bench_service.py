"""Service — ingest throughput, restart cost, and read-path QPS.

Three measurements, one per moving part of :mod:`repro.service`:

* **submissions/sec** — framed-socket submissions into a paused
  service (``start_worker=False``): every acknowledgment is preceded
  by an fsynced journal entry, so this is the durable ingest rate,
  not a queueing mirage.
* **journal replay seconds** — cold-open a journal of
  :data:`REPLAY_ENTRIES` entries (chain verification included) and
  fold it into a :class:`~repro.service.journal.CoordinatorState`:
  the daemon's restart cost, which is the price of having no state
  but the log.
* **reader QPS** — panel cells and analysis rows served through
  :class:`~repro.service.reader.ServiceReader` after a panel job
  warmed the store: repeated reads are memoized dictionary hits, so
  this is the rate a dashboard can poll at.

Results are written machine-readable to
``benchmarks/BENCH_service.json`` (flat keys — the service CI job
asserts all three are present and the floors hold). Run at study
scale with ``REPRO_SCALE=small`` or ``paper``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.service import AuditService, Journal, ServiceClient, ServiceReader
from repro.service.journal import service_fingerprint

REPLAY_ENTRIES = 2000
SUBMISSIONS = 100
READER_QUERIES = 2000
OUTPUT_PATH = Path(__file__).with_name("BENCH_service.json")

# Acceptance floors (tiny scale, single-core CI box, fsync per entry).
MIN_SUBMISSIONS_PER_SECOND = 10.0
MAX_REPLAY_SECONDS = 10.0
MIN_READER_QPS = 500.0


def _merge_results(payload: dict) -> None:
    """Merge one test's keys into the shared artifact (tests run in
    any order, or alone, without clobbering each other's numbers)."""
    try:
        results = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        if not isinstance(results, dict):
            results = {}
    except (OSError, json.JSONDecodeError):
        results = {}
    results["benchmark"] = "service"
    results.update(payload)
    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True)
                           + "\n", encoding="utf-8")


def _campaign_spec(context) -> dict:
    from dataclasses import asdict

    return {"kind": "campaign", "scenario": asdict(context.scenario),
            "shards": 1}


def test_submission_throughput(benchmark, context, tmp_path):
    """Durable ingest rate: fsynced journal entry per acknowledgment."""
    spec = _campaign_spec(context)
    with AuditService(tmp_path / "journal", start_worker=False) as service:
        with ServiceClient(service.address) as client:
            benchmark.pedantic(client.submit, args=(spec,),
                               iterations=1, rounds=1)
            start = time.perf_counter()
            for _ in range(SUBMISSIONS):
                client.submit(spec)
            elapsed = time.perf_counter() - start
    rate = SUBMISSIONS / elapsed
    print()
    print(f"{SUBMISSIONS} submissions in {elapsed:.2f}s "
          f"({rate:.0f}/s, fsync per entry)")
    assert rate >= MIN_SUBMISSIONS_PER_SECOND
    _merge_results({"submissions_per_second": round(rate, 2),
                    "submissions": SUBMISSIONS})
    print(f"wrote {OUTPUT_PATH}")


def test_journal_replay_seconds(benchmark, tmp_path):
    """Restart cost: cold-open (chain verification) + state fold."""
    fingerprint = service_fingerprint("bench")
    journal = Journal(tmp_path, fingerprint)
    for index in range(REPLAY_ENTRIES):
        journal.append({"kind": "submitted", "job": f"job-{index:06d}",
                        "spec": {"kind": "campaign", "shards": 1}})
    journal.close()

    def cold_replay():
        reopened = Journal(tmp_path, fingerprint)
        try:
            return reopened.replay()
        finally:
            reopened.close()

    state = benchmark.pedantic(cold_replay, iterations=1, rounds=1)
    assert state.tip_seq == REPLAY_ENTRIES - 1
    start = time.perf_counter()
    state = cold_replay()
    elapsed = time.perf_counter() - start
    assert len(state.jobs) == REPLAY_ENTRIES
    print()
    print(f"replayed {REPLAY_ENTRIES} entries in {elapsed:.3f}s "
          f"({REPLAY_ENTRIES / elapsed:.0f} entries/s)")
    assert elapsed <= MAX_REPLAY_SECONDS
    _merge_results({"journal_replay_seconds": round(elapsed, 4),
                    "replay_entries": REPLAY_ENTRIES})
    print(f"wrote {OUTPUT_PATH}")


def test_reader_qps(benchmark, context, tmp_path):
    """Read-path rate over a store warmed by a real panel job."""
    from dataclasses import asdict

    spec = {"kind": "panel", "scenario": asdict(context.scenario),
            "shards": 1, "horizons": [1]}
    journal_dir = tmp_path / "journal"
    store_dir = tmp_path / "store"
    with AuditService(journal_dir, store_dir=store_dir) as service:
        with ServiceClient(service.address) as client:
            job_id = client.submit(spec)["job"]
            state = client.wait_for_job(job_id, timeout=600.0)
    assert state["status"] == "completed", state.get("error")
    panel = state["result"]["panel_fingerprint"]
    namespace = state["result"]["rows_namespace"]

    journal = Journal(journal_dir, service_fingerprint("audit"))
    try:
        reader = ServiceReader(journal, store_root=store_dir)
        digests = reader.wave_digests(panel, 0)
        assert digests and digests["q12"], "panel job left no cells"
        # A ref is ``[isp, state, cbg, digest]`` — digest last.
        cells = [ref[-1] for ref in digests["q12"]]
        requests = [{"what": "cell", "panel": panel,
                     "digest": cells[i % len(cells)]}
                    for i in range(READER_QUERIES // 2)]
        requests += [{"what": "row", "namespace": namespace,
                      "row_kind": "q12",
                      "digest": cells[i % len(cells)]}
                     for i in range(READER_QUERIES - len(requests))]
        benchmark.pedantic(reader.query, args=(requests[0],),
                           iterations=1, rounds=1)
        start = time.perf_counter()
        hits = sum(1 for message in requests if reader.query(message)[0])
        elapsed = time.perf_counter() - start
    finally:
        journal.close()
    qps = len(requests) / elapsed
    print()
    print(f"{len(requests)} reads in {elapsed:.3f}s ({qps:.0f} QPS, "
          f"{hits} hits, memo hits={reader.hits} misses={reader.misses})")
    assert hits == len(requests)
    assert qps >= MIN_READER_QPS
    _merge_results({"reader_qps": round(qps, 2),
                    "reader_queries": len(requests)})
    print(f"wrote {OUTPUT_PATH}")
