"""Figure 4 — Type A (CAF + monopoly) comparisons."""

from conftest import show

from repro.analysis.monopoly_figures import run_figure4


def test_fig4a_outcome_shares(benchmark, context):
    monopoly = context.report.monopoly
    shares = benchmark(monopoly.outcome_shares, "A", "monopoly")
    assert abs(sum(shares.values()) - 1.0) < 1e-9


def test_fig4b_speed_cdfs(benchmark, context):
    monopoly = context.report.monopoly
    caf_cdf, rival_cdf = benchmark(monopoly.speed_cdfs, "A", "monopoly", "caf")
    assert caf_cdf.median() >= rival_cdf.median()


def test_fig4c_pct_increase(benchmark, context):
    monopoly = context.report.monopoly
    increase = benchmark(monopoly.pct_increase_cdf, "A", "monopoly", "caf")
    assert increase.median() > 0


def test_figure4_full_experiment(benchmark, context):
    result = benchmark(run_figure4, context)
    show(result)
