"""Headline — the abstract's numbers end to end.

Also benchmarks the full pipeline (world build + both collections +
all analyses) as the repository's macro-benchmark.
"""

from conftest import show

from repro.analysis import headline
from repro.core.pipeline import run_full_audit
from repro.synth.scenario import ScenarioConfig


def test_headline_numbers(benchmark, context):
    result = benchmark(headline.run, context)
    show(result)
    scalars = result.scalars
    assert abs(scalars["serviceability_rate"]
               - scalars["paper_serviceability_rate"]) < 0.10
    assert abs(scalars["compliance_rate"]
               - scalars["paper_compliance_rate"]) < 0.12


def test_full_pipeline_macro(benchmark):
    def pipeline():
        return run_full_audit(scenario=ScenarioConfig.tiny())

    report = benchmark.pedantic(pipeline, iterations=1, rounds=1)
    print()
    print("\n".join(report.summary_lines()))
