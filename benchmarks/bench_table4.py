"""Table 4 — addresses queried for the Q3 analysis."""

from conftest import show

from repro.analysis.tables34 import run_table4
from repro.geo.fips import Q3_STATES


def test_table4_q3_collection(benchmark, context):
    result = benchmark(run_table4, context)
    show(result)
    table = result.tables["table4"]
    states = {row["state"] for row in table.iter_rows()}
    assert states <= set(Q3_STATES)
    assert result.scalars["total_caf_queried"] > \
        result.scalars["total_non_caf_queried"] * 0.5
