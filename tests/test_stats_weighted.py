"""Unit tests for repro.stats.weighted."""

import numpy as np
import pytest

from repro.stats.weighted import weighted_fraction, weighted_mean, weighted_quantile


class TestWeightedMean:
    def test_equal_weights_match_plain_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert weighted_mean(values, [1, 1, 1, 1]) == pytest.approx(2.5)

    def test_weights_shift_the_mean(self):
        assert weighted_mean([0.0, 1.0], [1, 3]) == pytest.approx(0.75)

    def test_zero_weight_entries_are_ignored(self):
        assert weighted_mean([5.0, 100.0], [1, 0]) == pytest.approx(5.0)

    def test_scaling_weights_is_invariant(self):
        values = [0.3, 0.6, 0.9]
        weights = [2, 5, 7]
        scaled = [w * 13 for w in weights]
        assert weighted_mean(values, weights) == pytest.approx(
            weighted_mean(values, scaled))

    def test_empty_input_raises(self):
        with pytest.raises(ValueError, match="empty"):
            weighted_mean([], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="differ in length"):
            weighted_mean([1.0, 2.0], [1.0])

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError, match="non-negative"):
            weighted_mean([1.0], [-1.0])

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError, match="zero"):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_two_dimensional_input_raises(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            weighted_mean(np.ones((2, 2)), np.ones((2, 2)))


class TestWeightedFraction:
    def test_per_group_fractions_weighted(self):
        # Two CBGs: 50% and 100% served, weighted 1:3.
        result = weighted_fraction([1, 4], [2, 4], [1, 3])
        assert result == pytest.approx(0.875)

    def test_zero_denominator_groups_dropped(self):
        result = weighted_fraction([1, 0], [2, 0], [1, 100])
        assert result == pytest.approx(0.5)

    def test_all_zero_denominators_raise(self):
        with pytest.raises(ValueError, match="denominator"):
            weighted_fraction([0, 0], [0, 0], [1, 1])

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError, match="align"):
            weighted_fraction([1], [1, 2], [1, 2])


class TestWeightedQuantile:
    def test_median_of_uniform_weights(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert weighted_quantile(values, [1] * 5, 0.5) == pytest.approx(3.0)

    def test_heavy_weight_dominates(self):
        assert weighted_quantile([1.0, 10.0], [1, 99], 0.5) == pytest.approx(10.0)

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        weights = [1, 1, 1]
        assert weighted_quantile(values, weights, 0.0) == pytest.approx(1.0)
        assert weighted_quantile(values, weights, 1.0) == pytest.approx(3.0)

    def test_unsorted_input_handled(self):
        assert weighted_quantile([5.0, 1.0, 3.0], [1, 1, 1], 0.5) == pytest.approx(3.0)

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            weighted_quantile([1.0], [1.0], 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            weighted_quantile([], [], 0.5)
