"""Additional property-based tests on pipeline invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.sampling import SamplingPolicy
from repro.fcc.urban_rate_survey import UrbanRateSurvey
from repro.stats.bootstrap import bootstrap_weighted_rate
from repro.stats.weighted import weighted_fraction, weighted_mean


class TestSamplingPolicyProperties:
    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=1, max_value=100),
           st.floats(min_value=0.01, max_value=1.0))
    def test_target_never_exceeds_population(self, population, floor, rate):
        policy = SamplingPolicy(min_samples=floor, sampling_fraction=rate)
        target = policy.target_for(population)
        assert 0 <= target <= population

    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=1, max_value=100),
           st.floats(min_value=0.01, max_value=1.0))
    def test_target_at_least_fraction(self, population, floor, rate):
        policy = SamplingPolicy(min_samples=floor, sampling_fraction=rate)
        target = policy.target_for(population)
        assert target >= min(population, int(np.floor(rate * population)))

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=100))
    def test_target_monotone_in_population(self, population, floor):
        policy = SamplingPolicy(min_samples=floor, sampling_fraction=0.1)
        assert policy.target_for(population + 1) >= \
            policy.target_for(population) - 1  # floor transitions allowed
        # And the floor rule: small populations are fully sampled.
        if population <= floor:
            assert policy.target_for(population) == population


class TestUrbanRateSurveyProperties:
    @given(st.floats(min_value=0.1, max_value=10_000.0,
                     allow_nan=False))
    def test_tier_for_total(self, speed):
        tier = UrbanRateSurvey.tier_for(speed)
        assert tier in (10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)
        assert tier <= max(speed, 10.0)

    @given(st.floats(min_value=0.1, max_value=9_999.0, allow_nan=False),
           st.floats(min_value=1.0, max_value=1.5))
    def test_tier_monotone(self, speed, factor):
        assert UrbanRateSurvey.tier_for(speed * factor) >= \
            UrbanRateSurvey.tier_for(speed)


class TestWeightedFractionProperties:
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    ), min_size=1, max_size=30))
    def test_fraction_bounded(self, groups):
        numerators = [min(n, d) for n, d, _ in groups]
        denominators = [d for _, d, _ in groups]
        weights = [w for _, _, w in groups]
        result = weighted_fraction(numerators, denominators, weights)
        assert -1e-9 <= result <= 1.0 + 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
                    min_size=1, max_size=30))
    def test_equal_weights_match_mean_of_rates(self, rates):
        result = weighted_mean(rates, [1.0] * len(rates))
        assert np.isclose(result, np.mean(rates))


class TestBootstrapProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
                    min_size=2, max_size=30),
           st.integers(min_value=0, max_value=100))
    def test_interval_brackets_estimate_and_stays_in_unit(self, rates, seed):
        weights = [1.0] * len(rates)
        interval = bootstrap_weighted_rate(rates, weights,
                                           replicates=100, seed=seed)
        assert interval.low <= interval.estimate <= interval.high
        assert -1e-9 <= interval.low
        assert interval.high <= 1.0 + 1e-9
