"""Tests for repro.runtime: sharding, equivalence, resume, cache.

The load-bearing property is *bit-identical equivalence*: for a fixed
seed, the sharded campaign (any shard count, either backend) must
reproduce the sequential campaign's logs record for record. Checkpoint
resume and the audit cache are then tested against that same baseline.
"""

from __future__ import annotations

import pytest

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.core.collection import CollectionCampaign, collect_q3_dataset
from repro.core.pipeline import run_full_audit
from repro.persist import StudyStore
from repro.runtime import (
    AuditCache,
    CheckpointStore,
    RuntimeConfig,
    audit_digest,
    campaign_fingerprint,
    enumerate_q12_cells,
    execute_campaign,
    plan_shards,
    run_shard,
)
from repro.runtime.shards import ShardSpec

# A deliberately small slice of the campaign for the tests that rerun
# it several times (resume, process backend).
SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))


def record_key(record):
    return (record.isp_id, record.address_id, record.block_geoid,
            record.status, record.plans, record.error_category,
            record.attempts, record.elapsed_seconds, record.replacement_for)


def log_keys(log):
    return [record_key(r) for r in log]


@pytest.fixture(scope="module")
def subset_baseline(world):
    campaign = CollectionCampaign(world)
    collection = campaign.run(isps=SUBSET["isps"], states=SUBSET["states"])
    q3 = collect_q3_dataset(world, states=SUBSET["q3_states"])
    return collection, q3


class TestShardPlanning:
    def test_partition_covers_all_cells_once(self, world):
        cells = enumerate_q12_cells(world)
        for count in (1, 2, 5, 16):
            specs = plan_shards(world, count)
            dealt = [c for spec in specs for c in spec.q12_cells]
            assert sorted(map(repr, dealt)) == sorted(map(repr, cells))

    def test_partition_q3_blocks_disjoint_and_complete(self, world):
        specs = plan_shards(world, 4)
        blocks = [b for spec in specs for b in spec.q3_blocks]
        assert len(blocks) == len(set(blocks))
        assert set(blocks) == set(plan_shards(world, 1)[0].q3_blocks)

    def test_partition_deterministic(self, world):
        assert plan_shards(world, 3) == plan_shards(world, 3)

    def test_more_shards_than_cells(self, world):
        cells = enumerate_q12_cells(world, isps=("consolidated",),
                                    states=("VT",))
        specs = plan_shards(world, len(cells) + 50,
                            isps=("consolidated",), states=("VT",),
                            q3_states=("UT",))
        assert sum(len(s.q12_cells) for s in specs) == len(cells)
        assert any(s.num_units == 0 for s in specs)

    def test_balance(self, world):
        specs = plan_shards(world, 4)
        sizes = [len(s.q12_cells) for s in specs]
        assert max(sizes) - min(sizes) <= 1

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ShardSpec(index=2, count=2, q12_cells=(), q3_blocks=())
        with pytest.raises(ValueError):
            ShardSpec(index=0, count=0, q12_cells=(), q3_blocks=())
        with pytest.raises(ValueError):
            plan_shards(None, 0)


class TestRuntimeConfig:
    def test_politeness_clamp(self):
        config = RuntimeConfig(shards=64, workers=64)
        assert config.effective_workers == MAX_POLITE_WORKERS_PER_ISP

    def test_workers_clamped_to_shards(self):
        assert RuntimeConfig(shards=2, workers=4).effective_workers == 2

    def test_auto_backend(self):
        assert RuntimeConfig().effective_backend == "serial"
        assert RuntimeConfig(shards=4, workers=2).effective_backend == "process"
        assert RuntimeConfig(shards=4, workers=2,
                             backend="serial").effective_backend == "serial"

    def test_async_backends(self):
        config = RuntimeConfig(shards=4, backend="async", max_inflight=16)
        assert config.uses_async
        assert config.concurrent_shards == 1
        assert config.per_shard_isp_cap == MAX_POLITE_WORKERS_PER_ISP
        assert not RuntimeConfig(shards=4, workers=2).uses_async

    def test_max_inflight_promotes_auto_to_async(self):
        """An explicit in-flight budget is a request for the async
        engine at the config layer too — not just via the CLI flag."""
        assert RuntimeConfig(shards=4, max_inflight=16).effective_backend \
            == "async"
        assert RuntimeConfig(shards=4, workers=2,
                             max_inflight=16).effective_backend \
            == "process+async"
        # Unset leaves auto resolving to the non-async backends, with
        # the documented default bound for explicit async backends.
        assert RuntimeConfig(shards=4).effective_backend == "serial"
        assert RuntimeConfig(backend="async").effective_max_inflight == 8

    def test_async_with_workers_promotes_to_composed_backend(self):
        """Requested parallelism must never be silently dropped: async
        plus workers resolves to process+async at the config layer, so
        the library and CLI entry points agree."""
        config = RuntimeConfig(shards=8, workers=4, backend="async")
        assert config.effective_backend == "process+async"
        assert config.concurrent_shards == 4
        # A single worker keeps the plain in-process event loop.
        assert RuntimeConfig(shards=8, backend="async").effective_backend \
            == "async"

    def test_politeness_budget_divided_across_workers(self):
        config = RuntimeConfig(shards=8, workers=4, backend="process+async")
        assert config.concurrent_shards == 4
        assert config.per_shard_isp_cap == MAX_POLITE_WORKERS_PER_ISP // 4
        assert (config.per_shard_isp_cap * config.concurrent_shards
                <= MAX_POLITE_WORKERS_PER_ISP)
        # Even more workers than cap tokens: everyone still gets one.
        crowded = RuntimeConfig(shards=64, workers=64,
                                backend="process+async")
        assert crowded.per_shard_isp_cap == 1

    def test_non_async_shards_drive_one_session(self):
        assert RuntimeConfig(shards=4, workers=2).per_shard_isp_cap == 1
        assert RuntimeConfig(shards=4, backend="serial").per_shard_isp_cap == 1

    def test_distributed_backend_config(self):
        """Distributed workers are sync by default; ``max_inflight``
        opts each worker's shard onto an event loop, with the
        politeness budget divided across the fleet as for
        process+async."""
        config = RuntimeConfig(shards=8, workers=4, backend="distributed")
        assert config.effective_backend == "distributed"
        assert config.concurrent_shards == 4
        assert not config.uses_async
        assert config.per_shard_isp_cap == 1
        interleaved = RuntimeConfig(shards=8, workers=4,
                                    backend="distributed", max_inflight=6)
        assert interleaved.uses_async
        assert interleaved.per_shard_isp_cap == \
            MAX_POLITE_WORKERS_PER_ISP // 4
        assert (interleaved.per_shard_isp_cap
                * interleaved.concurrent_shards
                <= MAX_POLITE_WORKERS_PER_ISP)

    def test_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(shards=0)
        with pytest.raises(ValueError):
            RuntimeConfig(workers=0)
        with pytest.raises(ValueError):
            RuntimeConfig(backend="threads")
        with pytest.raises(ValueError):
            RuntimeConfig(max_inflight=0)
        with pytest.raises(ValueError):
            # An in-flight budget contradicts a non-async backend.
            RuntimeConfig(backend="process", max_inflight=4)
        with pytest.raises(ValueError):
            RuntimeConfig(resume=True)  # resume needs a checkpoint_dir

    def test_lease_timeout_validation(self):
        config = RuntimeConfig(shards=4, workers=2, backend="distributed",
                               lease_timeout=300.0)
        assert config.lease_timeout == 300.0
        with pytest.raises(ValueError):
            RuntimeConfig(backend="distributed", lease_timeout=0.0)
        with pytest.raises(ValueError):
            # A lease timeout must never be silently ignored.
            RuntimeConfig(shards=4, workers=2, backend="process",
                          lease_timeout=60.0)


class TestEquivalence:
    """The acceptance property: sharded == sequential, exactly."""

    def test_full_audit_headline_exact(self, world, report):
        sharded = run_full_audit(
            world=world, parallel=RuntimeConfig(shards=4, backend="serial"))
        assert sharded.headline() == report.headline()

    def test_full_audit_logs_bit_identical(self, world, report):
        sharded = run_full_audit(
            world=world, parallel=RuntimeConfig(shards=4, backend="serial"))
        assert log_keys(sharded.collection.log) == log_keys(
            report.collection.log)
        assert log_keys(sharded.q3_collection.log) == log_keys(
            report.q3_collection.log)
        assert sharded.q3_collection.modes == report.q3_collection.modes
        assert (sharded.q3_collection.analyzed_blocks
                == report.q3_collection.analyzed_blocks)
        assert sharded.collection.cbg_totals == report.collection.cbg_totals

    @pytest.mark.parametrize("shards", [1, 3, 7])
    def test_any_shard_count(self, world, subset_baseline, shards):
        collection, q3 = execute_campaign(
            world, RuntimeConfig(shards=shards, backend="serial"), **SUBSET)
        baseline_collection, baseline_q3 = subset_baseline
        assert log_keys(collection.log) == log_keys(baseline_collection.log)
        assert log_keys(q3.log) == log_keys(baseline_q3.log)

    def test_process_backend(self, world, subset_baseline):
        collection, q3 = execute_campaign(
            world, RuntimeConfig(shards=2, workers=2, backend="process"),
            **SUBSET)
        baseline_collection, baseline_q3 = subset_baseline
        assert log_keys(collection.log) == log_keys(baseline_collection.log)
        assert log_keys(q3.log) == log_keys(baseline_q3.log)

    def test_async_backend(self, world, subset_baseline):
        collection, q3 = execute_campaign(
            world, RuntimeConfig(shards=3, backend="async", max_inflight=16),
            **SUBSET)
        baseline_collection, baseline_q3 = subset_baseline
        assert log_keys(collection.log) == log_keys(baseline_collection.log)
        assert log_keys(q3.log) == log_keys(baseline_q3.log)

    def test_on_progress_reports_every_shard(self, world):
        seen: list[tuple[int, int, int, bool]] = []
        execute_campaign(
            world, RuntimeConfig(shards=3, backend="async"),
            on_progress=lambda done, total, r, restored: seen.append(
                (done, total, r.index, restored)),
            **SUBSET)
        assert [(done, total) for done, total, _, _ in seen] == \
            [(1, 3), (2, 3), (3, 3)]
        assert sorted(index for _, _, index, _ in seen) == [0, 1, 2]
        # Nothing came from a checkpoint: every shard was executed.
        assert not any(restored for _, _, _, restored in seen)

    def test_on_progress_flags_restored_shards(
            self, world, tmp_path, monkeypatch):
        """A resumed run reports checkpointed shards with
        ``restored=True`` (in index order, before anything executes)
        so ETA estimators can exclude them from the rate."""
        shard_dir = str(tmp_path / "ckpt")
        config = RuntimeConfig(shards=3, backend="serial",
                               checkpoint_dir=shard_dir)
        execute_campaign(world, config, **SUBSET)

        seen: list[tuple[int, int, bool]] = []
        resumed = RuntimeConfig(shards=3, backend="serial",
                                checkpoint_dir=shard_dir, resume=True)
        execute_campaign(
            world, resumed,
            on_progress=lambda done, total, r, restored: seen.append(
                (done, r.index, restored)),
            **SUBSET)
        assert seen == [(1, 0, True), (2, 1, True), (3, 2, True)]


class TestCheckpointResume:
    def test_interrupted_run_resumes_without_recomputation(
            self, world, subset_baseline, tmp_path, monkeypatch):
        shard_dir = str(tmp_path / "ckpt")
        executed: list[int] = []

        def counting_run_shard(scenario, spec, *args, **kwargs):
            if len(executed) == 2:  # simulate a crash after 2 shards
                raise KeyboardInterrupt
            executed.append(spec.index)
            return run_shard(scenario, spec, *args, **kwargs)

        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module, "run_shard", counting_run_shard)
        with pytest.raises(KeyboardInterrupt):
            execute_campaign(
                world,
                RuntimeConfig(shards=4, backend="serial",
                              checkpoint_dir=shard_dir),
                **SUBSET)
        assert len(executed) == 2
        monkeypatch.setattr(executor_module, "run_shard", run_shard)

        # Resume: only the two missing shards run.
        resumed_indices: list[int] = []

        def tracking_run_shard(scenario, spec, *args, **kwargs):
            resumed_indices.append(spec.index)
            return run_shard(scenario, spec, *args, **kwargs)

        monkeypatch.setattr(executor_module, "run_shard", tracking_run_shard)
        collection, q3 = execute_campaign(
            world,
            RuntimeConfig(shards=4, backend="serial",
                          checkpoint_dir=shard_dir, resume=True),
            **SUBSET)
        assert sorted(resumed_indices + executed) == [0, 1, 2, 3]
        baseline_collection, baseline_q3 = subset_baseline
        assert log_keys(collection.log) == log_keys(baseline_collection.log)
        assert log_keys(q3.log) == log_keys(baseline_q3.log)

    def test_async_backend_killed_and_resumed_matches_uninterrupted(
            self, world, subset_baseline, tmp_path, monkeypatch):
        """The PR-2 satellite: kill an async run after N shards, resume
        it, and the merged output must equal an uninterrupted run."""
        shard_dir = str(tmp_path / "ckpt-async")
        config = RuntimeConfig(shards=4, backend="async", max_inflight=12,
                               checkpoint_dir=shard_dir)
        executed: list[int] = []

        def dying_run_shard(scenario, spec, *args, **kwargs):
            if len(executed) == 2:  # kill after 2 shards complete
                raise KeyboardInterrupt
            executed.append(spec.index)
            return run_shard(scenario, spec, *args, **kwargs)

        import repro.runtime.executor as executor_module

        monkeypatch.setattr(executor_module, "run_shard", dying_run_shard)
        with pytest.raises(KeyboardInterrupt):
            execute_campaign(world, config, **SUBSET)
        assert len(executed) == 2
        monkeypatch.setattr(executor_module, "run_shard", run_shard)

        resumed = RuntimeConfig(shards=4, backend="async", max_inflight=12,
                                checkpoint_dir=shard_dir, resume=True)
        collection, q3 = execute_campaign(world, resumed, **SUBSET)
        baseline_collection, baseline_q3 = subset_baseline
        assert log_keys(collection.log) == log_keys(baseline_collection.log)
        assert log_keys(q3.log) == log_keys(baseline_q3.log)

    def test_fingerprint_covers_campaign_scope(self, tiny_config):
        base = campaign_fingerprint(tiny_config, None, ("att",), 4)
        assert base != campaign_fingerprint(tiny_config, None, ("att",), 8)
        assert base != campaign_fingerprint(
            tiny_config, None, ("att",), 4, states=("VT",))
        assert base != campaign_fingerprint(
            tiny_config, None, ("att",), 4, q3_states=("UT",))
        assert base != campaign_fingerprint(
            tiny_config, None, ("att",), 4, max_replacements=0)

    def test_truncated_manifest_rebuilds_from_shard_files(
            self, world, tmp_path):
        """A torn manifest no longer discards intact work: the store
        rebuilds it from the shard files (see test_checkpoint_crash.py
        for the full crash matrix)."""
        specs = plan_shards(world, 2, **SUBSET)
        fingerprint = campaign_fingerprint(world.config, None,
                                           SUBSET["isps"], 2)
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(run_shard(world.config, specs[0], world=world))
        (store.campaign_directory / "checkpoint.json").write_text(
            "{trunc", encoding="utf-8")
        assert set(store.load_completed()) == {0}
        # And saving over the wreckage works.
        store.save_shard(run_shard(world.config, specs[1], world=world))
        assert set(store.load_completed()) == {0, 1}

    def test_fingerprint_mismatch_sees_no_foreign_checkpoints(
            self, world, tmp_path):
        """Campaigns are namespaced by fingerprint: another campaign
        sharing the root neither sees nor disturbs this one's work."""
        specs = plan_shards(world, 2, **SUBSET)
        result = run_shard(world.config, specs[0], world=world)
        fingerprint = campaign_fingerprint(world.config, None,
                                           SUBSET["isps"], 2)
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(result)
        assert set(store.load_completed()) == {0}
        other = CheckpointStore(tmp_path, "deadbeef")
        assert other.load_completed() == {}
        # The foreign store clearing itself leaves this campaign alone.
        other.clear()
        assert set(store.load_completed()) == {0}

    def test_corrupted_shard_ignored(self, world, tmp_path):
        specs = plan_shards(world, 2, **SUBSET)
        fingerprint = campaign_fingerprint(world.config, None,
                                           SUBSET["isps"], 2)
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(run_shard(world.config, specs[0], world=world))
        store.save_shard(run_shard(world.config, specs[1], world=world))
        store.shard_path(1).write_text("{corrupted", encoding="utf-8")
        assert set(store.load_completed()) == {0}

    def test_checkpoint_roundtrip_exact(self, world, tmp_path):
        specs = plan_shards(world, 2, **SUBSET)
        original = run_shard(world.config, specs[0], world=world)
        fingerprint = campaign_fingerprint(world.config, None,
                                           SUBSET["isps"], 2)
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(original)
        restored = store.load_completed()[0]
        assert restored.q12_records.keys() == original.q12_records.keys()
        for cell, records in original.q12_records.items():
            assert list(map(record_key, restored.q12_records[cell])) == \
                list(map(record_key, records))
        assert restored.q3_outcomes.keys() == original.q3_outcomes.keys()

    def test_study_store_checkpoint_area(self, world, tmp_path):
        study = StudyStore(tmp_path)
        store = study.checkpoints("abc123")
        assert store.directory == study.directory / "shards"
        assert store.fingerprint == "abc123"


class TestAuditCache:
    def test_digest_sensitivity(self, tiny_config):
        base = audit_digest(tiny_config, None, ("att",))
        assert base == audit_digest(tiny_config, None, ("att",))
        assert base != audit_digest(tiny_config, None, ("att", "frontier"))
        assert base != audit_digest(tiny_config, None, ("att",),
                                    use_urban_survey=False)
        reseeded = type(tiny_config)(seed=99)
        assert base != audit_digest(reseeded, None, ("att",))

    def test_run_full_audit_cache_hit_skips_rebuild(
            self, world, report, tmp_path, monkeypatch):
        config = RuntimeConfig(shards=2, backend="serial",
                               cache_dir=str(tmp_path))
        first = run_full_audit(world=world, parallel=config)
        assert first.headline() == report.headline()

        # A second call must come from the cache: building a world or
        # querying a website would blow up.
        import repro.core.pipeline as pipeline_module

        def forbidden(*args, **kwargs):
            raise AssertionError("cache miss: pipeline recomputed")

        monkeypatch.setattr(pipeline_module, "build_world", forbidden)
        monkeypatch.setattr(pipeline_module, "CollectionCampaign", forbidden)
        second = run_full_audit(scenario=world.config, parallel=config)
        assert second.headline() == report.headline()

    def test_context_uses_cache(self, tmp_path, world, report):
        from repro.analysis.context import ExperimentContext

        cache = AuditCache(tmp_path)
        digest = audit_digest(world.config, None,
                              ("att", "centurylink", "frontier",
                               "consolidated"))
        cache.put(digest, report)
        context = ExperimentContext.at_scale("tiny",
                                             cache_dir=str(tmp_path))
        assert context.report.headline() == report.headline()
        # The cached world rides along so report and world agree.
        assert context.world is context.report.world

    def test_entries_and_sidecar(self, report, tmp_path):
        cache = AuditCache(tmp_path)
        digest = audit_digest(report.world.config, None, ("att",))
        path = cache.put(digest, report)
        assert cache.entries() == [digest]
        assert path.with_suffix(".json").exists()
        assert cache.get("0" * 64) is None

    def test_environment_wiring(self, monkeypatch, tmp_path):
        from repro.analysis.context import ExperimentContext
        from repro.runtime.cache import cache_dir_from_environment

        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_dir_from_environment() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache_dir_from_environment() == str(tmp_path)
        context = ExperimentContext.at_scale("tiny")
        assert context.cache_dir == str(tmp_path)


class TestWorldCacheSplit:
    """The world build is content-addressed separately from the audit."""

    def test_world_digest_ignores_policy(self, tiny_config):
        from repro.core.sampling import SamplingPolicy
        from repro.runtime import world_digest

        assert world_digest(tiny_config) == world_digest(tiny_config)
        assert world_digest(tiny_config) != world_digest(
            type(tiny_config)(seed=99))
        # audit digests differ across policies; the world digest is
        # policy-blind by design.
        a = audit_digest(tiny_config, SamplingPolicy(min_samples=30), ("att",))
        b = audit_digest(tiny_config, SamplingPolicy(min_samples=10), ("att",))
        assert a != b

    def test_world_roundtrip(self, world, tmp_path):
        from repro.runtime import world_digest

        cache = AuditCache(tmp_path)
        digest = world_digest(world.config)
        assert cache.get_world(digest) is None
        cache.put_world(digest, world)
        assert cache.world_entries() == [digest]
        restored = cache.get_world(digest)
        assert restored.config == world.config
        assert len(restored.caf_addresses) == len(world.caf_addresses)

    def test_policy_sweep_shares_one_world_build(
            self, world, tmp_path, monkeypatch):
        from repro.core.sampling import SamplingPolicy

        config = RuntimeConfig(shards=2, backend="serial",
                               cache_dir=str(tmp_path))
        run_full_audit(scenario=world.config, parallel=config,
                       policy=SamplingPolicy(min_samples=30))

        # Second policy: audit cache misses, but the world must come
        # from the cache — building one again would blow up.
        import repro.core.pipeline as pipeline_module

        def forbidden(*args, **kwargs):
            raise AssertionError("world rebuilt despite cached build")

        monkeypatch.setattr(pipeline_module, "build_world", forbidden)
        report = run_full_audit(scenario=world.config, parallel=config,
                                policy=SamplingPolicy(min_samples=10))
        assert report.collection.log
        cache = AuditCache(tmp_path)
        assert len(cache.world_entries()) == 1
        assert len(cache.entries()) == 2  # one audit per policy


class TestCacheEviction:
    def _put(self, cache, report, tag):
        digest = audit_digest(report.world.config, None, (tag,))
        cache.put(digest, report)
        return digest

    def test_lru_eviction_respects_bound(self, report, tmp_path):
        import time

        unbounded = AuditCache(tmp_path)
        first = self._put(unbounded, report, "att")
        entry_bytes = unbounded.total_bytes()

        # Bound: room for roughly two entries; the third put evicts
        # the least-recently-used one.
        cache = AuditCache(tmp_path, max_bytes=int(entry_bytes * 2.5))
        time.sleep(0.02)
        second = self._put(cache, report, "frontier")
        time.sleep(0.02)
        assert cache.get(first) is not None  # refresh first's clock
        time.sleep(0.02)
        third = self._put(cache, report, "centurylink")
        assert cache.total_bytes() <= cache.max_bytes
        # `second` was coldest; `first` survived because the hit
        # refreshed it, and the just-written entry is never evicted.
        assert set(cache.entries()) == {first, third}
        assert cache.get(second) is None

    def test_eviction_spans_worlds_and_audits(self, world, report, tmp_path):
        import time

        from repro.runtime import world_digest

        probe = AuditCache(tmp_path)
        self._put(probe, report, "att")
        audit_bytes = probe.total_bytes()

        cache = AuditCache(tmp_path, max_bytes=audit_bytes)
        time.sleep(0.02)
        cache.put_world(world_digest(world.config), world)
        # The world write pushed the total over the bound, so the
        # older audit entry was evicted to make room.
        assert cache.entries() == []
        assert len(cache.world_entries()) == 1

    def test_stale_tmp_files_swept_on_eviction(self, report, tmp_path):
        import os
        import time

        cache = AuditCache(tmp_path, max_bytes=10**9)
        stale = tmp_path / "deadbeef.pkl.tmp-99999"
        stale.write_bytes(b"orphaned by a crashed writer")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = tmp_path / "cafe.pkl.tmp-11111"
        fresh.write_bytes(b"a live writer's in-progress file")
        self._put(cache, report, "att")
        assert not stale.exists()  # crash leak reclaimed
        assert fresh.exists()      # live writer untouched

    def test_two_writer_eviction_skips_vanished_entries(
            self, report, tmp_path, monkeypatch):
        """Two processes evicting the same directory: an entry whose
        stat races a second writer (returns ``None``) must be skipped.
        The old code sorted such an entry as mtime 0.0, "evicted" it
        first — deleting the most-recently-used live entry — and
        subtracted its bytes from a running total that was computed by
        a *separate* stat pass, so the genuinely-LRU entry survived."""
        import time

        unbounded = AuditCache(tmp_path)
        oldest = self._put(unbounded, report, "att")
        entry_bytes = unbounded.total_bytes()

        cache = AuditCache(tmp_path, max_bytes=int(entry_bytes * 1.5))
        time.sleep(0.02)
        recent = self._put(unbounded, report, "frontier")
        time.sleep(0.02)

        # The second writer races exactly one stat: the first stat of
        # the *recent* entry observes it "vanished".
        real_stat = AuditCache._stat_or_none
        recent_pkl = cache.path_for(recent)
        raced = []

        def racing_stat(path):
            if path == recent_pkl and not raced:
                raced.append(path)
                return None
            return real_stat(path)

        monkeypatch.setattr(AuditCache, "_stat_or_none",
                            staticmethod(racing_stat))
        third = self._put(cache, report, "centurylink")
        monkeypatch.undo()
        assert raced, "the race window was never exercised"

        # The vanished-stat entry is not ours to count or delete: the
        # LRU `oldest` is evicted, `recent` survives untouched.
        assert set(cache.entries()) == {recent, third}
        assert cache.get(recent) is not None
        assert cache.get(oldest) is None

    def test_max_bytes_environment(self, monkeypatch, tmp_path):
        from repro.runtime import cache_max_bytes_from_environment

        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert cache_max_bytes_from_environment() is None
        assert AuditCache(tmp_path).max_bytes is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1048576")
        assert cache_max_bytes_from_environment() == 1048576
        assert AuditCache(tmp_path).max_bytes == 1048576
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "zero")
        with pytest.raises(ValueError):
            cache_max_bytes_from_environment()
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-5")
        with pytest.raises(ValueError):
            cache_max_bytes_from_environment()


class TestPendingAwareBudget:
    def test_resumed_tail_gets_full_headroom(self):
        """A process+async tail with one shard left runs alone, so it
        may use the whole politeness cap instead of a fleet-divided
        slice."""
        config = RuntimeConfig(shards=8, workers=4, backend="process+async")
        assert config.per_shard_isp_cap == MAX_POLITE_WORKERS_PER_ISP // 4
        assert config.per_shard_isp_cap_for(8) == config.per_shard_isp_cap
        assert config.per_shard_isp_cap_for(2) == MAX_POLITE_WORKERS_PER_ISP // 2
        assert config.per_shard_isp_cap_for(1) == MAX_POLITE_WORKERS_PER_ISP
        # Never exceeds the global cap, whatever remains.
        for pending in range(9):
            cap = config.per_shard_isp_cap_for(pending)
            assert cap * min(config.concurrent_shards, max(1, pending)) \
                <= MAX_POLITE_WORKERS_PER_ISP
