"""Unit tests for repro.core.sampling."""

import pytest

from repro.addresses.generator import AddressGenerator
from repro.core.sampling import SamplingPolicy, SamplePlan, plan_cbg_sample
from repro.geo.entities import CensusBlock
from repro.geo.geometry import Point


def make_addresses(n, block_suffix="001"):
    block = CensusBlock(geoid=f"060371234561{block_suffix}",
                        centroid=Point(-118.0, 34.0), is_rural=True)
    return AddressGenerator(seed=0).generate_for_block(block, n, True, "caf")


class TestSamplingPolicy:
    def test_small_cbg_takes_all(self):
        policy = SamplingPolicy()
        assert policy.target_for(12) == 12
        assert policy.target_for(30) == 30

    def test_medium_cbg_takes_the_floor_of_30(self):
        # 31..300 addresses: 10% is below 30, so the floor wins.
        policy = SamplingPolicy()
        assert policy.target_for(31) == 30
        assert policy.target_for(300) == 30

    def test_large_cbg_takes_ten_percent(self):
        policy = SamplingPolicy()
        assert policy.target_for(301) == 31
        assert policy.target_for(1000) == 100

    def test_zero(self):
        assert SamplingPolicy().target_for(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingPolicy(min_samples=0)
        with pytest.raises(ValueError):
            SamplingPolicy(sampling_fraction=0.0)
        with pytest.raises(ValueError):
            SamplingPolicy(sampling_fraction=1.5)
        with pytest.raises(ValueError):
            SamplingPolicy().target_for(-1)


class TestPlanCbgSample:
    def test_partition_into_sample_and_reserve(self):
        addresses = make_addresses(100)
        plan = plan_cbg_sample("060371234561", addresses, SamplingPolicy())
        assert len(plan.selected) == 30
        assert len(plan.reserve) == 70
        selected_ids = {a.address_id for a in plan.selected}
        reserve_ids = {a.address_id for a in plan.reserve}
        assert not selected_ids & reserve_ids
        assert plan.sampling_rate == pytest.approx(0.30)

    def test_small_population_all_selected(self):
        addresses = make_addresses(10)
        plan = plan_cbg_sample("060371234561", addresses, SamplingPolicy())
        assert len(plan.selected) == 10
        assert plan.reserve == ()

    def test_deterministic_per_seed(self):
        addresses = make_addresses(80)
        first = plan_cbg_sample("060371234561", addresses,
                                SamplingPolicy(), seed=5)
        second = plan_cbg_sample("060371234561", addresses,
                                 SamplingPolicy(), seed=5)
        assert [a.address_id for a in first.selected] == \
               [a.address_id for a in second.selected]

    def test_different_seeds_differ(self):
        addresses = make_addresses(80)
        first = plan_cbg_sample("060371234561", addresses,
                                SamplingPolicy(), seed=1)
        second = plan_cbg_sample("060371234561", addresses,
                                 SamplingPolicy(), seed=2)
        assert [a.address_id for a in first.selected] != \
               [a.address_id for a in second.selected]

    def test_foreign_addresses_rejected(self):
        addresses = make_addresses(5)
        with pytest.raises(ValueError, match="outside CBG"):
            plan_cbg_sample("999999999999", addresses, SamplingPolicy())

    def test_plan_invariant(self):
        addresses = make_addresses(3)
        with pytest.raises(ValueError, match="exceeds"):
            SamplePlan(block_group_geoid="060371234561",
                       selected=tuple(addresses),
                       reserve=tuple(addresses),
                       population_size=3)
