"""Integration tests: collection campaigns and the full pipeline.

These run against the shared session-scoped world/report fixtures and
check the paper-shaped properties end to end.
"""

import pytest

from repro.bqt.responses import QueryStatus
from repro.core.collection import CollectionCampaign, collect_q3_dataset
from repro.core.sampling import SamplingPolicy
from repro.synth.calibration import (
    PAPER_COMPLIANCE_BY_ISP,
    PAPER_SERVICEABILITY_BY_ISP,
    TYPE_A_SHARES,
)


class TestCollectionCampaign:
    def test_sampling_policy_respected(self, report):
        collection = report.collection
        for (isp, cbg), plan in collection.plans.items():
            policy_target = SamplingPolicy().target_for(plan.population_size)
            assert len(plan.selected) == policy_target

    def test_replacements_only_after_unknowns(self, report):
        log = report.collection.log
        replaced_ids = {r.replacement_for for r in log
                        if r.replacement_for is not None}
        unknown_ids = {r.address_id for r in log
                       if r.status is QueryStatus.UNKNOWN}
        assert replaced_ids <= unknown_ids

    def test_replacements_stay_in_cbg(self, report):
        log = report.collection.log
        by_id = {}
        for record in log:
            by_id.setdefault(record.address_id, record)
        for record in log:
            if record.replacement_for is not None:
                failed = by_id[record.replacement_for]
                assert failed.block_group_geoid == record.block_group_geoid
                assert failed.isp_id == record.isp_id

    def test_queried_fraction_at_least_collected(self, report):
        collection = report.collection
        for (isp, cbg) in list(collection.plans)[:50]:
            assert collection.queried_fraction(isp, cbg) >= \
                collection.collected_fraction(isp, cbg)

    def test_all_study_isps_collected(self, report):
        assert set(report.collection.log.isps()) == {
            "att", "centurylink", "frontier", "consolidated"}


class TestAuditResults:
    def test_aggregate_serviceability_near_paper(self, report):
        rate = report.serviceability.aggregate_rate()
        assert rate == pytest.approx(0.5545, abs=0.08)

    def test_isp_ordering_matches_paper(self, report):
        rates = report.serviceability.rate_by_isp()
        # CenturyLink > Consolidated > Frontier > AT&T, as in §4.1.
        assert rates["centurylink"] > rates["consolidated"] > \
            rates["frontier"] > rates["att"]

    def test_isp_rates_within_band(self, report):
        rates = report.serviceability.rate_by_isp()
        for isp, target in PAPER_SERVICEABILITY_BY_ISP.items():
            assert rates[isp] == pytest.approx(target, abs=0.12), isp

    def test_compliance_below_serviceability_everywhere(self, report):
        serviceability = report.serviceability.rate_by_isp()
        compliance = report.compliance.rate_by_isp()
        for isp in serviceability:
            assert compliance[isp] <= serviceability[isp] + 1e-9

    def test_compliance_shape(self, report):
        compliance = report.compliance.rate_by_isp()
        # Consolidated and CenturyLink high; AT&T and Frontier very low.
        assert compliance["consolidated"] > 0.6
        assert compliance["centurylink"] > 0.5
        assert compliance["att"] < 0.35
        assert compliance["frontier"] < 0.25
        assert compliance["att"] == pytest.approx(
            PAPER_COMPLIANCE_BY_ISP["att"], abs=0.12)

    def test_rate_compliance_universal(self, report):
        # §4.2: prices always comply with the FCC benchmark.
        assert report.compliance.rate_compliance_fraction() > 0.97

    def test_price_range_for_10mbps(self, report):
        low, high = report.compliance.price_range_for_tier(10.0)
        assert 20.0 <= low <= high <= 120.0

    def test_centurylink_nj_measured_zero(self, report):
        rate = report.audit.serviceability_rate(
            isp_id="centurylink", state="NJ")
        assert rate == 0.0

    def test_unserved_fraction_complements_serviceability(self, report):
        analysis = report.serviceability
        assert analysis.unserved_fraction() == pytest.approx(
            1.0 - analysis.aggregate_rate())

    def test_non_compliant_served_fraction(self, report):
        fraction = report.compliance.non_compliant_served_fraction()
        # The paper: ~67% of CAF addresses (weighted) fail the quality
        # floor; among *served* addresses the unweighted gap is smaller
        # but still substantial.
        assert 0.2 < fraction < 0.8

    def test_table1_certified_all_at_floor(self, report):
        table1 = report.compliance.table1()
        att_10 = table1.where_equal(isp_id="att", tier="10")
        assert att_10.row(0)["certified_pct"] == pytest.approx(100.0)

    def test_table1_advertised_includes_unserved_bucket(self, report):
        table1 = report.compliance.table1()
        att_0 = table1.where_equal(isp_id="att", tier="0")
        assert att_0.row(0)["advertised_pct"] > 50.0  # most AT&T unserved

    def test_density_correlation_positive_for_att(self, report):
        # Pool all AT&T CBGs (single states can be sparse at tiny scale).
        rates = report.serviceability.cbg_rates.where_equal(isp_id="att")
        from repro.stats.correlation import spearman
        result = spearman(rates["population_density"], rates["rate"])
        assert result.coefficient > 0.2


class TestQ3Results:
    def test_analyzed_blocks_filtered(self, report, world):
        for block_geoid in report.q3_collection.analyzed_blocks:
            competition = world.block_competition[block_geoid]
            assert competition.kind != "non_bqt"

    def test_modes_cover_all_queried_addresses(self, report):
        collection = report.q3_collection
        for record in collection.log:
            assert record.address_id in collection.modes

    def test_type_a_dominates(self, report):
        counts = report.monopoly.type_counts()
        assert counts["A"] > 10 * max(counts["B"], 1)

    def test_type_a_outcome_shares_near_paper(self, report):
        shares = report.monopoly.outcome_shares("A", "monopoly")
        assert shares["tie"] == pytest.approx(TYPE_A_SHARES.tie, abs=0.12)
        assert shares["caf"] == pytest.approx(
            TYPE_A_SHARES.caf_better, abs=0.12)

    def test_caf_win_margin_larger_than_loss_margin(self, report):
        # §4.3: where CAF wins the median improvement (75%) dwarfs the
        # median where monopoly wins (45%).
        win = report.monopoly.pct_increase_cdf("A", "monopoly", "caf")
        loss = report.monopoly.pct_increase_cdf("A", "monopoly", "rival")
        assert win.median() > loss.median()

    def test_pct_increase_medians_near_paper(self, report):
        win = report.monopoly.pct_increase_cdf("A", "monopoly", "caf")
        assert win.median() == pytest.approx(75.0, abs=40.0)
        loss = report.monopoly.pct_increase_cdf("A", "monopoly", "rival")
        assert loss.median() == pytest.approx(45.0, abs=30.0)

    def test_headline_keys(self, report):
        headline = report.headline()
        assert set(headline) == {
            "serviceability_rate", "compliance_rate",
            "type_a_caf_better_share", "type_a_tie_share",
            "type_a_monopoly_better_share"}
        shares = (headline["type_a_caf_better_share"]
                  + headline["type_a_tie_share"]
                  + headline["type_a_monopoly_better_share"])
        assert shares == pytest.approx(1.0)

    def test_summary_lines_render(self, report):
        lines = report.summary_lines()
        assert any("Serviceability" in line for line in lines)
        assert any("paper" in line for line in lines)


class TestStandaloneCampaign:
    def test_subset_collection(self, world):
        campaign = CollectionCampaign(world, max_replacements=0)
        result = campaign.run(isps=("consolidated",), states=("VT", "NH"))
        assert set(result.log.isps()) == {"consolidated"}
        states = {r.state_abbreviation for r in result.log}
        assert states <= {"VT", "NH"}
        assert not any(r.replacement_for for r in result.log)

    def test_q3_subset(self, world):
        collection = collect_q3_dataset(world, states=("UT",))
        fips = world.geographies["UT"].state_fips
        assert all(b[:2] == fips for b in collection.analyzed_blocks)
