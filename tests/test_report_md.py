"""Tests for the auto-generated reproduction report."""

import pytest

from repro.analysis.report_md import (
    comparison_rows,
    generate_report,
    write_report,
)
from repro.analysis.result import ExperimentResult


class TestComparisonRows:
    def test_pairs_paper_and_measured(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            scalars={"rate": 0.5, "paper_rate": 0.55, "extra": 1.0})
        rows = comparison_rows(result)
        assert len(rows) == 1
        row = rows[0]
        assert row["metric"] == "rate"
        assert row["paper"] == 0.55
        assert row["measured"] == 0.5
        assert row["relative_deviation"] == "-9.1%"

    def test_zero_paper_value(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            scalars={"rate": 0.1, "paper_rate": 0.0})
        assert comparison_rows(result)[0]["relative_deviation"] == "n/a"

    def test_orphan_paper_key_skipped(self):
        result = ExperimentResult(
            experiment_id="x", title="t", scalars={"paper_only": 1.0})
        assert comparison_rows(result) == []


class TestGenerateReport:
    def test_small_subset(self, context):
        text = generate_report(context, experiment_ids=("headline",
                                                        "figure9"))
        assert "# Reproduction report" in text
        assert "## figure9" in text
        assert "## headline" in text
        assert "| serviceability_rate |" in text
        assert "rel. deviation" in text

    def test_unknown_id_raises(self, context):
        with pytest.raises(KeyError):
            generate_report(context, experiment_ids=("figure99",))

    def test_write_report(self, context, tmp_path):
        path = write_report(context, tmp_path / "sub" / "report.md",
                            experiment_ids=("headline",))
        assert path.exists()
        assert "Reproduction report" in path.read_text()
