"""Unit tests for repro.bqt.engine, proxy, errors, and logbook."""

import numpy as np
import pytest

from repro.addresses.generator import AddressGenerator
from repro.bqt.engine import BqtEngine, EngineConfig
from repro.bqt.errors import (
    ERROR_MIX_BY_ISP,
    ERROR_PROBABILITY_BY_ISP,
    ErrorCategory,
    sample_error_category,
)
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.proxy import ProxyEndpoint, ProxyPool
from repro.bqt.responses import QueryStatus
from repro.bqt.websites import build_website
from repro.geo.entities import CensusBlock
from repro.geo.geometry import Point
from repro.isp.deployment import GroundTruth, ServiceTruth
from repro.isp.plans import BroadbandPlan
from repro.stats.distributions import stable_rng


@pytest.fixture
def block() -> CensusBlock:
    return CensusBlock(geoid="060371234561001",
                       centroid=Point(-118.0, 34.0), is_rural=True)


def build_engine(isp_id, addresses, served=True, seed=0):
    truth = GroundTruth()
    if served:
        plan = BroadbandPlan("p", 25.0, 2.5, 50.0)
        for address in addresses:
            truth.set_truth(isp_id, address.address_id, ServiceTruth(
                serves=True, plans=(plan,), tier_label=plan.tier_label))
    site = build_website(isp_id, truth, seed=seed)
    return BqtEngine(site, seed=seed)


class TestProxyPool:
    def test_rotation_wraps(self):
        pool = ProxyPool(size=3, seed=0)
        first = pool.current
        pool.rotate()
        pool.rotate()
        pool.rotate()
        assert pool.current is first
        assert pool.rotations == 3

    def test_suspicion_accumulates_faster_for_datacenter(self):
        residential = ProxyEndpoint("ip-r", "residential")
        datacenter = ProxyEndpoint("ip-d", "datacenter")
        for _ in range(100):
            residential.record_query(1.0)
            datacenter.record_query(1.0)
        assert datacenter.suspicion > residential.suspicion
        assert datacenter.extra_error_probability > 0

    def test_suspicion_capped(self):
        endpoint = ProxyEndpoint("ip", "datacenter")
        for _ in range(10_000):
            endpoint.record_query(1.0)
        assert endpoint.suspicion == 1.0

    def test_least_suspicious_jump(self):
        pool = ProxyPool(size=4, seed=0)
        pool.current.record_query(1.0)
        cleanest = pool.least_suspicious()
        assert cleanest.suspicion == min(
            e.suspicion for e in pool._endpoints)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProxyPool(size=0)
        with pytest.raises(ValueError):
            ProxyEndpoint("x", "satellite")
        with pytest.raises(ValueError):
            ProxyEndpoint("x", "residential").record_query(2.0)


class TestErrorTaxonomy:
    def test_mixes_normalized(self):
        # AT&T's Table 2 row sums to 61,531 of a stated 61,768 total —
        # the paper's own figures are slightly inconsistent, so allow
        # half a percent of slack.
        for isp, mix in ERROR_MIX_BY_ISP.items():
            assert sum(mix.values()) == pytest.approx(1.0, abs=0.005), isp

    def test_att_is_flakiest_of_big_three(self):
        assert ERROR_PROBABILITY_BY_ISP["att"] > \
            ERROR_PROBABILITY_BY_ISP["frontier"] > \
            ERROR_PROBABILITY_BY_ISP["centurylink"]

    def test_centurylink_only_empty_traceback(self):
        rng = stable_rng(0, "e")
        draws = {sample_error_category("centurylink", rng) for _ in range(50)}
        assert draws == {ErrorCategory.EMPTY_TRACEBACK}

    def test_exclusion_renormalizes(self):
        rng = stable_rng(1, "e")
        draws = {sample_error_category(
            "att", rng, exclude=(ErrorCategory.SELECT_DROPDOWN,
                                 ErrorCategory.ANALYZING_RESULT))
            for _ in range(100)}
        assert ErrorCategory.SELECT_DROPDOWN not in draws
        assert ErrorCategory.EMPTY_TRACEBACK in draws

    def test_exclusion_fallback_to_other(self):
        rng = stable_rng(2, "e")
        category = sample_error_category(
            "centurylink", rng, exclude=(ErrorCategory.EMPTY_TRACEBACK,))
        assert category is ErrorCategory.OTHER

    def test_unknown_isp_raises(self):
        rng = stable_rng(3, "e")
        with pytest.raises(KeyError):
            sample_error_category("verizon", rng)


class TestEngine:
    def test_served_addresses_resolve_serviceable(self, block):
        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 80, True, "caf")
        engine = build_engine("centurylink", addresses)
        records = engine.query_many(addresses)
        serviceable = [r for r in records
                       if r.status is QueryStatus.SERVICEABLE]
        assert len(serviceable) > 60
        assert all(r.plans for r in serviceable)

    def test_unserved_addresses_resolve_no_service(self, block):
        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 80, True, "caf")
        engine = build_engine("centurylink", addresses, served=False)
        statuses = {r.status for r in engine.query_many(addresses)}
        assert QueryStatus.NO_SERVICE in statuses
        assert QueryStatus.SERVICEABLE not in statuses

    def test_query_is_deterministic(self, block):
        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 10, True, "caf")
        first = build_engine("att", addresses).query_many(addresses)
        second = build_engine("att", addresses).query_many(addresses)
        assert [r.status for r in first] == [r.status for r in second]
        assert [r.elapsed_seconds for r in first] == \
               [r.elapsed_seconds for r in second]

    def test_unknowns_carry_error_categories(self, block):
        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 200, True, "caf")
        engine = build_engine("att", addresses)
        unknowns = [r for r in engine.query_many(addresses)
                    if r.status is QueryStatus.UNKNOWN]
        assert unknowns
        assert all(r.error_category is not None for r in unknowns)
        categories = {r.error_category for r in unknowns}
        assert ErrorCategory.SELECT_DROPDOWN in categories

    def test_elapsed_time_scales_with_isp_median(self, block):
        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 60, True, "caf")
        att_records = build_engine("att", addresses).query_many(addresses)
        cl_records = build_engine("centurylink", addresses).query_many(addresses)
        att_median = np.median([r.elapsed_seconds for r in att_records])
        cl_median = np.median([r.elapsed_seconds for r in cl_records])
        assert att_median > cl_median

    def test_retries_bounded_by_config(self, block):
        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 100, True, "caf")
        config = EngineConfig(max_attempts=2)
        truth = GroundTruth()
        site = build_website("att", truth, seed=0)
        engine = BqtEngine(site, config=config, seed=0)
        records = engine.query_many(addresses)
        assert max(r.attempts for r in records) <= 2

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_attempts=0)
        with pytest.raises(ValueError):
            EngineConfig(retry_backoff_seconds=-1.0)


class TestPacing:
    """``EngineConfig.pace`` stretches wall clock, never the records."""

    def test_pace_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(pace=-0.1)
        assert EngineConfig(pace=0.0) == EngineConfig()

    def test_paced_records_are_byte_identical(self, block):
        import time

        addresses = AddressGenerator(seed=0).generate_for_block(
            block, 3, True, "caf")
        unpaced = build_engine("att", addresses).query_many(addresses)
        site_truth = GroundTruth()
        plan = BroadbandPlan("p", 25.0, 2.5, 50.0)
        for address in addresses:
            site_truth.set_truth("att", address.address_id, ServiceTruth(
                serves=True, plans=(plan,), tier_label=plan.tier_label))
        site = build_website("att", site_truth, seed=0)
        engine = BqtEngine(site, config=EngineConfig(pace=0.001), seed=0)
        start = time.perf_counter()
        paced = engine.query_many(addresses)
        wall = time.perf_counter() - start
        assert [vars(r) for r in paced] == [vars(r) for r in unpaced]
        virtual = sum(r.elapsed_seconds for r in paced)
        # The driver slept ~pace seconds per virtual second (margin
        # for scheduler jitter, none for a missing sleep).
        assert wall >= virtual * 0.001 * 0.5

    def test_non_default_config_gets_its_own_cache_address(
            self, tiny_config):
        from repro.runtime.cache import audit_digest

        base = audit_digest(tiny_config, None, ("att",))
        # Default configs hash exactly as before — a cache of digests
        # minted prior to pacing stays valid.
        assert audit_digest(tiny_config, None, ("att",),
                            engine_config=EngineConfig()) == base
        assert audit_digest(tiny_config, None, ("att",),
                            engine_config=EngineConfig(pace=1.0)) != base


class TestQueryLog:
    def _record(self, status=QueryStatus.SERVICEABLE, isp="att",
                address_id="a-1", **kwargs):
        plans = kwargs.pop("plans", ())
        if status is QueryStatus.SERVICEABLE and not plans:
            plans = (BroadbandPlan("p", 25.0, 2.5, 50.0),)
        error = kwargs.pop("error_category", None)
        if status is QueryStatus.UNKNOWN and error is None:
            error = ErrorCategory.SELECT_DROPDOWN
        return QueryRecord(
            isp_id=isp, address_id=address_id,
            block_geoid="060371234561001", state_abbreviation="CA",
            status=status, plans=plans, error_category=error,
            elapsed_seconds=kwargs.pop("elapsed_seconds", 10.0), **kwargs)

    def test_indexes_and_filters(self):
        log = QueryLog([
            self._record(),
            self._record(status=QueryStatus.UNKNOWN, address_id="a-2"),
            self._record(isp="frontier", address_id="a-3"),
        ])
        assert len(log) == 3
        assert log.isps() == ["att", "frontier"]
        assert len(log.for_isp("att")) == 2
        assert len(log.conclusive()) == 2

    def test_unknown_counts(self):
        log = QueryLog([
            self._record(status=QueryStatus.UNKNOWN, address_id="a-1"),
            self._record(status=QueryStatus.UNKNOWN, address_id="a-2",
                         error_category=ErrorCategory.EMPTY_TRACEBACK),
        ])
        counts = log.unknown_counts_by_category("att")
        assert counts[ErrorCategory.SELECT_DROPDOWN] == 1
        assert counts[ErrorCategory.EMPTY_TRACEBACK] == 1

    def test_virtual_time(self):
        log = QueryLog([self._record(), self._record(address_id="a-2")])
        assert log.total_virtual_seconds() == pytest.approx(20.0)
        assert log.query_times("att") == [10.0, 10.0]

    def test_record_invariants(self):
        with pytest.raises(ValueError, match="error category"):
            QueryRecord(isp_id="att", address_id="a", state_abbreviation="CA",
                        block_geoid="060371234561001",
                        status=QueryStatus.UNKNOWN)
        with pytest.raises(ValueError, match="plans"):
            QueryRecord(isp_id="att", address_id="a", state_abbreviation="CA",
                        block_geoid="060371234561001",
                        status=QueryStatus.NO_SERVICE,
                        plans=(BroadbandPlan("p", 10.0, 1.0, 40.0),))

    def test_tier_label_logic(self):
        assert self._record().tier_label == "11-99"
        assert self._record(status=QueryStatus.NO_SERVICE).tier_label == "0"
        unknown_plan = QueryRecord(
            isp_id="frontier", address_id="a", state_abbreviation="CA",
            block_geoid="060371234561001", status=QueryStatus.SERVICEABLE)
        assert unknown_plan.tier_label == "Unknown Plan"

    def test_max_download_excludes_unguaranteed(self):
        record = self._record(plans=(
            BroadbandPlan("g", 10.0, 1.0, 40.0),
            BroadbandPlan("air", 100.0, 10.0, 55.0,
                          is_speed_guaranteed=False),
        ))
        assert record.max_download_mbps == 10.0
        assert record.best_plan.download_mbps == 100.0

    def test_to_table(self):
        table = QueryLog([self._record()]).to_table()
        assert "max_download_mbps" in table.column_names
        assert table.row(0)["status"] == "serviceable"
