"""The audit service daemon: protocol, jobs, followers, read API.

One in-process :class:`AuditService` per module, shared by every test
(a real socket, real threads, real journal — only the wreckage tests
in ``test_service_chaos.py`` need a separate OS process). A campaign
job and a panel job run once as fixtures; the tests then interrogate
the protocol surface, the journal the jobs left behind, and the
replication and read paths over it.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.runtime.cache import content_digest
from repro.service import (
    AuditService,
    Journal,
    JournalError,
    ServiceClient,
    follow,
    validate_spec,
)
from repro.service.journal import service_fingerprint

pytestmark = pytest.mark.service

SUBSET = {"isps": ["consolidated"], "states": ["VT", "NH"],
          "q3_states": ["UT"]}


@pytest.fixture(scope="module")
def campaign_spec(tiny_config):
    return {"kind": "campaign", "scenario": asdict(tiny_config),
            "shards": 2, **SUBSET}


@pytest.fixture(scope="module")
def service_root(tmp_path_factory):
    return tmp_path_factory.mktemp("service")


@pytest.fixture(scope="module")
def service(service_root):
    with AuditService(service_root / "journal",
                      store_dir=service_root / "store") as running:
        yield running


@pytest.fixture(scope="module")
def client(service):
    with ServiceClient(service.address) as connected:
        yield connected


@pytest.fixture(scope="module")
def campaign_job(client, campaign_spec):
    accepted = client.submit(campaign_spec)
    state = client.wait_for_job(accepted["job"], timeout=300.0)
    return accepted, state


@pytest.fixture(scope="module")
def panel_job(client, tiny_config):
    spec = {"kind": "panel", "scenario": asdict(tiny_config),
            "horizons": [1]}
    accepted = client.submit(spec)
    state = client.wait_for_job(accepted["job"], timeout=300.0)
    return accepted, state


class TestValidateSpec:
    def test_normalizes_defaults(self, tiny_config):
        spec = validate_spec({"scenario": asdict(tiny_config)})
        assert spec["kind"] == "campaign"
        assert spec["shards"] == 1

    @pytest.mark.parametrize("junk", [
        None,
        "a string",
        {"kind": "espionage", "scenario": {}},
        {"kind": "campaign"},                       # no scenario
        {"kind": "campaign", "scenario": {"seed": "tiny"}},  # undecodable
        {"kind": "campaign", "scenario": None},
    ])
    def test_refuses_junk(self, junk, tiny_config):
        if isinstance(junk, dict) and junk.get("scenario") == {"seed": "tiny"}:
            pass  # truly undecodable scenario stays as staged
        with pytest.raises(ValueError):
            validate_spec(junk)

    @pytest.mark.parametrize("shards", [0, -1, True, "4", 1.5])
    def test_refuses_bad_shards(self, shards, tiny_config):
        with pytest.raises(ValueError, match="shards"):
            validate_spec({"kind": "campaign",
                           "scenario": asdict(tiny_config),
                           "shards": shards})

    @pytest.mark.parametrize("horizons", [[], [0], [2, 1], [1, 1], "1",
                                          [1, "2"]])
    def test_refuses_bad_horizons(self, horizons, tiny_config):
        with pytest.raises(ValueError, match="horizons"):
            validate_spec({"kind": "panel",
                           "scenario": asdict(tiny_config),
                           "horizons": horizons})


class TestProtocol:
    def test_ping_reports_the_tip(self, client, service):
        pong = client.ping()
        assert pong["type"] == "pong"
        assert pong["tip_seq"] == service.journal.tip_seq
        assert pong["tip_digest"] == service.journal.tip_digest

    def test_unknown_request_type_is_an_error(self, client):
        response = client.request({"type": "turbo-encabulate"})
        assert response["type"] == "error"
        assert "turbo-encabulate" in response["error"]

    def test_unknown_job_status_is_an_error(self, client):
        response = client.status("job-nonexistent")
        assert response["type"] == "error"

    def test_bad_pull_offset_is_an_error(self, client):
        assert client.pull(-1)["type"] == "error"
        assert client.request({"type": "pull",
                               "from": "zero"})["type"] == "error"

    def test_junk_submission_refused_at_the_socket(self, client, service):
        tip_before = service.journal.tip_seq
        with pytest.raises(RuntimeError, match="refused"):
            client.submit({"kind": "campaign", "scenario": {"bad": 1}})
        # Refusal left no journal entry: nothing to replay later.
        assert service.journal.tip_seq == tip_before

    def test_connection_survives_a_damaged_frame(self, service):
        from repro.runtime.distributed import _DIGEST_BYTES, _LENGTH, read_frame

        with ServiceClient(service.address) as fresh:
            stream = fresh._stream
            payload = b'{"type": "ping"}'
            # A frame whose digest lies about its payload: the server
            # must answer with a damage report, not hang up.
            stream.write(_LENGTH.pack(len(payload))
                         + b"\x00" * _DIGEST_BYTES + payload)
            stream.flush()
            response = read_frame(stream)
            assert response["type"] == "error"
            assert "SHA-256" in response["error"]
            # Same connection, next frame: business as usual.
            assert fresh.ping()["type"] == "pong"


class TestCampaignJobs:
    def test_campaign_completes_with_a_sealed_logbook(self, campaign_job):
        _, state = campaign_job
        assert state["status"] == "completed", state.get("error")
        result = state["result"]
        assert result["q12_records"] > 0
        assert result["q3_records"] > 0
        assert len(result["logbook_sha256"]) == 64
        assert state["shards_completed"] == 2

    def test_job_ids_are_deterministic(self, campaign_job, campaign_spec):
        accepted, _ = campaign_job
        expected = "job-" + content_digest(
            {"seq": accepted["seq"],
             "spec": validate_spec(campaign_spec)})[:12]
        assert accepted["job"] == expected

    def test_jobs_listing_includes_the_campaign(self, client, campaign_job):
        accepted, _ = campaign_job
        listed = {job["job_id"]: job for job in client.jobs()}
        assert listed[accepted["job"]]["status"] == "completed"

    def test_service_result_matches_direct_execution(
            self, campaign_job, world):
        """The daemon's sealed logbook digest equals a plain serial
        run of the same subset campaign — the service adds durability,
        not drift."""
        from repro.runtime import campaign_fingerprint, plan_shards, run_shard
        from repro.runtime.checkpoint import _record_to_json
        from repro.runtime.merge import merge_shard_results

        subset = {key: tuple(value) for key, value in SUBSET.items()}
        specs = plan_shards(world, 2, **subset)
        completed = {spec.index: run_shard(world.config, spec, world=world)
                     for spec in specs}
        collection, q3 = merge_shard_results(world, specs, completed,
                                             **subset)
        oracle = content_digest({
            "q12": [_record_to_json(r) for r in collection.log],
            "q3": [_record_to_json(r) for r in q3.log],
        })
        _, state = campaign_job
        assert state["result"]["logbook_sha256"] == oracle
        assert campaign_fingerprint(
            world.config, None, subset["isps"], 2,
            states=subset["states"], q3_states=subset["q3_states"],
        ) == state["result"]["fingerprint"]

    def test_live_state_equals_replayed_state(self, campaign_job, service):
        """The atomic append+fold invariant: the state a status query
        sees is byte-for-byte the state a cold replay reconstructs."""
        assert (service.state.canonical_bytes()
                == service.journal.replay().canonical_bytes())


class TestPanelJobsAndReader:
    def test_panel_completes_and_seals_waves(self, panel_job):
        _, state = panel_job
        assert state["status"] == "completed", state.get("error")
        assert state["result"]["waves"] == [0, 1]
        assert state["waves_sealed"] == 2

    def test_wave_analysis_served_from_journal_state(self, client,
                                                     panel_job):
        accepted, _ = panel_job
        response = client.query(what="wave-analysis",
                                job=accepted["job"], wave=0)
        assert response["type"] == "result" and response["hit"]
        assert "serviceability" in response["payload"]

    def test_cells_and_rows_served_from_the_store(self, client, panel_job):
        _, state = panel_job
        panel = state["result"]["panel_fingerprint"]
        namespace = state["result"]["rows_namespace"]
        digests = client.query(what="wave-digests", panel=panel, wave=0)
        assert digests["hit"] and digests["payload"]["q12"]
        ref = digests["payload"]["q12"][0]  # [isp, state, cbg, digest]
        cell = client.query(what="cell", panel=panel, digest=ref[-1])
        assert cell["hit"]
        assert cell["payload"]["records"]
        row = client.query(what="row", namespace=namespace,
                           row_kind="q12", digest=ref[-1])
        assert row["hit"]

    def test_misses_and_junk_queries_answer_cleanly(self, client,
                                                    panel_job):
        _, state = panel_job
        panel = state["result"]["panel_fingerprint"]
        miss = client.query(what="cell", panel=panel, digest="f" * 64)
        assert miss["type"] == "result" and not miss["hit"]
        traversal = client.query(what="cell", panel="../../etc",
                                 digest="../passwd")
        assert not traversal["hit"]
        unknown = client.query(what="horoscope")
        assert unknown["type"] == "error"


class TestFollower:
    def test_mid_campaign_subscriber_converges(self, client, service,
                                               campaign_spec, tmp_path):
        """A follower that subscribes while a campaign is running
        still ends at the primary's exact digest chain."""
        accepted = client.submit(dict(campaign_spec, shards=1))
        with follow(service.address, tmp_path / "replica") as follower:
            try:
                # Tail the live feed until this job's terminal entry
                # has replicated (the job may finish before our first
                # pull on a busy box — the chain still converges).
                follower.follow_until(
                    lambda journal: any(
                        entry.event.get("kind") in ("completed", "failed")
                        and entry.event.get("job") == accepted["job"]
                        for entry in journal.entries()),
                    timeout=300.0, wait=1.0)
                follower.catch_up(timeout=60.0)
                primary = service.journal
                assert follower.journal.tip_digest == primary.tip_digest
                assert (follower.journal.replay().canonical_bytes()
                        == primary.replay().canonical_bytes())
                assert follower.replicated == len(follower.journal)
            finally:
                follower.journal.close()

    def test_replica_store_is_interchangeable(self, service, tmp_path):
        """The replicated directory reopens as a first-class journal
        under the same fingerprint — a standby can replay it."""
        with follow(service.address, tmp_path / "replica") as follower:
            follower.catch_up(timeout=60.0)
            follower.journal.close()
        reopened = Journal(tmp_path / "replica",
                           service_fingerprint("audit"))
        try:
            assert reopened.tip_digest == service.journal.tip_digest
        finally:
            reopened.close()

    def test_diverged_replica_refuses_the_feed(self, service, tmp_path):
        replica = Journal(tmp_path / "diverged",
                          service_fingerprint("audit"))
        try:
            replica.append({"kind": "submitted", "job": "local-history",
                            "spec": {}})
            with follow(service.address, tmp_path / "unused") as follower:
                follower._journal = replica
                with pytest.raises(JournalError):
                    follower.catch_up(timeout=30.0)
        finally:
            replica.close()


class TestRestartResume:
    def test_journaled_submission_survives_a_restart(self, tmp_path,
                                                     campaign_spec):
        """Submissions accepted by a paused service execute after a
        restart: the journal is the queue's durable form."""
        root = tmp_path / "journal"
        with AuditService(root, start_worker=False) as paused:
            with ServiceClient(paused.address) as submitter:
                accepted = submitter.submit(dict(campaign_spec, shards=1))
                # The paused service acknowledged but never ran it.
                state = submitter.status(accepted["job"])["state"]
                assert state["status"] == "submitted"
        with AuditService(root) as restarted:
            with ServiceClient(restarted.address) as watcher:
                final = watcher.wait_for_job(accepted["job"],
                                             timeout=300.0)
        assert final["status"] == "completed", final.get("error")
        assert final["job_id"] == accepted["job"]


class TestOpsSurface:
    """The PR 9 read-only ops frames: metrics and trace ride the same
    socket, never the journal."""

    def test_metrics_frame_snapshot_and_prometheus(self, client,
                                                   campaign_job):
        response = client.metrics()
        assert response["type"] == "metrics"
        snapshot = response["snapshot"]
        assert snapshot["version"] == 1
        names = {entry["name"] for entry in snapshot["metrics"]}
        # The journal fsync instrumentation fired for every append the
        # campaign job produced.
        assert "journal_appends_total" in names
        assert "journal_append_fsync_seconds" in names
        assert "# TYPE journal_appends_total counter" \
            in response["prometheus"]
        assert "journal_append_fsync_seconds_bucket" \
            in response["prometheus"]

    def test_metrics_frame_leaves_journal_untouched(self, client,
                                                    service):
        before = service.journal.tip_seq
        client.metrics()
        client.trace()
        assert service.journal.tip_seq == before

    def test_trace_frame_serves_live_buffer_shape(self, client):
        response = client.trace()
        assert response["type"] == "trace"
        assert isinstance(response["spans"], list)

    def test_trace_frame_hostile_fingerprint_is_empty_not_error(
            self, client):
        response = client.trace("../../etc")
        assert response == {"type": "trace", "trace_id": None,
                            "spans": []}

    def test_miss_after_completed_job_is_not_flagged_empty(
            self, client, campaign_job):
        miss = client.query(what="job", job="f" * 16)
        assert miss["type"] == "result" and not miss["hit"]
        assert "empty" not in miss


class TestEmptyService:
    """The PR 9 query fix: a miss against a service with nothing
    sealed is a typed empty state, not an opaque null."""

    def test_query_before_any_completed_job_is_typed_empty(
            self, tmp_path):
        with AuditService(tmp_path / "journal",
                          store_dir=tmp_path / "store",
                          start_worker=False) as fresh:
            with ServiceClient(fresh.address) as probe:
                response = probe.query(what="job", job="f" * 16)
        assert response["type"] == "result"
        assert not response["hit"]
        assert response["empty"] is True
        assert "no completed jobs" in response["reason"]

    def test_cli_query_renders_the_empty_state(self, tmp_path, capsys):
        from repro.cli import main

        with AuditService(tmp_path / "journal",
                          store_dir=tmp_path / "store",
                          start_worker=False) as fresh:
            rc = main(["query", "--connect", str(fresh.address),
                       "--what", "job", "--job", "f" * 16])
        assert rc == 1
        err = capsys.readouterr().err
        assert "no completed jobs" in err
