"""Tests for ExperimentResult rendering, context scales, ablations,
carriage, equity experiment, and staleness experiment."""

import numpy as np
import pytest

from repro.analysis.ablations import (
    run_q3_granularity_ablation,
    run_retry_budget_ablation,
    run_sampling_floor_ablation,
    run_weighting_ablation,
)
from repro.analysis.carriage import run as run_carriage
from repro.analysis.context import ExperimentContext, scale_from_environment
from repro.analysis.equity import run as run_equity
from repro.analysis.result import ExperimentResult, _series_quantile
from repro.analysis.staleness import run as run_staleness
from repro.stats.ecdf import ECDF
from repro.tabular import Table


class TestExperimentResult:
    def test_render_sections(self):
        result = ExperimentResult(
            experiment_id="demo",
            title="Demo experiment",
            scalars={"rate": 0.5545, "paper_rate": 0.5545},
            tables={"rows": Table({"a": [1, 2]})},
            series={"cdf": ECDF([1.0, 2.0, 3.0]).series()},
            notes=["a note"],
        )
        text = result.render()
        assert "demo: Demo experiment" in text
        assert "rate" in text
        assert "-- rows --" in text
        assert "p50=" in text
        assert "note: a note" in text

    def test_series_quantile_inverts(self):
        xs, ys = ECDF([10.0, 20.0, 30.0, 40.0]).series()
        assert _series_quantile(xs, ys, 0.5) == pytest.approx(20.0)
        assert _series_quantile(xs, ys, 1.0) == pytest.approx(40.0)

    def test_render_respects_max_rows(self):
        result = ExperimentResult(
            experiment_id="demo", title="t",
            tables={"rows": Table({"a": list(range(100))})})
        text = result.render(max_rows=5)
        assert "more rows" in text


class TestContext:
    def test_scale_from_environment_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_environment() == "tiny"

    def test_scale_from_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "SMALL")
        assert scale_from_environment() == "small"

    def test_scale_from_environment_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            scale_from_environment()

    def test_at_scale_builds_lazily(self):
        context = ExperimentContext.at_scale("tiny")
        assert context._world is None
        assert context._report is None

    def test_prebuilt_context_reuses_objects(self, context, world, report):
        assert context.world is world
        assert context.report is report


class TestAblations:
    def test_weighting(self, context):
        result = run_weighting_ablation(context)
        scalars = result.scalars
        assert 0.0 <= scalars["per_address_rate"] <= 1.0
        assert scalars["weighting_shift_pp"] == pytest.approx(
            100 * (scalars["weighted_rate"] - scalars["unweighted_cbg_rate"]))

    def test_sampling_floor(self, context):
        result = run_sampling_floor_ablation(context, floors=(10, 30))
        sweep = result.tables["floor_sweep"]
        assert len(sweep) == 2
        assert all(row["abs_error_pp"] >= 0 for row in sweep.iter_rows())

    def test_retry_budget_monotone(self, context):
        result = run_retry_budget_ablation(context, budgets=(1, 3))
        rows = sorted(result.tables["budget_sweep"].iter_rows(),
                      key=lambda r: r["max_attempts"])
        assert rows[1]["unknown_fraction"] <= \
            rows[0]["unknown_fraction"] + 1e-9
        assert rows[1]["virtual_hours"] >= rows[0]["virtual_hours"] - 1e-9

    def test_q3_granularity(self, context):
        result = run_q3_granularity_ablation(context)
        assert result.scalars["num_cbgs"] <= result.scalars["num_blocks"]
        # Pooling erodes exact ties.
        assert result.scalars["cbg_tie_share"] <= \
            result.scalars["block_tie_share"] + 0.05


class TestCarriage:
    def test_shape(self, context):
        result = run_carriage(context)
        scalars = result.scalars
        assert scalars["fcc_implied_carriage_10mbps"] == pytest.approx(
            10.0 / 89.0)
        assert scalars["caf_median_carriage"] > 0
        assert 0.0 <= scalars["share_below_urban_noncompetitive"] <= 1.0
        table = result.tables["carriage_by_isp"]
        assert set(table["isp"]) <= {"att", "centurylink", "frontier",
                                     "consolidated"}

    def test_fcc_floor_is_far_below_urban(self, context):
        result = run_carriage(context)
        assert result.scalars["fcc_implied_carriage_10mbps"] < \
            result.scalars["urban_noncompetitive_median"] / 50


class TestEquityExperiment:
    def test_runs_and_reports(self, context):
        result = run_equity(context)
        assert "income_serviceability_spearman" in result.scalars
        assert len(result.tables["income_quartiles"]) == 4


class TestSeedSweep:
    def test_two_seed_sweep(self, context):
        from repro.analysis.seed_sweep import run_seed_sweep

        result = run_seed_sweep(context, seeds=(0, 1))
        table = result.tables["per_seed"]
        assert list(table["seed"]) == [0, 1]
        assert result.scalars["serviceability_spread_pp"] >= 0.0

    def test_empty_seeds_raise(self, context):
        from repro.analysis.seed_sweep import run_seed_sweep

        with pytest.raises(ValueError):
            run_seed_sweep(context, seeds=())


class TestStalenessExperiment:
    def test_drift_table(self, context):
        result = run_staleness(context, years=(1,))
        table = result.tables["drift_by_horizon"]
        assert len(table) == 2
        assert table.row(0)["years_after_snapshot"] == 0
        assert table.row(0)["serviceability_drift_pp"] == 0.0
        drift = result.scalars["compliance_drift_pp_at_max_horizon"]
        assert -20.0 < drift < 30.0
