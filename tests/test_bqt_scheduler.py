"""Unit tests for repro.bqt.scheduler."""

import pytest

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.bqt.scheduler import WorkerSchedule, _lpt_makespan_seconds, \
    schedule_campaign


def record(isp, address_id, seconds):
    return QueryRecord(
        isp_id=isp, address_id=address_id,
        block_geoid="060371234561001", state_abbreviation="CA",
        status=QueryStatus.NO_SERVICE, elapsed_seconds=seconds)


class TestLptMakespan:
    def test_single_worker_sums(self):
        assert _lpt_makespan_seconds([3.0, 1.0, 2.0], 1) == 6.0

    def test_enough_workers_takes_longest(self):
        assert _lpt_makespan_seconds([3.0, 1.0, 2.0], 3) == 3.0
        assert _lpt_makespan_seconds([3.0, 1.0, 2.0], 10) == 3.0

    def test_lpt_balances(self):
        # LPT on {4,3,2,1} with 2 workers: 4+1 and 3+2 → makespan 5.
        assert _lpt_makespan_seconds([4.0, 3.0, 2.0, 1.0], 2) == 5.0

    def test_empty(self):
        assert _lpt_makespan_seconds([], 4) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            _lpt_makespan_seconds([1.0], 0)


class TestScheduleCampaign:
    def _log(self):
        log = QueryLog()
        for i in range(20):
            log.append(record("att", f"a-{i}", 100.0))
        for i in range(20):
            log.append(record("centurylink", f"c-{i}", 10.0))
        return log

    def test_wall_clock_is_slowest_isp(self):
        schedule = schedule_campaign(self._log(), workers_per_isp=2)
        assert schedule.wall_clock_days == \
            schedule.per_isp_makespan_days["att"]

    def test_more_workers_shrink_makespan(self):
        log = self._log()
        two = schedule_campaign(log, workers_per_isp=2)
        four = schedule_campaign(log, workers_per_isp=4)
        assert four.wall_clock_days < two.wall_clock_days

    def test_makespan_bounds(self):
        # Makespan is at least total/workers and at most total.
        log = self._log()
        schedule = schedule_campaign(log, workers_per_isp=4)
        att_total_days = 20 * 100.0 / 86_400.0
        assert schedule.per_isp_makespan_days["att"] >= att_total_days / 4
        assert schedule.per_isp_makespan_days["att"] <= att_total_days

    def test_per_isp_worker_map(self):
        schedule = schedule_campaign(self._log(),
                                     workers_per_isp={"att": 4})
        assert schedule.per_isp_workers["att"] == 4
        assert schedule.per_isp_workers["centurylink"] == 1

    def test_utilization_bounded(self):
        schedule = schedule_campaign(self._log(), workers_per_isp=3)
        assert 0.0 < schedule.utilization <= 1.0

    def test_identical_durations_fully_utilized(self):
        log = QueryLog()
        for i in range(8):
            log.append(record("att", f"a-{i}", 50.0))
        schedule = schedule_campaign(log, workers_per_isp=4)
        assert schedule.utilization == pytest.approx(1.0)

    def test_politeness_cap(self):
        with pytest.raises(ValueError, match="politeness"):
            schedule_campaign(self._log(),
                              workers_per_isp=MAX_POLITE_WORKERS_PER_ISP + 1)

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            schedule_campaign(QueryLog())

    def test_render(self):
        schedule = schedule_campaign(self._log())
        text = schedule.render()
        assert "wall clock" in text
        assert "att" in text

    def test_more_workers_than_queries(self):
        # 3 queries against 8 workers: makespan is the longest single
        # query; the extra workers sit idle but never go negative.
        log = QueryLog()
        for i, seconds in enumerate((30.0, 20.0, 10.0)):
            log.append(record("att", f"a-{i}", seconds))
        schedule = schedule_campaign(
            log, workers_per_isp=MAX_POLITE_WORKERS_PER_ISP)
        assert schedule.per_isp_makespan_days["att"] == \
            pytest.approx(30.0 / 86_400.0)
        assert 0.0 < schedule.utilization <= 1.0

    def test_single_worker_makespan_is_sum_of_durations(self):
        log = QueryLog()
        for i, seconds in enumerate((7.0, 11.0, 13.0)):
            log.append(record("att", f"a-{i}", seconds))
        schedule = schedule_campaign(log, workers_per_isp=1)
        assert schedule.per_isp_makespan_days["att"] == \
            pytest.approx(31.0 / 86_400.0)
        # One worker is always perfectly packed.
        assert schedule.utilization == pytest.approx(1.0)

    def test_utilization_bounds_across_fleet_sizes(self):
        log = self._log()
        for workers in range(1, MAX_POLITE_WORKERS_PER_ISP + 1):
            schedule = schedule_campaign(log, workers_per_isp=workers)
            assert 0.0 < schedule.utilization <= 1.0, workers

    def test_single_record_fleet(self):
        log = QueryLog()
        log.append(record("att", "a-0", 5.0))
        schedule = schedule_campaign(log, workers_per_isp=4)
        assert schedule.wall_clock_days == pytest.approx(5.0 / 86_400.0)
        assert 0.0 < schedule.utilization <= 1.0

    def test_on_real_collection(self, report):
        schedule = schedule_campaign(report.collection.log)
        assert isinstance(schedule, WorkerSchedule)
        assert schedule.wall_clock_days > 0
        # AT&T should dominate the schedule as it does Figure 12.
        assert schedule.per_isp_makespan_days["att"] == \
            schedule.wall_clock_days
