"""Unit tests for repro.bqt.scheduler."""

import pytest

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.bqt.scheduler import (
    WorkerSchedule,
    _lpt_makespan_seconds,
    plan_to_target,
    schedule_campaign,
    schedule_interleaved_campaign,
)


def record(isp, address_id, seconds):
    return QueryRecord(
        isp_id=isp, address_id=address_id,
        block_geoid="060371234561001", state_abbreviation="CA",
        status=QueryStatus.NO_SERVICE, elapsed_seconds=seconds)


class TestLptMakespan:
    def test_single_worker_sums(self):
        assert _lpt_makespan_seconds([3.0, 1.0, 2.0], 1) == 6.0

    def test_enough_workers_takes_longest(self):
        assert _lpt_makespan_seconds([3.0, 1.0, 2.0], 3) == 3.0
        assert _lpt_makespan_seconds([3.0, 1.0, 2.0], 10) == 3.0

    def test_lpt_balances(self):
        # LPT on {4,3,2,1} with 2 workers: 4+1 and 3+2 → makespan 5.
        assert _lpt_makespan_seconds([4.0, 3.0, 2.0, 1.0], 2) == 5.0

    def test_empty(self):
        assert _lpt_makespan_seconds([], 4) == 0.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            _lpt_makespan_seconds([1.0], 0)


class TestScheduleCampaign:
    def _log(self):
        log = QueryLog()
        for i in range(20):
            log.append(record("att", f"a-{i}", 100.0))
        for i in range(20):
            log.append(record("centurylink", f"c-{i}", 10.0))
        return log

    def test_wall_clock_is_slowest_isp(self):
        schedule = schedule_campaign(self._log(), workers_per_isp=2)
        assert schedule.wall_clock_days == \
            schedule.per_isp_makespan_days["att"]

    def test_more_workers_shrink_makespan(self):
        log = self._log()
        two = schedule_campaign(log, workers_per_isp=2)
        four = schedule_campaign(log, workers_per_isp=4)
        assert four.wall_clock_days < two.wall_clock_days

    def test_makespan_bounds(self):
        # Makespan is at least total/workers and at most total.
        log = self._log()
        schedule = schedule_campaign(log, workers_per_isp=4)
        att_total_days = 20 * 100.0 / 86_400.0
        assert schedule.per_isp_makespan_days["att"] >= att_total_days / 4
        assert schedule.per_isp_makespan_days["att"] <= att_total_days

    def test_per_isp_worker_map(self):
        schedule = schedule_campaign(self._log(),
                                     workers_per_isp={"att": 4})
        assert schedule.per_isp_workers["att"] == 4
        assert schedule.per_isp_workers["centurylink"] == 1

    def test_utilization_bounded(self):
        schedule = schedule_campaign(self._log(), workers_per_isp=3)
        assert 0.0 < schedule.utilization <= 1.0

    def test_identical_durations_fully_utilized(self):
        log = QueryLog()
        for i in range(8):
            log.append(record("att", f"a-{i}", 50.0))
        schedule = schedule_campaign(log, workers_per_isp=4)
        assert schedule.utilization == pytest.approx(1.0)

    def test_politeness_cap(self):
        with pytest.raises(ValueError, match="politeness"):
            schedule_campaign(self._log(),
                              workers_per_isp=MAX_POLITE_WORKERS_PER_ISP + 1)

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            schedule_campaign(QueryLog())

    def test_render(self):
        schedule = schedule_campaign(self._log())
        text = schedule.render()
        assert "wall clock" in text
        assert "att" in text

    def test_more_workers_than_queries(self):
        # 3 queries against 8 workers: makespan is the longest single
        # query; the extra workers sit idle but never go negative.
        log = QueryLog()
        for i, seconds in enumerate((30.0, 20.0, 10.0)):
            log.append(record("att", f"a-{i}", seconds))
        schedule = schedule_campaign(
            log, workers_per_isp=MAX_POLITE_WORKERS_PER_ISP)
        assert schedule.per_isp_makespan_days["att"] == \
            pytest.approx(30.0 / 86_400.0)
        assert 0.0 < schedule.utilization <= 1.0

    def test_single_worker_makespan_is_sum_of_durations(self):
        log = QueryLog()
        for i, seconds in enumerate((7.0, 11.0, 13.0)):
            log.append(record("att", f"a-{i}", seconds))
        schedule = schedule_campaign(log, workers_per_isp=1)
        assert schedule.per_isp_makespan_days["att"] == \
            pytest.approx(31.0 / 86_400.0)
        # One worker is always perfectly packed.
        assert schedule.utilization == pytest.approx(1.0)

    def test_utilization_bounds_across_fleet_sizes(self):
        log = self._log()
        for workers in range(1, MAX_POLITE_WORKERS_PER_ISP + 1):
            schedule = schedule_campaign(log, workers_per_isp=workers)
            assert 0.0 < schedule.utilization <= 1.0, workers

    def test_single_record_fleet(self):
        log = QueryLog()
        log.append(record("att", "a-0", 5.0))
        schedule = schedule_campaign(log, workers_per_isp=4)
        assert schedule.wall_clock_days == pytest.approx(5.0 / 86_400.0)
        assert 0.0 < schedule.utilization <= 1.0

    def test_on_real_collection(self, report):
        schedule = schedule_campaign(report.collection.log)
        assert isinstance(schedule, WorkerSchedule)
        assert schedule.wall_clock_days > 0
        # AT&T should dominate the schedule as it does Figure 12.
        assert schedule.per_isp_makespan_days["att"] == \
            schedule.wall_clock_days


class TestInterleavedSchedule:
    def _skewed_log(self):
        """Four storefronts, one dominant: the shape where dedicated
        per-ISP fleets idle and interleaving pays."""
        log = QueryLog()
        for i in range(40):
            log.append(record("att", f"a-{i}", 100.0))
        for isp in ("centurylink", "frontier", "consolidated"):
            for i in range(6):
                log.append(record(isp, f"{isp}-{i}", 10.0))
        return log

    def test_politeness_cap_validated(self):
        with pytest.raises(ValueError, match="politeness"):
            schedule_interleaved_campaign(
                self._skewed_log(),
                per_isp_cap=MAX_POLITE_WORKERS_PER_ISP + 1)
        with pytest.raises(ValueError):
            schedule_interleaved_campaign(self._skewed_log(), loops=0)
        with pytest.raises(ValueError):
            schedule_interleaved_campaign(self._skewed_log(), max_inflight=0)
        with pytest.raises(ValueError):
            schedule_interleaved_campaign(QueryLog())

    def test_wall_clock_bounded_below_by_capacity_and_politeness(self):
        log = self._skewed_log()
        schedule = schedule_interleaved_campaign(log, loops=2, max_inflight=4)
        total_days = sum(sum(log.query_times(i)) for i in log.isps()) / 86_400.0
        assert schedule.wall_clock_days >= total_days / schedule.slots
        assert schedule.wall_clock_days >= max(
            schedule.per_isp_makespan_days.values())
        assert 0.0 < schedule.utilization <= 1.0

    def test_interleaving_beats_dedicated_fleet_on_skewed_load(self):
        """Same politeness budget, same 8 concurrent sessions: loops
        that backfill idle storefront time finish strictly earlier and
        pack the campaign strictly better than per-ISP-bound
        containers (whose sessions idle once their own ISP drains)."""
        log = self._skewed_log()
        dedicated = schedule_campaign(log, workers_per_isp=2)  # 8 sessions
        interleaved = schedule_interleaved_campaign(
            log, loops=1, max_inflight=8, per_isp_cap=8)
        assert interleaved.wall_clock_days < dedicated.wall_clock_days
        # Campaign-level packing: busy time over (campaign wall clock x
        # all 8 sessions). WorkerSchedule.utilization is fleet-local,
        # so compute the dedicated fleet's campaign-level figure here.
        dedicated_campaign_util = dedicated.total_query_seconds / (
            dedicated.wall_clock_days * 86_400.0 * 8)
        assert interleaved.utilization > dedicated_campaign_util

    def test_per_isp_concurrency_never_exceeds_cap(self):
        log = self._skewed_log()
        capped = schedule_interleaved_campaign(
            log, loops=4, max_inflight=8, per_isp_cap=2)
        # With the cap at 2, att's makespan is bound by 2-way LPT even
        # though 32 slots exist.
        att_days = 40 * 100.0 / 86_400.0
        assert capped.per_isp_makespan_days["att"] >= att_days / 2 * 0.99

    def test_more_inflight_never_slower(self):
        log = self._skewed_log()
        previous = None
        for inflight in (1, 2, 4, 8):
            schedule = schedule_interleaved_campaign(
                log, loops=1, max_inflight=inflight)
            if previous is not None:
                assert schedule.wall_clock_days <= previous + 1e-12
            previous = schedule.wall_clock_days

    def test_render(self):
        schedule = schedule_interleaved_campaign(
            self._skewed_log(), loops=2, max_inflight=4)
        text = schedule.render()
        assert "2 loops x 4 in-flight" in text
        assert "utilization" in text


class TestPlanToTarget:
    """The autotuner primitive: smallest fleet meeting a wall-clock."""

    def _log(self):
        log = QueryLog()
        for isp in ("att", "centurylink"):
            for i in range(20):
                log.append(record(isp, f"{isp}-{i}", 100.0))
        return log

    def test_generous_target_picks_one_slot(self):
        log = self._log()
        total = log.total_virtual_seconds()
        schedule = plan_to_target(log, target_seconds=total * 10)
        assert schedule.loops == 1
        assert schedule.max_inflight == 1

    def test_feasible_target_met_with_minimal_slots(self):
        log = self._log()
        total = log.total_virtual_seconds()
        schedule = plan_to_target(log, target_seconds=total / 3)
        assert schedule.wall_clock_days * 86_400.0 <= total / 3
        # Any strictly smaller fleet must miss the target.
        slots = schedule.slots
        for loops in range(1, schedule.loops + 1):
            for inflight in (1, 2, 4, 8, 16, 32):
                if loops * inflight >= slots:
                    continue
                worse = schedule_interleaved_campaign(
                    log, loops=loops, max_inflight=inflight)
                assert worse.wall_clock_days * 86_400.0 > total / 3

    def test_impossible_target_returns_fastest(self):
        log = self._log()
        schedule = plan_to_target(log, target_seconds=1e-6)
        assert schedule.wall_clock_days * 86_400.0 > 1e-6
        # Nothing in the search space beats the returned schedule.
        fastest = min(
            schedule_interleaved_campaign(log, loops=loops,
                                          max_inflight=inflight)
            .wall_clock_days
            for loops in range(1, MAX_POLITE_WORKERS_PER_ISP + 1)
            for inflight in (1, 2, 4, 8, 16, 32))
        assert schedule.wall_clock_days == pytest.approx(fastest)

    def test_cap_for_loops_prices_divided_budget(self):
        """The distributed executor floor-divides the politeness cap
        across workers; pricing candidates with the achievable
        (divided) cap can never predict a faster campaign than the
        undivided model."""
        log = self._log()
        undivided = plan_to_target(log, target_seconds=1e-6)
        divided = plan_to_target(
            log, target_seconds=1e-6,
            cap_for_loops=lambda loops:
                max(1, MAX_POLITE_WORKERS_PER_ISP // loops) * loops)
        assert divided.wall_clock_days >= undivided.wall_clock_days - 1e-12
        # And the divided model's cap is what that fleet can reach.
        assert divided.per_isp_cap == max(
            1, MAX_POLITE_WORKERS_PER_ISP // divided.loops) * divided.loops

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_to_target(self._log(), target_seconds=0.0)
        with pytest.raises(ValueError):
            plan_to_target(self._log(), target_seconds=10.0, max_loops=0)
        with pytest.raises(ValueError):
            plan_to_target(self._log(), target_seconds=10.0,
                           max_inflight_ceiling=0)
