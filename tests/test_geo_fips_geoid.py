"""Unit tests for repro.geo.fips and repro.geo.geoid."""

import pytest

from repro.geo.fips import (
    ALL_STATES,
    Q3_STATES,
    STUDY_STATES,
    state_by_abbreviation,
    state_by_fips,
)
from repro.geo.geoid import (
    block_geoid,
    block_group_geoid,
    county_geoid,
    parse_geoid,
    tract_geoid,
)


class TestFips:
    def test_fifty_one_jurisdictions(self):
        assert len(ALL_STATES) == 51

    def test_fips_codes_unique(self):
        assert len({s.fips for s in ALL_STATES}) == len(ALL_STATES)

    def test_abbreviations_unique(self):
        assert len({s.abbreviation for s in ALL_STATES}) == len(ALL_STATES)

    def test_lookup_by_fips(self):
        assert state_by_fips("06").abbreviation == "CA"
        assert state_by_fips("50").name == "Vermont"

    def test_lookup_by_abbreviation_case_insensitive(self):
        assert state_by_abbreviation("ca").fips == "06"

    def test_unknown_lookups_raise(self):
        with pytest.raises(KeyError):
            state_by_fips("99")
        with pytest.raises(KeyError):
            state_by_abbreviation("XX")

    def test_study_states_are_the_papers_fifteen(self):
        assert len(STUDY_STATES) == 15
        assert set(Q3_STATES) <= set(STUDY_STATES)
        assert len(Q3_STATES) == 7

    def test_study_states_span_regions(self):
        regions = {state_by_abbreviation(s).region for s in STUDY_STATES}
        assert {"West", "South", "Midwest", "Northeast"} <= regions

    def test_population_extremes_present(self):
        # Paper: most populous (CA) to one of the least (VT).
        populations = {s: state_by_abbreviation(s).population_millions
                       for s in STUDY_STATES}
        assert max(populations, key=populations.get) == "CA"
        assert min(populations, key=populations.get) == "VT"

    def test_bounds_are_sane(self):
        for state in ALL_STATES:
            assert state.bounds.west < state.bounds.east
            assert state.bounds.south < state.bounds.north


class TestGeoid:
    def test_nesting_round_trip(self):
        county = county_geoid("06", 37)
        tract = tract_geoid(county, 123_456)
        block_group = block_group_geoid(tract, 4)
        block = block_geoid(block_group, 7)
        assert county == "06037"
        assert tract == "06037123456"
        assert block_group == "060371234564"
        assert block == "060371234564007"

        parts = parse_geoid(block)
        assert parts.level == "block"
        assert parts.state_fips == "06"
        assert parts.county_geoid == county
        assert parts.tract_geoid == tract
        assert parts.block_group_geoid == block_group
        assert parts.block_geoid == block

    def test_parse_each_level(self):
        assert parse_geoid("06").level == "state"
        assert parse_geoid("06037").level == "county"
        assert parse_geoid("06037123456").level == "tract"
        assert parse_geoid("060371234561").level == "block_group"
        assert parse_geoid("060371234561001").level == "block"

    def test_parse_partial_levels_have_none_below(self):
        parts = parse_geoid("06037")
        assert parts.tract is None
        assert parts.block_group_geoid is None

    def test_bad_widths_raise(self):
        with pytest.raises(ValueError, match="width"):
            parse_geoid("0603")

    def test_non_digit_raises(self):
        with pytest.raises(ValueError, match="digits"):
            parse_geoid("06abc")

    def test_out_of_range_components_raise(self):
        with pytest.raises(ValueError):
            county_geoid("06", 1000)
        with pytest.raises(ValueError):
            tract_geoid("06037", 1_000_000)
        with pytest.raises(ValueError):
            block_group_geoid("06037123456", 10)
        with pytest.raises(ValueError):
            block_geoid("060371234561", 1000)

    def test_bad_prefixes_raise(self):
        with pytest.raises(ValueError):
            tract_geoid("0603", 1)
        with pytest.raises(ValueError):
            block_group_geoid("06037", 1)
