"""Unit tests for repro.core.monopoly."""

import pytest

from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.collection import Q3Collection
from repro.core.monopoly import BlockComparison, MonopolyAnalysis, analyze_q3
from repro.isp.plans import BroadbandPlan


def comparison(block="060371234561001", caf=20.0, monopoly=None,
               competition=None) -> BlockComparison:
    return BlockComparison(
        block_geoid=block, incumbent_isp_id="att", caf_avg_mbps=caf,
        monopoly_avg_mbps=monopoly, competition_avg_mbps=competition,
        n_caf_served=3,
        n_monopoly_served=2 if monopoly is not None else 0,
        n_competition_served=2 if competition is not None else 0,
    )


class TestBlockComparison:
    def test_typing(self):
        assert comparison(monopoly=10.0).block_type == "A"
        assert comparison(competition=10.0).block_type == "B"
        assert comparison(monopoly=10.0, competition=10.0).block_type == "C"

    def test_outcomes_with_tolerance(self):
        block = comparison(caf=100.0, monopoly=100.0)
        assert block.outcome_vs(100.0, 0.02) == "tie"
        assert block.outcome_vs(99.0, 0.02) == "tie"   # within 2%
        assert block.outcome_vs(50.0, 0.02) == "caf"
        assert block.outcome_vs(200.0, 0.02) == "rival"

    def test_pct_increase(self):
        block = comparison(caf=175.0, monopoly=100.0)
        assert block.pct_increase(100.0) == pytest.approx(75.0)
        # Symmetric: winner over loser regardless of direction.
        losing = comparison(caf=100.0, monopoly=175.0)
        assert losing.pct_increase(175.0) == pytest.approx(75.0)

    def test_pct_increase_from_zero_raises(self):
        block = comparison(caf=10.0, monopoly=0.0)
        with pytest.raises(ValueError):
            block.pct_increase(0.0)

    def test_invariants(self):
        with pytest.raises(ValueError, match="non-CAF"):
            BlockComparison("060371234561001", "att", 10.0, None, None,
                            n_caf_served=1, n_monopoly_served=0,
                            n_competition_served=0)
        with pytest.raises(ValueError, match="served CAF"):
            BlockComparison("060371234561001", "att", 10.0, 5.0, None,
                            n_caf_served=0, n_monopoly_served=1,
                            n_competition_served=0)


class TestMonopolyAnalysis:
    @pytest.fixture
    def analysis(self) -> MonopolyAnalysis:
        blocks = [
            comparison("060371234561001", caf=20.0, monopoly=20.0),   # tie
            comparison("060371234561002", caf=35.0, monopoly=20.0),   # caf
            comparison("060371234561003", caf=10.0, monopoly=14.5),   # rival
            comparison("060371234561004", caf=100.0, competition=50.0),  # B caf
            comparison("060371234561005", caf=40.0, monopoly=40.0,
                       competition=45.0),                             # C
        ]
        return MonopolyAnalysis(blocks)

    def test_type_counts(self, analysis: MonopolyAnalysis):
        assert analysis.type_counts() == {"A": 3, "B": 1, "C": 1}

    def test_outcome_shares(self, analysis: MonopolyAnalysis):
        shares = analysis.outcome_shares("A", "monopoly")
        assert shares == pytest.approx(
            {"tie": 1 / 3, "caf": 1 / 3, "rival": 1 / 3})

    def test_outcome_shares_sum_to_one(self, analysis: MonopolyAnalysis):
        shares = analysis.outcome_shares("A", "monopoly")
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_speed_cdfs(self, analysis: MonopolyAnalysis):
        caf_cdf, rival_cdf = analysis.speed_cdfs("A", "monopoly", "caf")
        assert caf_cdf.n == 1
        assert caf_cdf.median() == pytest.approx(35.0)
        assert rival_cdf.median() == pytest.approx(20.0)

    def test_pct_increase_cdf(self, analysis: MonopolyAnalysis):
        increase = analysis.pct_increase_cdf("A", "monopoly", "caf")
        assert increase.median() == pytest.approx(75.0)
        rival_increase = analysis.pct_increase_cdf("A", "monopoly", "rival")
        assert rival_increase.median() == pytest.approx(45.0)

    def test_caf_speed_cdf_by_type(self, analysis: MonopolyAnalysis):
        cdfs = analysis.caf_speed_cdf_by_type()
        assert cdfs["A"].n == 3
        assert cdfs["B"].n == 1

    def test_no_matching_winner_raises(self, analysis: MonopolyAnalysis):
        with pytest.raises(ValueError):
            analysis.speed_cdfs("B", "competition", "rival")

    def test_bad_arguments_raise(self, analysis: MonopolyAnalysis):
        with pytest.raises(ValueError):
            analysis.of_type("D")
        with pytest.raises(ValueError):
            analysis.outcome_shares("A", "nope")

    def test_to_table(self, analysis: MonopolyAnalysis):
        table = analysis.to_table()
        assert len(table) == 5
        assert "caf_avg_mbps" in table.column_names

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MonopolyAnalysis([])


class TestAnalyzeQ3:
    def _record(self, address_id, isp="att", served=True, speed=25.0,
                block="060371234561001"):
        if not served:
            return QueryRecord(isp_id=isp, address_id=address_id,
                               block_geoid=block, state_abbreviation="CA",
                               status=QueryStatus.NO_SERVICE)
        plan = BroadbandPlan("p", speed, speed / 10, 50.0)
        return QueryRecord(isp_id=isp, address_id=address_id,
                           block_geoid=block, state_abbreviation="CA",
                           status=QueryStatus.SERVICEABLE, plans=(plan,))

    def test_builds_comparison_from_log(self):
        block = "060371234561001"
        log = QueryLog([
            self._record("caf-1", speed=40.0),
            self._record("caf-2", speed=40.0),
            self._record("non-1", speed=20.0),
            self._record("non-2", served=False),
        ])
        collection = Q3Collection(
            log=log,
            modes={"caf-1": "caf", "caf-2": "caf",
                   "non-1": "monopoly", "non-2": "monopoly"},
            incumbents={block: "att"},
            analyzed_blocks=(block,),
        )
        analysis = analyze_q3(collection)
        assert analysis.type_counts()["A"] == 1
        result = analysis.blocks[0]
        assert result.caf_avg_mbps == pytest.approx(40.0)
        assert result.monopoly_avg_mbps == pytest.approx(20.0)
        assert result.n_monopoly_served == 1

    def test_cable_records_do_not_pollute_averages(self):
        block = "060371234561001"
        log = QueryLog([
            self._record("caf-1", speed=10.0),
            self._record("non-1", speed=10.0),
            # Cable at the same non-CAF address: used for mode
            # assignment only, never averaged into incumbent speeds.
            self._record("non-1x", isp="xfinity", speed=1000.0),
        ])
        collection = Q3Collection(
            log=log,
            modes={"caf-1": "caf", "non-1": "competition",
                   "non-1x": "competition"},
            incumbents={block: "att"},
            analyzed_blocks=(block,),
        )
        analysis = analyze_q3(collection)
        result = analysis.blocks[0]
        assert result.competition_avg_mbps == pytest.approx(10.0)

    def test_blocks_without_served_caf_dropped(self):
        block = "060371234561001"
        log = QueryLog([
            self._record("caf-1", served=False),
            self._record("non-1", speed=20.0),
        ])
        collection = Q3Collection(
            log=log,
            modes={"caf-1": "caf", "non-1": "monopoly"},
            incumbents={block: "att"},
            analyzed_blocks=(block,),
        )
        with pytest.raises(ValueError, match="no comparison blocks"):
            analyze_q3(collection)

    def test_bad_tolerance_raises(self):
        with pytest.raises(ValueError):
            analyze_q3(Q3Collection(log=QueryLog()), tie_tolerance=1.5)

    def test_bad_metric_raises(self):
        with pytest.raises(ValueError, match="metric"):
            analyze_q3(Q3Collection(log=QueryLog()), metric="latency")

    def test_carriage_metric_changes_values(self):
        block = "060371234561001"
        log = QueryLog([
            self._record("caf-1", speed=40.0),
            self._record("non-1", speed=20.0),
        ])
        collection = Q3Collection(
            log=log,
            modes={"caf-1": "caf", "non-1": "monopoly"},
            incumbents={block: "att"},
            analyzed_blocks=(block,),
        )
        speed_view = analyze_q3(collection, metric="speed").blocks[0]
        carriage_view = analyze_q3(collection, metric="carriage").blocks[0]
        assert speed_view.caf_avg_mbps == pytest.approx(40.0)
        # All test plans cost $50, so carriage = speed / 50.
        assert carriage_view.caf_avg_mbps == pytest.approx(40.0 / 50.0)
        assert carriage_view.monopoly_avg_mbps == pytest.approx(20.0 / 50.0)


class TestCarriageTrendsMatchSpeedTrends:
    def test_similar_trends_on_real_world(self, report):
        """§4.3: carriage-based outcomes show the same qualitative
        structure as speed-based ones."""
        speed_shares = report.monopoly.outcome_shares("A", "monopoly")
        carriage = analyze_q3(report.q3_collection, metric="carriage")
        carriage_shares = carriage.outcome_shares("A", "monopoly")
        # Same modal outcome ordering: ties dominate, CAF-better beats
        # monopoly-better.
        assert carriage_shares["tie"] == max(carriage_shares.values())
        assert abs(carriage_shares["caf"] - speed_shares["caf"]) < 0.25
