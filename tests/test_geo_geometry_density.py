"""Unit tests for repro.geo.geometry and repro.geo.density."""

import pytest

from repro.geo.density import DensitySurface, URBAN_DENSITY_THRESHOLD
from repro.geo.geometry import BoundingBox, Point, haversine_miles


class TestPoint:
    def test_valid_construction(self):
        point = Point(-120.0, 38.0)
        assert point.longitude == -120.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Point(-190.0, 0.0)
        with pytest.raises(ValueError):
            Point(0.0, 95.0)

    def test_distance_zero_to_self(self):
        point = Point(-100.0, 40.0)
        assert point.distance_miles(point) == 0.0

    def test_known_distance(self):
        # One degree of latitude ≈ 69 miles.
        a = Point(-100.0, 40.0)
        b = Point(-100.0, 41.0)
        assert haversine_miles(a, b) == pytest.approx(69.0, rel=0.02)

    def test_symmetry(self):
        a = Point(-100.0, 40.0)
        b = Point(-95.0, 42.0)
        assert haversine_miles(a, b) == pytest.approx(haversine_miles(b, a))


class TestBoundingBox:
    def test_inverted_bounds_raise(self):
        with pytest.raises(ValueError):
            BoundingBox(west=0.0, south=0.0, east=-1.0, north=1.0)
        with pytest.raises(ValueError):
            BoundingBox(west=0.0, south=1.0, east=1.0, north=0.0)

    def test_center(self):
        box = BoundingBox(west=-10.0, south=0.0, east=10.0, north=20.0)
        assert box.center == Point(0.0, 10.0)

    def test_contains(self):
        box = BoundingBox(west=-10.0, south=0.0, east=10.0, north=20.0)
        assert box.contains(Point(0.0, 10.0))
        assert box.contains(Point(-10.0, 0.0))  # boundary
        assert not box.contains(Point(11.0, 10.0))

    def test_interpolate_corners(self):
        box = BoundingBox(west=-10.0, south=0.0, east=10.0, north=20.0)
        assert box.interpolate(0.0, 0.0) == Point(-10.0, 0.0)
        assert box.interpolate(1.0, 1.0) == Point(10.0, 20.0)

    def test_interpolate_out_of_range_raises(self):
        box = BoundingBox(west=-10.0, south=0.0, east=10.0, north=20.0)
        with pytest.raises(ValueError):
            box.interpolate(1.1, 0.5)

    def test_area_positive_and_latitude_dependent(self):
        equatorial = BoundingBox(west=0.0, south=-1.0, east=1.0, north=1.0)
        polar = BoundingBox(west=0.0, south=69.0, east=1.0, north=71.0)
        assert equatorial.area_square_miles() > polar.area_square_miles() > 0


class TestDensitySurface:
    @pytest.fixture
    def surface(self) -> DensitySurface:
        return DensitySurface(
            city_centers=(Point(-100.0, 40.0),),
            city_peaks=(10_000.0,),
            decay_scale_miles=15.0,
            rural_floor=3.0,
        )

    def test_density_peaks_at_city(self, surface: DensitySurface):
        at_city = surface.density_at(Point(-100.0, 40.0))
        far = surface.density_at(Point(-95.0, 40.0))
        assert at_city == pytest.approx(10_003.0)
        assert far < at_city

    def test_density_never_below_floor(self, surface: DensitySurface):
        assert surface.density_at(Point(-80.0, 30.0)) >= 3.0

    def test_monotone_decay_with_distance(self, surface: DensitySurface):
        densities = [surface.density_at(Point(-100.0 + dx, 40.0))
                     for dx in (0.0, 0.5, 1.0, 2.0)]
        assert densities == sorted(densities, reverse=True)

    def test_rural_classification(self, surface: DensitySurface):
        assert not surface.is_rural(Point(-100.0, 40.0))
        assert surface.is_rural(Point(-90.0, 40.0))

    def test_urban_threshold_value(self):
        assert URBAN_DENSITY_THRESHOLD == 500.0

    def test_distance_to_nearest_city(self):
        surface = DensitySurface(
            city_centers=(Point(-100.0, 40.0), Point(-90.0, 40.0)),
            city_peaks=(5_000.0, 2_000.0),
            decay_scale_miles=10.0,
            rural_floor=1.0,
        )
        near_second = Point(-90.5, 40.0)
        assert surface.distance_to_nearest_city(near_second) < 40.0

    def test_invalid_construction_raises(self):
        with pytest.raises(ValueError):
            DensitySurface(city_centers=(), city_peaks=(),
                           decay_scale_miles=1.0, rural_floor=1.0)
        with pytest.raises(ValueError):
            DensitySurface(city_centers=(Point(0, 0),), city_peaks=(1.0, 2.0),
                           decay_scale_miles=1.0, rural_floor=1.0)
        with pytest.raises(ValueError):
            DensitySurface(city_centers=(Point(0, 0),), city_peaks=(1.0,),
                           decay_scale_miles=0.0, rural_floor=1.0)
