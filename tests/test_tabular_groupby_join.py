"""Unit tests for repro.tabular.groupby and repro.tabular.join."""

import numpy as np
import pytest

from repro.tabular import Table, join


@pytest.fixture
def audit_like() -> Table:
    return Table({
        "isp": ["att", "att", "att", "cl", "cl"],
        "cbg": ["c1", "c1", "c2", "c1", "c3"],
        "served": [1.0, 0.0, 1.0, 1.0, 1.0],
    })


class TestGroupBy:
    def test_group_count(self, audit_like: Table):
        grouped = audit_like.group_by(["isp", "cbg"])
        assert len(grouped) == 4

    def test_size_table(self, audit_like: Table):
        sizes = audit_like.group_by("isp").size()
        counts = dict(zip(sizes["isp"], sizes["count"]))
        assert counts == {"att": 3, "cl": 2}

    def test_agg_named_aggregations(self, audit_like: Table):
        result = audit_like.group_by("isp").agg(
            served=("served", np.sum),
            total=("served", len),
        )
        row = result.where_equal(isp="att").row(0)
        assert row["served"] == 2.0
        assert row["total"] == 3

    def test_agg_missing_source_raises(self, audit_like: Table):
        with pytest.raises(KeyError):
            audit_like.group_by("isp").agg(x=("nope", np.sum))

    def test_agg_without_aggregations_raises(self, audit_like: Table):
        with pytest.raises(ValueError):
            audit_like.group_by("isp").agg()

    def test_apply(self, audit_like: Table):
        rates = audit_like.group_by(["isp", "cbg"]).apply(
            lambda sub: {"rate": float(np.mean(sub["served"]))})
        att_c1 = rates.where_equal(isp="att", cbg="c1").row(0)
        assert att_c1["rate"] == pytest.approx(0.5)

    def test_apply_cannot_overwrite_keys(self, audit_like: Table):
        with pytest.raises(ValueError, match="key"):
            audit_like.group_by("isp").apply(lambda sub: {"isp": "x"})

    def test_groups_iteration_preserves_first_seen_order(self, audit_like: Table):
        keys = [key for key, _ in audit_like.group_by("isp").groups()]
        assert keys == [("att",), ("cl",)]

    def test_group_lookup(self, audit_like: Table):
        sub = audit_like.group_by("isp").group("cl")
        assert len(sub) == 2

    def test_group_lookup_missing_raises(self, audit_like: Table):
        with pytest.raises(KeyError):
            audit_like.group_by("isp").group("nope")

    def test_missing_key_column_raises(self, audit_like: Table):
        with pytest.raises(KeyError):
            audit_like.group_by("nope")

    def test_empty_keys_raise(self, audit_like: Table):
        with pytest.raises(ValueError):
            audit_like.group_by([])


class TestJoin:
    def test_inner_join(self):
        left = Table({"cbg": ["a", "b", "c"], "rate": [0.1, 0.2, 0.3]})
        right = Table({"cbg": ["a", "c"], "density": [10.0, 30.0]})
        result = join(left, right, on="cbg")
        assert len(result) == 2
        assert list(result["density"]) == [10.0, 30.0]

    def test_left_join_fills_missing_numeric_with_nan(self):
        left = Table({"cbg": ["a", "b"], "rate": [0.1, 0.2]})
        right = Table({"cbg": ["a"], "density": [10.0]})
        result = join(left, right, on="cbg", how="left")
        assert len(result) == 2
        assert np.isnan(result["density"][1])

    def test_left_join_fills_missing_objects_with_none(self):
        left = Table({"k": [1, 2]})
        right = Table({"k": [1], "label": ["x"]})
        result = join(left, right, on="k", how="left")
        assert result["label"][1] is None

    def test_multi_key_join(self):
        left = Table({"isp": ["att", "att"], "state": ["CA", "GA"],
                      "rate": [0.3, 0.4]})
        right = Table({"isp": ["att"], "state": ["GA"], "funds": [5.0]})
        result = join(left, right, on=["isp", "state"])
        assert len(result) == 1
        assert result.row(0)["rate"] == pytest.approx(0.4)

    def test_fan_out_on_duplicate_right_keys(self):
        left = Table({"k": [1]})
        right = Table({"k": [1, 1], "v": [10, 20]})
        result = join(left, right, on="k")
        assert sorted(result["v"]) == [10, 20]

    def test_name_collision_suffixed(self):
        left = Table({"k": [1], "v": [1.0]})
        right = Table({"k": [1], "v": [2.0]})
        result = join(left, right, on="k")
        assert "v_right" in result.column_names

    def test_unknown_how_raises(self):
        table = Table({"k": [1]})
        with pytest.raises(ValueError):
            join(table, table, on="k", how="outer")

    def test_missing_key_raises(self):
        left = Table({"k": [1]})
        right = Table({"j": [1]})
        with pytest.raises(KeyError):
            join(left, right, on="k")

    def test_empty_result_keeps_schema(self):
        left = Table({"k": [1], "a": [1.0]})
        right = Table({"k": [2], "b": [2.0]})
        result = join(left, right, on="k")
        assert len(result) == 0
        assert result.column_names == ("k", "a", "b")
