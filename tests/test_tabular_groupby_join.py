"""Unit tests for repro.tabular.groupby and repro.tabular.join."""

import numpy as np
import pytest

from repro.tabular import Table, join


@pytest.fixture
def audit_like() -> Table:
    return Table({
        "isp": ["att", "att", "att", "cl", "cl"],
        "cbg": ["c1", "c1", "c2", "c1", "c3"],
        "served": [1.0, 0.0, 1.0, 1.0, 1.0],
    })


class TestGroupBy:
    def test_group_count(self, audit_like: Table):
        grouped = audit_like.group_by(["isp", "cbg"])
        assert len(grouped) == 4

    def test_size_table(self, audit_like: Table):
        sizes = audit_like.group_by("isp").size()
        counts = dict(zip(sizes["isp"], sizes["count"]))
        assert counts == {"att": 3, "cl": 2}

    def test_agg_named_aggregations(self, audit_like: Table):
        result = audit_like.group_by("isp").agg(
            served=("served", np.sum),
            total=("served", len),
        )
        row = result.where_equal(isp="att").row(0)
        assert row["served"] == 2.0
        assert row["total"] == 3

    def test_agg_missing_source_raises(self, audit_like: Table):
        with pytest.raises(KeyError):
            audit_like.group_by("isp").agg(x=("nope", np.sum))

    def test_agg_without_aggregations_raises(self, audit_like: Table):
        with pytest.raises(ValueError):
            audit_like.group_by("isp").agg()

    def test_apply(self, audit_like: Table):
        rates = audit_like.group_by(["isp", "cbg"]).apply(
            lambda sub: {"rate": float(np.mean(sub["served"]))})
        att_c1 = rates.where_equal(isp="att", cbg="c1").row(0)
        assert att_c1["rate"] == pytest.approx(0.5)

    def test_apply_cannot_overwrite_keys(self, audit_like: Table):
        with pytest.raises(ValueError, match="key"):
            audit_like.group_by("isp").apply(lambda sub: {"isp": "x"})

    def test_groups_iteration_preserves_first_seen_order(self, audit_like: Table):
        keys = [key for key, _ in audit_like.group_by("isp").groups()]
        assert keys == [("att",), ("cl",)]

    def test_group_lookup(self, audit_like: Table):
        sub = audit_like.group_by("isp").group("cl")
        assert len(sub) == 2

    def test_group_lookup_missing_raises(self, audit_like: Table):
        with pytest.raises(KeyError):
            audit_like.group_by("isp").group("nope")

    def test_missing_key_column_raises(self, audit_like: Table):
        with pytest.raises(KeyError):
            audit_like.group_by("nope")

    def test_empty_keys_raise(self, audit_like: Table):
        with pytest.raises(ValueError):
            audit_like.group_by([])


class TestJoin:
    def test_inner_join(self):
        left = Table({"cbg": ["a", "b", "c"], "rate": [0.1, 0.2, 0.3]})
        right = Table({"cbg": ["a", "c"], "density": [10.0, 30.0]})
        result = join(left, right, on="cbg")
        assert len(result) == 2
        assert list(result["density"]) == [10.0, 30.0]

    def test_left_join_fills_missing_numeric_with_nan(self):
        left = Table({"cbg": ["a", "b"], "rate": [0.1, 0.2]})
        right = Table({"cbg": ["a"], "density": [10.0]})
        result = join(left, right, on="cbg", how="left")
        assert len(result) == 2
        assert np.isnan(result["density"][1])

    def test_left_join_fills_missing_objects_with_none(self):
        left = Table({"k": [1, 2]})
        right = Table({"k": [1], "label": ["x"]})
        result = join(left, right, on="k", how="left")
        assert result["label"][1] is None

    def test_multi_key_join(self):
        left = Table({"isp": ["att", "att"], "state": ["CA", "GA"],
                      "rate": [0.3, 0.4]})
        right = Table({"isp": ["att"], "state": ["GA"], "funds": [5.0]})
        result = join(left, right, on=["isp", "state"])
        assert len(result) == 1
        assert result.row(0)["rate"] == pytest.approx(0.4)

    def test_fan_out_on_duplicate_right_keys(self):
        left = Table({"k": [1]})
        right = Table({"k": [1, 1], "v": [10, 20]})
        result = join(left, right, on="k")
        assert sorted(result["v"]) == [10, 20]

    def test_name_collision_suffixed(self):
        left = Table({"k": [1], "v": [1.0]})
        right = Table({"k": [1], "v": [2.0]})
        result = join(left, right, on="k")
        assert "v_right" in result.column_names

    def test_unknown_how_raises(self):
        table = Table({"k": [1]})
        with pytest.raises(ValueError):
            join(table, table, on="k", how="outer")

    def test_missing_key_raises(self):
        left = Table({"k": [1]})
        right = Table({"j": [1]})
        with pytest.raises(KeyError):
            join(left, right, on="k")

    def test_empty_result_keeps_schema(self):
        left = Table({"k": [1], "a": [1.0]})
        right = Table({"k": [2], "b": [2.0]})
        result = join(left, right, on="k")
        assert len(result) == 0
        assert result.column_names == ("k", "a", "b")

class TestGroupByKernels:
    def test_string_kernels_match_callables(self, audit_like: Table):
        grouped = audit_like.group_by(["isp"])
        fast = grouped.agg(
            total=("served", "sum"),
            rate=("served", "mean"),
            n=("served", "count"),
            lo=("served", "min"),
            hi=("served", "max"),
            first=("cbg", "first"),
            last=("cbg", "last"),
        )
        slow = grouped.agg(
            total=("served", np.sum),
            rate=("served", np.mean),
            n=("served", len),
            lo=("served", np.min),
            hi=("served", np.max),
            first=("cbg", lambda values: values[0]),
            last=("cbg", lambda values: values[-1]),
        )
        assert fast == slow

    def test_bool_kernels(self):
        table = Table({
            "isp": ["att", "att", "cl", "cl"],
            "ok": [True, False, True, True],
        })
        result = table.group_by(["isp"]).agg(
            any_ok=("ok", "any"), all_ok=("ok", "all"),
            n_ok=("ok", "sum"), frac=("ok", "mean"))
        assert list(result["any_ok"]) == [True, True]
        assert list(result["all_ok"]) == [False, True]
        assert list(result["n_ok"]) == [1, 2]
        assert list(result["frac"]) == [0.5, 1.0]

    def test_unknown_kernel_raises(self, audit_like: Table):
        with pytest.raises(ValueError, match="unknown kernel"):
            audit_like.group_by(["isp"]).agg(x=("served", "median"))


class TestGroupByEdgeCases:
    def test_empty_table_groupby(self):
        table = Table({"isp": [], "served": []})
        grouped = table.group_by(["isp"])
        assert len(grouped) == 0
        sizes = grouped.size()
        assert sizes.column_names == ("isp", "count")
        assert len(sizes) == 0
        agg = grouped.agg(total=("served", "sum"))
        assert agg.column_names == ("isp", "total") and len(agg) == 0
        applied = grouped.apply(lambda t: {"n": len(t)})
        assert len(applied) == 0

    def test_object_dtype_mixed_type_keys(self):
        table = Table({
            "key": np.asarray(["a", 1, "a", (2, 3), 1], dtype=object),
            "x": [1.0, 2.0, 3.0, 4.0, 5.0],
        })
        grouped = table.group_by(["key"])
        assert len(grouped) == 3
        result = grouped.agg(total=("x", np.sum))
        assert list(result["key"]) == ["a", 1, (2, 3)]
        assert list(result["total"]) == [4.0, 7.0, 4.0]

    def test_apply_heterogeneous_output_keys_raise(self, audit_like: Table):
        def uneven(group: Table):
            if group["isp"][0] == "att":
                return {"n": len(group)}
            return {"m": len(group)}

        with pytest.raises(ValueError, match="expected"):
            audit_like.group_by(["isp"]).apply(uneven)

    def test_agg_first_seen_group_order(self):
        table = Table({"k": ["z", "a", "z", "m", "a"],
                       "v": [1, 2, 3, 4, 5]})
        result = table.group_by(["k"]).agg(total=("v", "sum"))
        assert list(result["k"]) == ["z", "a", "m"]
        assert list(result["total"]) == [4, 7, 4]


class TestJoinEdgeCases:
    def test_left_join_promotes_int_columns_to_float(self):
        """An unmatched left row fills the right int column with NaN,
        which forces the whole output column to float64 — the dtype
        change the join docstring documents."""
        left = Table({"cbg": ["c1", "c2"]})
        right = Table({"cbg": ["c1"], "pop": [120]})
        result = join(left, right, on="cbg", how="left")
        assert result["pop"].dtype == np.dtype(float)
        assert result["pop"][0] == 120.0
        assert np.isnan(result["pop"][1])

    def test_join_empty_left(self):
        left = Table({"cbg": [], "x": []})
        right = Table({"cbg": ["c1"], "pop": [120]})
        result = join(left, right, on="cbg")
        assert result.column_names == ("cbg", "x", "pop")
        assert len(result) == 0

    def test_join_empty_right(self):
        left = Table({"cbg": ["c1"], "x": [1.0]})
        right = Table({"cbg": [], "pop": []})
        assert len(join(left, right, on="cbg")) == 0
        kept = join(left, right, on="cbg", how="left")
        assert len(kept) == 1
        assert np.isnan(kept["pop"][0])

    def test_join_object_dtype_keys(self):
        left = Table({"key": np.asarray([1, "a", None], dtype=object),
                      "x": [1.0, 2.0, 3.0]})
        right = Table({"key": np.asarray(["a", None, 1], dtype=object),
                       "y": [10.0, 20.0, 30.0]})
        result = join(left, right, on="key")
        assert list(result["x"]) == [1.0, 2.0, 3.0]
        assert list(result["y"]) == [30.0, 10.0, 20.0]

    def test_left_join_output_order_is_left_then_right_scan(self):
        left = Table({"k": ["b", "a", "b"], "i": [0, 1, 2]})
        right = Table({"k": ["b", "a", "b"], "j": [10, 20, 30]})
        result = join(left, right, on="k", how="left")
        assert list(result["i"]) == [0, 0, 1, 2, 2]
        assert list(result["j"]) == [10, 30, 20, 10, 30]
