"""Unit tests for repro.synth (scenario, calibration, world builder)."""

import pytest

from repro.bqt.engine import BqtEngine
from repro.geo.fips import Q3_STATES, STUDY_STATES
from repro.synth import ScenarioConfig, build_world
from repro.synth.calibration import (
    PAPER_SERVICEABILITY_BY_ISP,
    Q3OutcomeShares,
    TABLE3_QUERIED_ADDRESSES,
    TYPE_A_SHARES,
    TYPE_B_SHARES,
)


class TestScenarioConfig:
    def test_defaults_cover_study_scope(self):
        config = ScenarioConfig()
        assert config.states == STUDY_STATES
        assert config.q3_states == Q3_STATES

    def test_certified_count_scaling(self):
        config = ScenarioConfig(address_scale=0.1, certified_multiplier=2.0)
        assert config.certified_count("CA", 1000) == 200
        assert config.certified_count("CA", 1) == 1  # floor at 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(address_scale=0.0)
        with pytest.raises(ValueError):
            ScenarioConfig(certified_multiplier=0.5)
        with pytest.raises(ValueError):
            ScenarioConfig(states=())
        with pytest.raises(ValueError, match="q3_states"):
            ScenarioConfig(states=("CA",), q3_states=("OH",))
        with pytest.raises(ValueError):
            ScenarioConfig(non_caf_fraction_range=(0.9, 0.4))


class TestCalibration:
    def test_table3_footprint_matches_paper_structure(self):
        assert len(TABLE3_QUERIED_ADDRESSES) == 15
        # Spot-check distinctive cells from the paper's Table 3.
        assert TABLE3_QUERIED_ADDRESSES["CA"]["att"] == 69_711
        assert TABLE3_QUERIED_ADDRESSES["MS"]["centurylink"] == 2
        assert TABLE3_QUERIED_ADDRESSES["NJ"] == {"centurylink": 980}
        assert TABLE3_QUERIED_ADDRESSES["VT"] == {"consolidated": 9_940}
        assert "att" not in TABLE3_QUERIED_ADDRESSES["IA"]

    def test_outcome_shares_sum_to_one(self):
        for shares in (TYPE_A_SHARES, TYPE_B_SHARES):
            assert sum(shares.as_mapping().values()) == pytest.approx(1.0)

    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError):
            Q3OutcomeShares(tie=0.5, caf_better=0.5, rival_better=0.5)


class TestWorldBuilder:
    def test_footprint_respected(self, world):
        for state, footprint in TABLE3_QUERIED_ADDRESSES.items():
            for isp in footprint:
                addresses = world.caf_by_isp_state.get((isp, state))
                assert addresses, f"missing ({isp}, {state})"
        # ISPs never certify outside their Table 3 states.
        assert ("att", "VT") not in world.caf_by_isp_state
        assert ("consolidated", "CA") not in world.caf_by_isp_state

    def test_caf_map_matches_addresses(self, world):
        assert len(world.caf_map) == len(world.caf_addresses)
        for record in world.caf_map.for_isp("consolidated")[:20]:
            address = world.caf_addresses[record.address_id]
            assert address.block_geoid == record.block_geoid

    def test_certified_speeds_meet_floor(self, world):
        # Figure 1f: certifications (not reality) always satisfy 10/1.
        violating = [r for r in world.caf_map if not r.meets_caf_speed_floor]
        assert not violating

    def test_ground_truth_rates_near_calibration(self, world):
        for isp, target in PAPER_SERVICEABILITY_BY_ISP.items():
            served = total = 0
            for (isp_id, _state), addresses in world.caf_by_isp_state.items():
                if isp_id != isp:
                    continue
                for address in addresses:
                    total += 1
                    served += world.ground_truth.serves(isp, address.address_id)
            assert served / total == pytest.approx(target, abs=0.12), isp

    def test_centurylink_nj_truth_is_zero(self, world):
        addresses = world.caf_by_isp_state.get(("centurylink", "NJ"), [])
        assert addresses
        assert not any(world.ground_truth.serves("centurylink", a.address_id)
                       for a in addresses)

    def test_zillow_only_in_q3_states(self, world):
        q3_fips = {world.geographies[s].state_fips
                   for s in world.config.q3_states}
        for block_geoid in world.zillow.blocks():
            assert block_geoid[:2] in q3_fips

    def test_form477_incumbent_everywhere(self, world):
        for block_geoid, competition in world.block_competition.items():
            providers = world.form477.providers_in_block(block_geoid)
            assert competition.incumbent_isp_id in providers
            if competition.kind == "non_bqt":
                assert "smallisp-000" in providers
            if competition.cable_isp_id:
                assert competition.cable_isp_id in providers

    def test_nbm_consistent_with_form477(self, world):
        assert world.broadband_map.consistent_with_form477(world.form477) == []

    def test_block_competition_mix(self, world):
        kinds = [c.kind for c in world.block_competition.values()]
        monopoly_share = kinds.count("monopoly") / len(kinds)
        assert monopoly_share > 0.7  # rural CAF blocks rarely see overlap
        assert kinds.count("overlap_full") > 0

    def test_ledger_covers_every_cell(self, world):
        for (isp, state) in world.caf_by_isp_state:
            assert world.ledger.amount_for(isp, state) > 0

    def test_engine_factory(self, world):
        engine = world.engine_for("att")
        assert isinstance(engine, BqtEngine)
        assert engine.isp_id == "att"
        with pytest.raises(KeyError):
            world.engine_for("verizon")

    def test_determinism(self):
        config = ScenarioConfig(
            seed=3, address_scale=0.002, states=("UT", "NH"),
            q3_states=("UT",))
        first = build_world(config)
        second = build_world(config)
        assert set(first.caf_addresses) == set(second.caf_addresses)
        sample = next(iter(first.caf_addresses))
        for isp in ("centurylink", "frontier"):
            assert first.ground_truth.truth_for(isp, sample) == \
                second.ground_truth.truth_for(isp, sample)

    def test_unknown_state_raises(self):
        with pytest.raises(ValueError, match="footprint"):
            build_world(ScenarioConfig(states=("TX",), q3_states=()))

    def test_caf_addresses_by_cbg_partition(self, world):
        grouped = world.caf_addresses_by_cbg("frontier", "OH")
        total = sum(len(addresses) for addresses in grouped.values())
        assert total == len(world.caf_by_isp_state[("frontier", "OH")])
        for cbg, addresses in grouped.items():
            assert all(a.block_group_geoid == cbg for a in addresses)
