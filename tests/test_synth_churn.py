"""Unit tests for repro.synth.churn."""

import pytest

from repro.bqt.responses import QueryStatus
from repro.core.audit import AuditDataset
from repro.core.collection import CollectionCampaign
from repro.synth.churn import ChurnModel, churned_world


class TestChurnModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(upgrade_rate=1.5)
        with pytest.raises(ValueError):
            ChurnModel(upgrade_speed_multiplier=0.5)
        with pytest.raises(ValueError):
            ChurnModel(upgrade_price_multiplier=0.0)
        with pytest.raises(ValueError):
            ChurnModel(cell_rate=-0.1)
        with pytest.raises(ValueError):
            ChurnModel(cell_rate=1.5)


class TestChurnedWorld:
    def test_zero_years_preserves_truth(self, world):
        evolved = churned_world(world, years=0)
        for (isp, address_id) in list(world.ground_truth.pairs())[:200]:
            assert evolved.ground_truth.truth_for(isp, address_id) == \
                world.ground_truth.truth_for(isp, address_id)

    def test_shares_static_structure(self, world):
        evolved = churned_world(world, years=2)
        assert evolved.caf_map is world.caf_map
        assert evolved.block_competition is world.block_competition
        assert evolved.ground_truth is not world.ground_truth
        assert evolved.websites is not world.websites

    def test_original_world_untouched(self, world):
        before = {
            pair: world.ground_truth.truth_for(*pair)
            for pair in list(world.ground_truth.pairs())[:100]
        }
        churned_world(world, years=3)
        for pair, truth in before.items():
            assert world.ground_truth.truth_for(*pair) == truth

    def test_speeds_mostly_rise(self, world):
        evolved = churned_world(
            world, years=3,
            model=ChurnModel(upgrade_rate=0.3, retirement_rate=0.0,
                             new_deployment_rate=0.0))
        upgrades = downgrades = 0
        for pair in world.ground_truth.pairs():
            old = world.ground_truth.truth_for(*pair)
            new = evolved.ground_truth.truth_for(*pair)
            if old.best_plan and new.best_plan:
                if new.best_plan.download_mbps > old.best_plan.download_mbps:
                    upgrades += 1
                elif new.best_plan.download_mbps < old.best_plan.download_mbps:
                    downgrades += 1
        assert upgrades > 0
        assert downgrades == 0

    def test_new_deployment_only_increases_serves(self, world):
        evolved = churned_world(
            world, years=2,
            model=ChurnModel(upgrade_rate=0.0, retirement_rate=0.0,
                             new_deployment_rate=0.2))
        lost = sum(
            1 for pair in world.ground_truth.pairs()
            if world.ground_truth.truth_for(*pair).serves
            and not evolved.ground_truth.truth_for(*pair).serves)
        gained = sum(
            1 for pair in world.ground_truth.pairs()
            if not world.ground_truth.truth_for(*pair).serves
            and evolved.ground_truth.truth_for(*pair).serves)
        assert lost == 0
        assert gained > 0

    def test_determinism(self, world):
        first = churned_world(world, years=2)
        second = churned_world(world, years=2)
        for pair in list(world.ground_truth.pairs())[:200]:
            assert first.ground_truth.truth_for(*pair) == \
                second.ground_truth.truth_for(*pair)

    def test_negative_years_raise(self, world):
        with pytest.raises(ValueError):
            churned_world(world, years=-1)

    def test_zero_cell_rate_freezes_the_world(self, world):
        evolved = churned_world(
            world, years=5, model=ChurnModel(cell_rate=0.0))
        for pair in world.ground_truth.pairs():
            assert evolved.ground_truth.truth_for(*pair) == \
                world.ground_truth.truth_for(*pair)

    def test_full_cell_rate_matches_uncorrelated_model(self, world):
        """cell_rate=1.0 is the documented legacy behavior: identical
        draws, identical evolution."""
        legacy = churned_world(world, years=2, model=ChurnModel())
        gated = churned_world(world, years=2,
                              model=ChurnModel(cell_rate=1.0))
        for pair in list(world.ground_truth.pairs())[:300]:
            assert legacy.ground_truth.truth_for(*pair) == \
                gated.ground_truth.truth_for(*pair)

    def test_sparse_cell_rate_is_spatially_correlated(self, world):
        """Under cell gating, change is all-or-nothing per (ISP, CBG):
        a cell whose gate never opened has every address frozen."""
        model = ChurnModel(cell_rate=0.3, upgrade_rate=0.5)
        evolved = churned_world(world, years=1, model=model)
        changed_cbgs = set()
        all_cbgs = set()
        for (isp, address_id) in world.ground_truth.pairs():
            address = world.caf_addresses.get(address_id)
            if address is None:
                continue
            cbg = (isp, address.block_group_geoid)
            all_cbgs.add(cbg)
            if evolved.ground_truth.truth_for(isp, address_id) != \
                    world.ground_truth.truth_for(isp, address_id):
                changed_cbgs.add(cbg)
        # Some cells churned, most did not — the sparse regime.
        assert 0 < len(changed_cbgs) < len(all_cbgs)

    def test_cell_gated_determinism(self, world):
        model = ChurnModel(cell_rate=0.3)
        first = churned_world(world, years=2, model=model)
        second = churned_world(world, years=2, model=model)
        for pair in list(world.ground_truth.pairs())[:300]:
            assert first.ground_truth.truth_for(*pair) == \
                second.ground_truth.truth_for(*pair)

    def test_cell_gated_world_shares_static_structure(self, world):
        evolved = churned_world(world, years=2,
                                model=ChurnModel(cell_rate=0.2))
        assert evolved.caf_map is world.caf_map
        assert evolved.block_competition is world.block_competition
        assert evolved.zillow is world.zillow
        assert evolved.geographies is world.geographies

    def test_upgrade_only_churn_is_monotone_across_horizons(self, world):
        """Wave k continues wave k-1's trajectory: under upgrade-only
        churn, speeds can never fall back between consecutive horizons
        (the Markov-chain property panel deltas rely on; the byte-level
        version is proven by the replay-equivalence harness)."""
        model = ChurnModel(cell_rate=0.5, upgrade_rate=0.4,
                           new_deployment_rate=0.0, retirement_rate=0.0)
        year1 = churned_world(world, years=1, model=model)
        year2 = churned_world(world, years=2, model=model)
        for pair in world.ground_truth.pairs():
            first = year1.ground_truth.truth_for(*pair).max_download_mbps
            second = year2.ground_truth.truth_for(*pair).max_download_mbps
            assert second >= first

    def test_staleness_bias_measurable(self, world):
        """The §8.1 staleness experiment: a one-shot audit understates
        serviceability measured after years of net deployment."""
        evolved = churned_world(
            world, years=3,
            model=ChurnModel(new_deployment_rate=0.10,
                             retirement_rate=0.0))

        def audited_rate(target_world):
            campaign = CollectionCampaign(target_world)
            result = campaign.run(isps=("centurylink",), states=("NC",))
            audit = AuditDataset(result.log, result.cbg_totals,
                                 world=target_world)
            return audit.serviceability_rate()

        assert audited_rate(evolved) >= audited_rate(world) - 0.02
