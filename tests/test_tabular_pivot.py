"""Unit tests for repro.tabular.pivot."""

import pytest

from repro.tabular import Table, pivot


@pytest.fixture
def long_table() -> Table:
    return Table({
        "tier": ["0", "0", "10", "10"],
        "isp": ["att", "frontier", "att", "frontier"],
        "pct": [67.7, 30.6, 3.1, 0.0],
    })


class TestPivot:
    def test_single_value_column_names(self, long_table):
        wide = pivot(long_table, index="tier", columns="isp", values="pct")
        assert wide.column_names == ("tier", "att", "frontier")
        assert len(wide) == 2

    def test_values_routed_correctly(self, long_table):
        wide = pivot(long_table, index="tier", columns="isp", values="pct")
        row = wide.where_equal(tier="0").row(0)
        assert row["att"] == pytest.approx(67.7)
        assert row["frontier"] == pytest.approx(30.6)

    def test_missing_cells_filled(self):
        table = Table({
            "tier": ["0", "10"],
            "isp": ["att", "frontier"],
            "pct": [67.7, 0.1],
        })
        wide = pivot(table, index="tier", columns="isp", values="pct",
                     fill=-1.0)
        assert wide.where_equal(tier="0").row(0)["frontier"] == -1.0

    def test_multi_value_suffixing(self):
        table = Table({
            "tier": ["10"],
            "isp": ["att"],
            "certified_pct": [100.0],
            "advertised_pct": [3.1],
        })
        wide = pivot(table, index="tier", columns="isp",
                     values=["certified_pct", "advertised_pct"])
        assert "att_certified_pct" in wide.column_names
        assert "att_advertised_pct" in wide.column_names

    def test_index_order_preserved(self, long_table):
        wide = pivot(long_table, index="tier", columns="isp", values="pct")
        assert list(wide["tier"]) == ["0", "10"]

    def test_duplicate_cells_rejected(self):
        table = Table({
            "tier": ["0", "0"],
            "isp": ["att", "att"],
            "pct": [1.0, 2.0],
        })
        with pytest.raises(ValueError, match="duplicate"):
            pivot(table, index="tier", columns="isp", values="pct")

    def test_missing_column_raises(self, long_table):
        with pytest.raises(KeyError):
            pivot(long_table, index="nope", columns="isp", values="pct")

    def test_table1_wide_integration(self, report):
        wide = report.compliance.table1_wide()
        assert "tier" in wide.column_names
        assert "att_certified_pct" in wide.column_names
        # AT&T certifies 100% at the 10 Mbps tier (Figure 1f / Table 1).
        row = wide.where_equal(tier="10").row(0)
        assert row["att_certified_pct"] == pytest.approx(100.0)
        tiers = list(wide["tier"])
        assert tiers[0] == "0"  # numeric tiers sorted first
