"""The hash-chained journal: chain integrity, crash recovery, replay.

Staged wrecks mirror ``test_checkpoint_crash.py`` one layer up: a
writer killed mid-append leaves a torn tail (truncate), mid-file
corruption leaves unverifiable suffix entries (quarantine), and a
spliced or reordered chain must never replay. Determinism tests pin
the property everything else rests on: same journal bytes, same
replayed state bytes, whichever process folds them.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.service.journal import (
    GENESIS_DIGEST,
    CoordinatorState,
    Journal,
    JournalEntry,
    JournalError,
    entry_digest,
    service_fingerprint,
)

pytestmark = pytest.mark.service

FP = service_fingerprint("test")


def make_journal(tmp_path, events=(), name="test") -> Journal:
    journal = Journal(tmp_path, service_fingerprint(name))
    for event in events:
        journal.append(event)
    return journal


def simple_events(count: int) -> list[dict]:
    return [{"kind": "submitted", "job": f"job-{i:04d}",
             "spec": {"kind": "campaign", "shards": 1}}
            for i in range(count)]


class TestChain:
    def test_appends_link_and_advance_the_tip(self, tmp_path):
        journal = make_journal(tmp_path)
        assert journal.tip_seq == -1
        assert journal.tip_digest == GENESIS_DIGEST
        first = journal.append({"kind": "submitted", "job": "a", "spec": {}})
        second = journal.append({"kind": "started", "job": "a"})
        assert first.prev == GENESIS_DIGEST
        assert second.prev == first.digest
        assert journal.tip_seq == 1
        assert journal.tip_digest == second.digest
        assert len(journal) == 2

    def test_digest_is_positional(self):
        event = {"kind": "started", "job": "a"}
        assert (entry_digest(0, GENESIS_DIGEST, event)
                != entry_digest(1, GENESIS_DIGEST, event))
        assert (entry_digest(0, GENESIS_DIGEST, event)
                != entry_digest(0, "f" * 64, event))

    def test_from_json_rejects_tampered_event(self):
        entry = JournalEntry(
            seq=0, prev=GENESIS_DIGEST,
            digest=entry_digest(0, GENESIS_DIGEST, {"kind": "x"}),
            event={"kind": "x"})
        data = entry.to_json()
        data["event"] = {"kind": "y"}
        with pytest.raises(JournalError):
            JournalEntry.from_json(data)

    def test_from_json_rejects_structural_junk(self):
        for junk in (None, [], {"seq": True, "prev": "", "digest": "",
                               "event": {}},
                     {"seq": -1, "prev": "", "digest": "", "event": {}},
                     {"seq": 0, "prev": 0, "digest": "", "event": {}}):
            with pytest.raises(JournalError):
                JournalEntry.from_json(junk)

    def test_reopen_preserves_and_extends_the_chain(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(5))
        tip = journal.tip_digest
        journal.close()
        reopened = Journal(tmp_path, FP)
        assert reopened.tip_seq == 4
        assert reopened.tip_digest == tip
        entry = reopened.append({"kind": "started", "job": "job-0000"})
        assert entry.prev == tip
        reopened.close()

    def test_two_journals_share_a_root_without_interference(self, tmp_path):
        left = make_journal(tmp_path, simple_events(3), name="left")
        right = make_journal(tmp_path, simple_events(1), name="right")
        assert left.tip_seq == 2
        assert right.tip_seq == 0
        assert left.tip_digest != right.tip_digest
        left.close()
        right.close()
        assert Journal(tmp_path, service_fingerprint("left")).tip_seq == 2


class TestReplay:
    def test_replay_is_deterministic(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(10))
        journal.append({"kind": "started", "job": "job-0000"})
        journal.append({"kind": "completed", "job": "job-0000",
                        "result": {"ok": 1}})
        first = journal.replay().canonical_bytes()
        second = journal.replay().canonical_bytes()
        journal.close()
        reopened = Journal(tmp_path, FP)
        third = reopened.replay().canonical_bytes()
        assert first == second == third

    def test_replay_folds_the_lifecycle(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"kind": "submitted", "job": "j",
                        "spec": {"kind": "campaign", "shards": 2}})
        journal.append({"kind": "started", "job": "j"})
        journal.append({"kind": "campaign-planned", "job": "j",
                        "fingerprint": "f" * 64, "shards": 2})
        journal.append({"kind": "shard-completed", "job": "j",
                        "fingerprint": "f" * 64, "index": 0,
                        "shard": {"x": 1}, "shard_sha256": "s"})
        state = journal.replay()
        job = state.jobs["j"]
        assert job.status == "running"
        assert job.shards_total == 2
        assert job.shards_completed == 1
        assert state.completed_shards("f" * 64) == {0: "s"}
        journal.append({"kind": "failed", "job": "j", "error": "boom"})
        state = journal.replay()
        assert state.jobs["j"].status == "failed"
        assert state.jobs["j"].error == "boom"

    def test_unknown_event_kinds_fold_to_nothing(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(1))
        entry = journal.append({"kind": "from-the-future", "job": "j"})
        state = journal.replay()
        assert state.tip_seq == entry.seq
        assert list(state.jobs) == ["job-0000"]

    def test_wave_sealed_collects_analyses(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.append({"kind": "submitted", "job": "p",
                        "spec": {"kind": "panel"}})
        journal.append({"kind": "wave-sealed", "job": "p", "wave": 0,
                        "analysis": {"serviceability": 0.5}})
        state = journal.replay()
        assert state.analyses[("p", 0)] == {"serviceability": 0.5}
        assert state.jobs["p"].waves_sealed == 1

    def test_apply_matches_replay_incrementally(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(6))
        state = CoordinatorState()
        for entry in journal.entries():
            state.apply(entry)
        assert state.canonical_bytes() == journal.replay().canonical_bytes()
        assert state.tip_digest == journal.tip_digest


class TestCrashRecovery:
    def segment(self, tmp_path):
        return tmp_path / FP[:16] / "segment-00000000.jsonl"

    def test_torn_tail_truncates_silently(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(4))
        tip = journal.tip_digest
        journal.close()
        with self.segment(tmp_path).open("ab") as handle:
            handle.write(b'{"seq": 4, "prev": "')  # killed mid-append
        recovered = Journal(tmp_path, FP)
        assert recovered.tip_seq == 3
        assert recovered.tip_digest == tip
        assert not list(tmp_path.glob("**/*.quarantine*"))
        # The file itself was healed: a further reopen is clean.
        recovered.close()
        assert Journal(tmp_path, FP).tip_seq == 3

    def test_torn_tail_without_newline_variant(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(3))
        journal.close()
        path = self.segment(tmp_path)
        path.write_bytes(path.read_bytes()[:-10])  # tail ripped off
        recovered = Journal(tmp_path, FP)
        assert recovered.tip_seq == 1
        assert not list(tmp_path.glob("**/*.quarantine*"))

    def test_midfile_corruption_quarantines_the_suffix(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(5))
        journal.close()
        path = self.segment(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b'{"garbage": true}\n'
        path.write_bytes(b"".join(lines))
        recovered = Journal(tmp_path, FP)
        # Entries 0-1 verified; 2 damaged; 3-4 unverifiable (their
        # prev links dangle) and preserved for post-mortem.
        assert recovered.tip_seq == 1
        quarantined = list(tmp_path.glob("**/*.quarantine"))
        assert len(quarantined) == 1
        remainder = quarantined[0].read_bytes()
        assert b'"garbage"' in remainder
        assert b'"seq":3' in remainder and b'"seq":4' in remainder
        # The journal resumes cleanly from the verified prefix.
        recovered.append({"kind": "submitted", "job": "fresh", "spec": {}})
        assert recovered.tip_seq == 2

    def test_spliced_chain_is_damage(self, tmp_path):
        """An entry that is self-consistent but links to the wrong
        predecessor (a splice from another history) must not verify."""
        journal = make_journal(tmp_path, simple_events(3))
        journal.close()
        path = self.segment(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        foreign_prev = "e" * 64
        event = {"kind": "submitted", "job": "evil", "spec": {}}
        spliced = {"seq": 2, "prev": foreign_prev,
                   "digest": entry_digest(2, foreign_prev, event),
                   "event": event}
        lines[2] = (json.dumps(spliced, sort_keys=True,
                               separators=(",", ":")) + "\n").encode()
        path.write_bytes(b"".join(lines))
        recovered = Journal(tmp_path, FP)
        assert recovered.tip_seq == 1
        assert all("evil" not in str(e.event) for e in recovered.entries())

    def test_repeated_recoveries_never_overwrite_evidence(self, tmp_path):
        for _ in range(2):
            journal = Journal(tmp_path, FP)
            journal.append({"kind": "submitted", "job": "a", "spec": {}})
            journal.append({"kind": "submitted", "job": "b", "spec": {}})
            journal.close()
            path = self.segment(tmp_path)
            lines = path.read_bytes().splitlines(keepends=True)
            lines[-1] = b'{"rot": 1}\n' + b'{"also": "junk"}\n'
            path.write_bytes(b"".join(lines))
            Journal(tmp_path, FP).close()
        names = sorted(p.name for p in tmp_path.glob("**/*.quarantine*"))
        assert len(names) == 2 and names[0] != names[1]

    def test_fully_corrupt_segment_is_removed(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(2))
        journal.close()
        path = self.segment(tmp_path)
        path.write_bytes(b"not json at all\nmore junk\n")
        recovered = Journal(tmp_path, FP)
        assert recovered.tip_seq == -1
        assert not path.exists()
        assert list(tmp_path.glob("**/*.quarantine"))


class TestSegments:
    def test_rotation_and_cross_restart_continuity(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr("repro.service.journal.SEGMENT_ENTRIES", 4)
        journal = make_journal(tmp_path, simple_events(10))
        segments = sorted(p.name for p in
                          (tmp_path / FP[:16]).glob("segment-*.jsonl"))
        assert segments == ["segment-00000000.jsonl",
                            "segment-00000004.jsonl",
                            "segment-00000008.jsonl"]
        journal.close()
        reopened = Journal(tmp_path, FP)
        assert reopened.tip_seq == 9
        # Restart honors the rotation bound: two appends fill the tail
        # segment, the third rotates.
        for _ in range(3):
            reopened.append({"kind": "noted", "job": "x"})
        segments = sorted(p.name for p in
                          (tmp_path / FP[:16]).glob("segment-*.jsonl"))
        assert segments[-1] == "segment-00000012.jsonl"
        reopened.close()

    def test_damage_in_earlier_segment_quarantines_later_ones(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.service.journal.SEGMENT_ENTRIES", 3)
        journal = make_journal(tmp_path, simple_events(7))
        journal.close()
        first = tmp_path / FP[:16] / "segment-00000000.jsonl"
        lines = first.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"rot": true}\n'
        first.write_bytes(b"".join(lines))
        recovered = Journal(tmp_path, FP)
        assert recovered.tip_seq == 0
        remaining = sorted(p.name for p in
                           (tmp_path / FP[:16]).glob("segment-*.jsonl"))
        assert remaining == ["segment-00000000.jsonl"]
        assert len(list(tmp_path.glob("**/*.quarantine*"))) >= 2


class TestReplication:
    def test_replica_accepts_a_verified_feed(self, tmp_path):
        primary = make_journal(tmp_path / "a", simple_events(5))
        replica = Journal(tmp_path / "b", FP)
        for entry in primary.entries():
            replica.append_replicated(entry.to_json())
        assert replica.tip_digest == primary.tip_digest
        assert (replica.replay().canonical_bytes()
                == primary.replay().canonical_bytes())

    def test_replica_rejects_tampered_entries(self, tmp_path):
        primary = make_journal(tmp_path / "a", simple_events(2))
        replica = Journal(tmp_path / "b", FP)
        data = primary.entries()[0].to_json()
        data["event"] = {"kind": "submitted", "job": "evil", "spec": {}}
        with pytest.raises(JournalError):
            replica.append_replicated(data)
        assert replica.tip_seq == -1

    def test_replica_rejects_gaps_and_wrong_links(self, tmp_path):
        primary = make_journal(tmp_path / "a", simple_events(3))
        replica = Journal(tmp_path / "b", FP)
        entries = primary.entries()
        with pytest.raises(JournalError):
            replica.append_replicated(entries[1].to_json())  # gap
        replica.append_replicated(entries[0].to_json())
        # A diverged replica: same seq, different local history.
        divergent = Journal(tmp_path / "c", FP)
        divergent.append({"kind": "submitted", "job": "other", "spec": {}})
        with pytest.raises(JournalError):
            divergent.append_replicated(entries[1].to_json())

    def test_wait_for_unblocks_on_append(self, tmp_path):
        journal = make_journal(tmp_path, simple_events(1))
        assert journal.wait_for(0, timeout=0.01) is True
        assert journal.wait_for(1, timeout=0.01) is False
        timer = threading.Timer(
            0.05, lambda: journal.append({"kind": "noted", "job": "x"}))
        timer.start()
        try:
            assert journal.wait_for(1, timeout=5.0) is True
        finally:
            timer.cancel()
