"""Unit tests for repro.bqt.websites and repro.bqt.responses."""

import pytest

from repro.addresses.generator import AddressGenerator
from repro.bqt.responses import PageKind, QueryStatus, WebsiteResponse
from repro.bqt.websites import build_website
from repro.geo.entities import CensusBlock
from repro.geo.geometry import Point
from repro.isp.deployment import GroundTruth, ServiceTruth
from repro.isp.plans import BroadbandPlan
from repro.stats.distributions import stable_rng


@pytest.fixture
def block() -> CensusBlock:
    return CensusBlock(geoid="060371234561001",
                       centroid=Point(-118.0, 34.0), is_rural=True)


def make_addresses(block, n, namespace="caf"):
    return AddressGenerator(seed=0).generate_for_block(block, n, True, namespace)


def served_truth(isp_id, addresses, speed=50.0, existing=False):
    truth = GroundTruth()
    plan = BroadbandPlan(f"{isp_id} plan", speed, speed / 10, 55.0)
    for address in addresses:
        truth.set_truth(isp_id, address.address_id, ServiceTruth(
            serves=True, plans=(plan,), existing_subscriber=existing,
            tier_label=plan.tier_label))
    return truth


class TestWebsiteResponse:
    def test_plans_only_on_plan_pages(self):
        plan = BroadbandPlan("x", 10.0, 1.0, 40.0)
        with pytest.raises(ValueError):
            WebsiteResponse(PageKind.NO_SERVICE_PAGE, plans=(plan,))

    def test_service_indicators(self):
        assert WebsiteResponse(PageKind.PLANS_PAGE).indicates_service
        assert WebsiteResponse(PageKind.UNKNOWN_PLAN_PAGE).indicates_service
        assert WebsiteResponse(PageKind.NO_SERVICE_PAGE).indicates_no_service
        assert not WebsiteResponse(PageKind.CALL_TO_ORDER).indicates_service

    def test_status_conclusiveness(self):
        assert QueryStatus.SERVICEABLE.is_conclusive
        assert QueryStatus.NO_SERVICE.is_conclusive
        assert QueryStatus.ADDRESS_NOT_FOUND.is_conclusive
        assert not QueryStatus.UNKNOWN.is_conclusive


class TestWebsiteBehaviour:
    def test_served_address_gets_plans(self, block):
        addresses = make_addresses(block, 50)
        truth = served_truth("centurylink", addresses)
        site = build_website("centurylink", truth, seed=0)
        rng = stable_rng(0, "t")
        pages = [site.respond(a, rng).page_kind for a in addresses]
        assert PageKind.PLANS_PAGE in pages or \
            PageKind.REDIRECT_BRIGHTSPEED in pages

    def test_unserved_address_gets_no_service(self, block):
        addresses = make_addresses(block, 60)
        site = build_website("centurylink", GroundTruth(), seed=0)
        rng = stable_rng(1, "t")
        pages = {site.respond(a, rng).page_kind for a in addresses}
        assert PageKind.NO_SERVICE_PAGE in pages
        assert PageKind.PLANS_PAGE not in pages

    def test_att_dropdown_misses_are_persistent(self, block):
        addresses = make_addresses(block, 200)
        truth = served_truth("att", addresses)
        site = build_website("att", truth, seed=0)
        rng = stable_rng(2, "t")
        missing = [a for a in addresses if site.has_persistent_dropdown_miss(a)]
        assert missing  # ~13% of 200
        for address in missing[:5]:
            for _ in range(3):
                assert site.respond(address, rng).page_kind is \
                    PageKind.DROPDOWN_MISS

    def test_frontier_wisconsin_dropdown_worse(self, block):
        wi_block = CensusBlock(geoid="550371234561001",
                               centroid=Point(-89.5, 44.5), is_rural=True)
        ca_addresses = make_addresses(block, 400)
        wi_addresses = make_addresses(wi_block, 400)
        site = build_website("frontier", GroundTruth(), seed=0)
        ca_rate = sum(site.has_persistent_dropdown_miss(a)
                      for a in ca_addresses) / 400
        wi_rate = sum(site.has_persistent_dropdown_miss(a)
                      for a in wi_addresses) / 400
        assert wi_rate > ca_rate

    def test_att_call_to_order_only_when_served(self, block):
        addresses = make_addresses(block, 300)
        truth = served_truth("att", addresses)
        site = build_website("att", truth, seed=0)
        unserved_site = build_website("att", GroundTruth(), seed=0)
        served_truths = truth.truth_for("att", addresses[0].address_id)
        cto_served = sum(site.is_call_to_order(
            a, truth.truth_for("att", a.address_id)) for a in addresses)
        cto_unserved = sum(unserved_site.is_call_to_order(
            a, GroundTruth().truth_for("att", a.address_id))
            for a in addresses)
        assert cto_served > 0
        assert cto_unserved == 0
        assert served_truths.serves

    def test_frontier_unknown_plan_page(self, block):
        addresses = make_addresses(block, 5)
        truth = GroundTruth()
        for address in addresses:
            truth.set_truth("frontier", address.address_id, ServiceTruth(
                serves=True, plans=(), existing_subscriber=True,
                tier_label="Unknown Plan"))
        site = build_website("frontier", truth, seed=0)
        rng = stable_rng(3, "t")
        pages = [site.respond(a, rng).page_kind for a in addresses
                 if not site.has_persistent_dropdown_miss(a)]
        assert pages
        assert set(pages) <= {PageKind.UNKNOWN_PLAN_PAGE, PageKind.ERROR_PAGE}

    def test_centurylink_brightspeed_redirect_and_followup(self, block):
        addresses = make_addresses(block, 200)
        truth = served_truth("centurylink", addresses)
        site = build_website("centurylink", truth, seed=0)
        rng = stable_rng(4, "t")
        redirected = []
        for address in addresses:
            response = site.respond(address, rng)
            if response.page_kind is PageKind.REDIRECT_BRIGHTSPEED:
                assert response.follow_up_site == "brightspeed"
                redirected.append(address)
        assert redirected  # ~35% of served
        followup = site.respond_brightspeed(redirected[0], rng)
        assert followup.page_kind in (PageKind.PLANS_PAGE, PageKind.ERROR_PAGE)

    def test_consolidated_fidium_redirect_for_gigabit(self, block):
        addresses = make_addresses(block, 40)
        truth = served_truth("consolidated", addresses, speed=1000.0)
        site = build_website("consolidated", truth, seed=0)
        rng = stable_rng(5, "t")
        pages = [site.respond(a, rng).page_kind for a in addresses
                 if not site.has_persistent_dropdown_miss(a)]
        assert PageKind.REDIRECT_FIDIUM in pages

    def test_consolidated_address_not_found_for_unserved(self, block):
        addresses = make_addresses(block, 300)
        site = build_website("consolidated", GroundTruth(), seed=0)
        rng = stable_rng(6, "t")
        pages = [site.respond(a, rng).page_kind for a in addresses]
        assert PageKind.ADDRESS_NOT_FOUND in pages
        assert PageKind.NO_SERVICE_PAGE in pages

    def test_unknown_isp_raises(self):
        with pytest.raises(KeyError):
            build_website("verizon", GroundTruth())

    def test_extra_error_probability_increases_failures(self, block):
        addresses = make_addresses(block, 300)
        truth = served_truth("frontier", addresses)
        site = build_website("frontier", truth, seed=0)
        clean_rng = stable_rng(7, "t")
        dirty_rng = stable_rng(7, "t")
        clean_errors = sum(
            site.respond(a, clean_rng).page_kind is PageKind.ERROR_PAGE
            for a in addresses)
        dirty_errors = sum(
            site.respond(a, dirty_rng, extra_error_probability=0.4).page_kind
            is PageKind.ERROR_PAGE for a in addresses)
        assert dirty_errors > clean_errors
