"""Unit tests for repro.stats.distributions."""

import numpy as np
import pytest

from repro.stats.distributions import (
    allocate_counts,
    bounded_zipf_shares,
    categorical_sample,
    lognormal_sizes,
    stable_rng,
)


class TestStableRng:
    def test_same_parts_same_stream(self):
        a = stable_rng(1, "x").random(5)
        b = stable_rng(1, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_parts_different_stream(self):
        a = stable_rng(1, "x").random(5)
        b = stable_rng(1, "y").random(5)
        assert not np.array_equal(a, b)

    def test_part_order_matters(self):
        assert stable_rng("a", "b").random() != stable_rng("b", "a").random()

    def test_numeric_and_string_parts_mix(self):
        # Must not raise and must be deterministic.
        assert stable_rng(7, "geo", 3.5).random() == stable_rng(7, "geo", 3.5).random()


class TestBoundedZipfShares:
    def test_sums_to_one(self):
        assert bounded_zipf_shares(10).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        shares = bounded_zipf_shares(20, exponent=1.1)
        assert np.all(np.diff(shares) < 0)

    def test_zero_exponent_is_uniform(self):
        shares = bounded_zipf_shares(4, exponent=0.0)
        np.testing.assert_allclose(shares, 0.25)

    def test_higher_exponent_more_concentrated(self):
        low = bounded_zipf_shares(50, exponent=0.5)
        high = bounded_zipf_shares(50, exponent=1.5)
        assert high[0] > low[0]

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            bounded_zipf_shares(0)
        with pytest.raises(ValueError):
            bounded_zipf_shares(5, exponent=-1.0)


class TestLognormalSizes:
    def test_median_roughly_on_target(self):
        rng = stable_rng(0, "test")
        sizes = lognormal_sizes(rng, 20_000, median=64.0, sigma=1.0)
        assert np.median(sizes) == pytest.approx(64.0, rel=0.1)

    def test_respects_bounds(self):
        rng = stable_rng(1, "test")
        sizes = lognormal_sizes(rng, 5_000, median=50.0, sigma=2.0,
                                minimum=1, maximum=300)
        assert sizes.min() >= 1
        assert sizes.max() <= 300

    def test_integer_output(self):
        rng = stable_rng(2, "test")
        assert lognormal_sizes(rng, 10, 10.0, 0.5).dtype == np.int64

    def test_invalid_parameters_raise(self):
        rng = stable_rng(3, "test")
        with pytest.raises(ValueError):
            lognormal_sizes(rng, -1, 10.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_sizes(rng, 1, 0.0, 1.0)
        with pytest.raises(ValueError):
            lognormal_sizes(rng, 1, 10.0, -0.5)


class TestCategoricalSample:
    def test_respects_weights(self):
        rng = stable_rng(0, "cat")
        draws = categorical_sample(rng, {"a": 0.9, "b": 0.1}, 5_000)
        share_a = draws.count("a") / len(draws)
        assert share_a == pytest.approx(0.9, abs=0.03)

    def test_zero_weight_never_drawn(self):
        rng = stable_rng(1, "cat")
        draws = categorical_sample(rng, {"a": 1.0, "b": 0.0}, 500)
        assert set(draws) == {"a"}

    def test_size_zero_is_empty(self):
        rng = stable_rng(2, "cat")
        assert categorical_sample(rng, {"a": 1.0}, 0) == []

    def test_invalid_inputs_raise(self):
        rng = stable_rng(3, "cat")
        with pytest.raises(ValueError):
            categorical_sample(rng, {}, 1)
        with pytest.raises(ValueError):
            categorical_sample(rng, {"a": -1.0}, 1)
        with pytest.raises(ValueError):
            categorical_sample(rng, {"a": 0.0}, 1)
        with pytest.raises(ValueError):
            categorical_sample(rng, {"a": 1.0}, -1)


class TestAllocateCounts:
    def test_sums_exactly_to_total(self):
        counts = allocate_counts(1_000, [0.1, 0.2, 0.3, 0.4])
        assert counts.sum() == 1_000

    def test_proportionality(self):
        counts = allocate_counts(100, [1, 1, 2])
        assert list(counts) == [25, 25, 50]

    def test_largest_remainder_rounding(self):
        counts = allocate_counts(10, [1, 1, 1])
        assert counts.sum() == 10
        assert sorted(counts) == [3, 3, 4]

    def test_zero_total(self):
        assert allocate_counts(0, [0.5, 0.5]).sum() == 0

    def test_unnormalized_shares_accepted(self):
        np.testing.assert_array_equal(
            allocate_counts(10, [3, 7]), allocate_counts(10, [0.3, 0.7]))

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            allocate_counts(-1, [1.0])
        with pytest.raises(ValueError):
            allocate_counts(1, [])
        with pytest.raises(ValueError):
            allocate_counts(1, [-0.5, 1.5])
        with pytest.raises(ValueError):
            allocate_counts(1, [0.0, 0.0])
