"""Unit tests for repro.core.audit (weighted metrics semantics)."""

import pytest

from repro.bqt.errors import ErrorCategory
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.core.audit import AuditDataset, ComplianceStandard
from repro.fcc.urban_rate_survey import generate_urban_rate_survey
from repro.isp.plans import BroadbandPlan


def record(address_id, cbg_suffix="1", served=True, speed=25.0, price=50.0,
           isp="att", state="CA", guaranteed=True, unknown=False):
    block_geoid = f"06037123455{cbg_suffix}" + "001"
    assert len(block_geoid) == 15
    if unknown:
        return QueryRecord(
            isp_id=isp, address_id=address_id, block_geoid=block_geoid,
            state_abbreviation=state, status=QueryStatus.UNKNOWN,
            error_category=ErrorCategory.SELECT_DROPDOWN)
    if not served:
        return QueryRecord(
            isp_id=isp, address_id=address_id, block_geoid=block_geoid,
            state_abbreviation=state, status=QueryStatus.NO_SERVICE)
    plan = BroadbandPlan("p", speed, speed / 10, price,
                         is_speed_guaranteed=guaranteed)
    return QueryRecord(
        isp_id=isp, address_id=address_id, block_geoid=block_geoid,
        state_abbreviation=state, status=QueryStatus.SERVICEABLE,
        plans=(plan,))


def totals_for(log: QueryLog, weight=100):
    return {(r.isp_id, r.block_group_geoid): weight for r in log}


class TestComplianceStandard:
    def test_flat_cap(self):
        standard = ComplianceStandard()
        assert standard.rate_cap_for(10.0) == 89.0
        assert standard.rate_cap_for(1000.0) == 89.0

    def test_survey_cap_varies_by_tier(self):
        standard = ComplianceStandard(survey=generate_urban_rate_survey())
        assert standard.rate_cap_for(10.0) == pytest.approx(89.0, abs=0.5)
        assert standard.rate_cap_for(1000.0) > standard.rate_cap_for(10.0)

    def test_plan_compliance(self):
        standard = ComplianceStandard()
        good = BroadbandPlan("p", 10.0, 1.0, 50.0)
        slow = BroadbandPlan("p", 9.0, 1.0, 50.0)
        pricey = BroadbandPlan("p", 10.0, 1.0, 95.0)
        unguaranteed = BroadbandPlan("p", 100.0, 10.0, 50.0,
                                     is_speed_guaranteed=False)
        assert standard.plan_complies(good)
        assert not standard.plan_complies(slow)
        assert not standard.plan_complies(pricey)
        assert not standard.plan_complies(unguaranteed)

    def test_record_compliance_needs_service(self):
        standard = ComplianceStandard()
        assert not standard.record_complies(record("a", served=False))
        assert standard.record_complies(record("a"))


class TestAuditDataset:
    def test_unknowns_excluded(self):
        log = QueryLog([record("a-1"), record("a-2", unknown=True)])
        audit = AuditDataset(log, totals_for(log))
        assert len(audit) == 1

    def test_unweighted_equal_cbgs(self):
        # Two CBGs, rates 1.0 and 0.0, equal weights → 50%.
        log = QueryLog([
            record("a-1", cbg_suffix="1", served=True),
            record("a-2", cbg_suffix="2", served=False),
        ])
        audit = AuditDataset(log, totals_for(log))
        assert audit.serviceability_rate() == pytest.approx(0.5)

    def test_weighting_shifts_aggregate(self):
        # Served CBG has 9× the CAF addresses of the unserved one.
        log = QueryLog([
            record("a-1", cbg_suffix="1", served=True),
            record("a-2", cbg_suffix="2", served=False),
        ])
        totals = {("att", "060371234551"): 900, ("att", "060371234552"): 100}
        audit = AuditDataset(log, totals)
        assert audit.serviceability_rate() == pytest.approx(0.9)

    def test_weighted_vs_per_cbg_rates(self):
        log = QueryLog([
            record("a-1", cbg_suffix="1", served=True),
            record("a-2", cbg_suffix="1", served=False),
            record("a-3", cbg_suffix="2", served=True),
        ])
        audit = AuditDataset(log, totals_for(log))
        rates = audit.cbg_rates("served")
        assert sorted(rates["rate"]) == [0.5, 1.0]
        assert audit.serviceability_rate() == pytest.approx(0.75)

    def test_compliance_below_serviceability(self):
        log = QueryLog([
            record("a-1", speed=25.0),          # served & compliant
            record("a-2", speed=5.0),           # served, too slow
            record("a-3", served=False),        # unserved
        ])
        audit = AuditDataset(log, totals_for(log))
        assert audit.serviceability_rate() == pytest.approx(2 / 3)
        assert audit.compliance_rate() == pytest.approx(1 / 3)

    def test_no_guarantee_plans_non_compliant(self):
        log = QueryLog([record("a-1", speed=100.0, guaranteed=False)])
        audit = AuditDataset(log, totals_for(log))
        assert audit.serviceability_rate() == pytest.approx(1.0)
        assert audit.compliance_rate() == pytest.approx(0.0)

    def test_filters_by_isp_and_state(self):
        log = QueryLog([
            record("a-1", isp="att", state="CA", served=True),
            record("a-2", isp="frontier", state="OH", served=False,
                   cbg_suffix="2"),
        ])
        audit = AuditDataset(log, totals_for(log))
        assert audit.serviceability_rate(isp_id="att") == 1.0
        assert audit.serviceability_rate(state="OH") == 0.0
        assert audit.isps() == ["att", "frontier"]
        assert audit.states_for_isp("frontier") == ["OH"]

    def test_no_matching_group_raises(self):
        log = QueryLog([record("a-1")])
        audit = AuditDataset(log, totals_for(log))
        with pytest.raises(ValueError):
            audit.serviceability_rate(isp_id="frontier")

    def test_missing_cbg_total_raises(self):
        log = QueryLog([record("a-1")])
        with pytest.raises(KeyError, match="CBG total"):
            AuditDataset(log, {})

    def test_empty_audit_raises(self):
        log = QueryLog([record("a-1", unknown=True)])
        with pytest.raises(ValueError, match="empty"):
            AuditDataset(log, totals_for(log))
