"""Unit tests for the repro.bead package."""

import pytest

from repro.bead import (
    AuditPlan,
    BeadProgram,
    BeadSubgrant,
    OversightPlanner,
    allocate_bead_funds,
)
from repro.bead.allocation import BEAD_STATE_MINIMUM_USD, BEAD_TOTAL_USD
from repro.core.sampling import SamplingPolicy


class TestAllocation:
    def test_total_conserved(self):
        allocation = allocate_bead_funds({"TX": 500_000, "VT": 20_000,
                                          "CA": 200_000})
        assert sum(allocation.amounts_by_state.values()) == pytest.approx(
            BEAD_TOTAL_USD, rel=1e-9)

    def test_minimum_respected(self):
        allocation = allocate_bead_funds({"TX": 1_000_000, "VT": 0})
        assert allocation.amount_for("VT") == pytest.approx(
            BEAD_STATE_MINIMUM_USD)

    def test_proportional_above_minimum(self):
        allocation = allocate_bead_funds({"A": 300, "B": 100},
                                         total_usd=1_000.0, minimum_usd=100.0)
        # Remainder 800 split 3:1.
        assert allocation.amount_for("A") == pytest.approx(700.0)
        assert allocation.amount_for("B") == pytest.approx(300.0)

    def test_all_zero_unserved_splits_evenly(self):
        allocation = allocate_bead_funds({"A": 0, "B": 0},
                                         total_usd=1_000.0, minimum_usd=100.0)
        assert allocation.amount_for("A") == pytest.approx(500.0)

    def test_top_states(self):
        allocation = allocate_bead_funds({"TX": 500, "VT": 10, "CA": 400},
                                         total_usd=10_000.0,
                                         minimum_usd=100.0)
        assert allocation.top_states(1)[0][0] == "TX"

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_bead_funds({})
        with pytest.raises(ValueError):
            allocate_bead_funds({"A": -1})
        with pytest.raises(ValueError, match="exceed"):
            allocate_bead_funds({"A": 1, "B": 1},
                                total_usd=100.0, minimum_usd=100.0)
        with pytest.raises(KeyError):
            allocate_bead_funds({"A": 1}, total_usd=200.0,
                                minimum_usd=10.0).amount_for("ZZ")


class TestProgram:
    def _program(self):
        allocation = allocate_bead_funds({"OH": 300, "UT": 100},
                                         total_usd=4_000.0,
                                         minimum_usd=500.0)
        return BeadProgram(allocation=allocation)

    def test_award_and_commitment(self):
        program = self._program()
        program.award(BeadSubgrant("OH", "frontier", 1_000.0, 50))
        assert program.committed_for("OH") == pytest.approx(1_000.0)
        assert program.locations_by_isp() == {"frontier": 50}

    def test_over_allocation_rejected(self):
        program = self._program()
        available = program.allocation.amount_for("UT")
        with pytest.raises(ValueError, match="over-allocated"):
            program.award(BeadSubgrant("UT", "att", available + 1.0, 10))

    def test_split_state_fund_proportional(self):
        program = self._program()
        awards = program.split_state_fund(
            "OH", {"att": 100, "frontier": 300})
        amounts = {a.isp_id: a.amount_usd for a in awards}
        assert amounts["frontier"] == pytest.approx(3 * amounts["att"])

    def test_compliance_weights_penalize_bad_track_record(self):
        program = self._program()
        awards = program.split_state_fund(
            "OH", {"att": 100, "frontier": 100},
            compliance_weights={"att": 0.3, "frontier": 0.9})
        amounts = {a.isp_id: a.amount_usd for a in awards}
        assert amounts["frontier"] == pytest.approx(3 * amounts["att"])

    def test_compliance_weights_from_audit(self, report):
        weights = BeadProgram.compliance_weights(
            report.audit, ["att", "centurylink", "never-audited"])
        assert weights["centurylink"] > weights["att"]
        assert weights["never-audited"] == 1.0

    def test_exhausted_fund_raises(self):
        program = self._program()
        program.split_state_fund("UT", {"att": 10})
        with pytest.raises(ValueError, match="exhausted"):
            program.split_state_fund("UT", {"att": 10})

    def test_subgrant_validation(self):
        with pytest.raises(ValueError):
            BeadSubgrant("OH", "att", 0.0, 10)
        with pytest.raises(ValueError):
            BeadSubgrant("OH", "att", 100.0, 0)
        grant = BeadSubgrant("OH", "att", 100.0, 4)
        assert grant.support_per_location == pytest.approx(25.0)


class TestPlanner:
    def test_plan_shape(self):
        planner = OversightPlanner(suspected_unserved_fraction=0.10,
                                   detection_power_target=0.95)
        plan = planner.plan({"att": [50, 200, 10], "frontier": [40, 40]})
        assert isinstance(plan, AuditPlan)
        # Detection-power sizing: n with (1-0.1)^n <= 0.05 → 29.
        assert plan.review_sample_by_isp["att"] == 29
        # Audit queries follow the max(30, 10%) rule.
        assert plan.audit_queries_by_isp["att"] == 30 + 30 + 10
        assert plan.audit_queries_by_isp["frontier"] == 60  # 30-floor × 2
        assert plan.audit_wall_clock_days > 0
        assert plan.bottleneck_isp in ("att", "frontier")

    def test_render(self):
        planner = OversightPlanner()
        plan = planner.plan({"att": [100]})
        text = plan.render()
        assert "certification reviews" in text
        assert "wall clock" in text

    def test_custom_policy_changes_queries(self):
        lax = OversightPlanner(sampling_policy=SamplingPolicy(
            min_samples=10, sampling_fraction=0.05))
        strict = OversightPlanner(sampling_policy=SamplingPolicy(
            min_samples=60, sampling_fraction=0.20))
        sizes = {"att": [500, 500]}
        assert strict.plan(sizes).audit_queries_by_isp["att"] > \
            lax.plan(sizes).audit_queries_by_isp["att"]

    def test_validation(self):
        with pytest.raises(ValueError):
            OversightPlanner(suspected_unserved_fraction=0.0)
        with pytest.raises(ValueError):
            OversightPlanner().plan({})
