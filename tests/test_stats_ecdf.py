"""Unit tests for repro.stats.ecdf."""

import numpy as np
import pytest

from repro.stats.ecdf import ECDF


class TestECDF:
    def test_basic_evaluation(self):
        cdf = ECDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == pytest.approx(0.25)
        assert cdf(2.5) == pytest.approx(0.5)
        assert cdf(4.0) == pytest.approx(1.0)
        assert cdf(100.0) == pytest.approx(1.0)

    def test_right_continuity_at_sample_points(self):
        cdf = ECDF([1.0, 1.0, 2.0])
        assert cdf(1.0) == pytest.approx(2 / 3)

    def test_vectorized_evaluate_matches_scalar(self):
        sample = [3.0, 1.0, 4.0, 1.0, 5.0]
        cdf = ECDF(sample)
        xs = [0.0, 1.0, 3.5, 10.0]
        np.testing.assert_allclose(cdf.evaluate(xs), [cdf(x) for x in xs])

    def test_quantile_inverts_cdf(self):
        cdf = ECDF(list(range(1, 101)))
        assert cdf.quantile(0.5) == pytest.approx(50.0)
        assert cdf.quantile(0.8) == pytest.approx(80.0)
        assert cdf.quantile(0.0) == pytest.approx(1.0)
        assert cdf.quantile(1.0) == pytest.approx(100.0)

    def test_median_shortcut(self):
        cdf = ECDF([1.0, 2.0, 3.0])
        assert cdf.median() == pytest.approx(2.0)

    def test_series_traces_steps(self):
        cdf = ECDF([2.0, 1.0, 3.0])
        xs, ys = cdf.series()
        np.testing.assert_allclose(xs, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(ys, [1 / 3, 2 / 3, 1.0])

    def test_series_returns_copies(self):
        cdf = ECDF([1.0, 2.0])
        xs, _ = cdf.series()
        xs[0] = 99.0
        assert cdf.sorted_values[0] == 1.0

    def test_fraction_below_is_strict(self):
        cdf = ECDF([10.0, 10.0, 20.0, 30.0])
        assert cdf.fraction_below(10.0) == 0.0
        assert cdf.fraction_below(10.1) == pytest.approx(0.5)

    def test_fraction_at_least(self):
        cdf = ECDF([5.0, 10.0, 15.0, 20.0])
        assert cdf.fraction_at_least(10.0) == pytest.approx(0.75)

    def test_n_property(self):
        assert ECDF([1.0, 2.0, 3.0]).n == 3

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ECDF([])

    def test_nan_sample_raises(self):
        with pytest.raises(ValueError, match="NaN"):
            ECDF([1.0, float("nan")])

    def test_bad_quantile_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            ECDF([1.0]).quantile(-0.1)

    def test_two_dimensional_raises(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            ECDF(np.ones((2, 2)))
