"""The lint suite's own tests: fixture corpus, suppressions, baseline
workflow, CLI, and the self-scan that keeps ``src/`` clean."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (RULES, apply_baseline, load_baseline, scan_file,
                        scan_paths, write_baseline)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
BASELINE = REPO_ROOT / "lint.baseline.json"

# rule id -> fixture stem (the stem carries any path token the rule
# scopes to, e.g. det104's "analysis"). Single-file fixtures; the
# project rules that need more than one module live in FIXTURE_DIRS.
FIXTURE_STEMS = {
    "DET101": "det101",
    "DET102": "det102",
    "DET103": "det103",
    "DET104": "det104_analysis",
    "DUR201": "dur201_store",
    "DUR202": "dur202_journal",
    "CONC301": "conc301",
    "CONC302": "conc302",
    "CONC303": "conc303",
    "CONC304": "conc304",
    "PROTO401": "proto401",
    "PROTO402": "proto402",
    "PROTO403": "proto403_journal",
    "OBS501": "obs501",
    "FLOW602": "flow602",
    "LINT001": "lint001",
}

# rule id -> fixture *directory* stem: these project rules only show
# their teeth across a module boundary (a taint source hidden in an
# allowlisted helper; a writer and reader pair).
FIXTURE_DIRS = {
    "FLOW601": "flow601",
    "PROTO404": "proto404",
}


def test_obs501_quiet_inside_trace_module(tmp_path):
    # The defining module is allowlisted: its convenience wrappers
    # construct spans for callers to enter.
    target = tmp_path / "trace.py"
    target.write_text(
        "def span(name):\n"
        "    return object()\n"
        "def convenience(name):\n"
        "    return span(name)\n",
        encoding="utf-8")
    assert scan_file(target) == []


def test_det103_allowlists_obs_directory(tmp_path):
    # obs/ modules may timestamp their sidecar trace files; the same
    # source outside obs/ still fires.
    source = ("import time\n"
              "def publish_stamp():\n"
              "    return time.time()\n")
    inside = tmp_path / "obs" / "trace.py"
    inside.parent.mkdir()
    inside.write_text(source, encoding="utf-8")
    outside = tmp_path / "elsewhere.py"
    outside.write_text(source, encoding="utf-8")
    assert scan_file(inside) == []
    assert [f.rule for f in scan_file(outside)] == ["DET103"]


def test_every_rule_has_a_fixture_pair():
    assert set(FIXTURE_STEMS) | set(FIXTURE_DIRS) == set(RULES)
    assert not set(FIXTURE_STEMS) & set(FIXTURE_DIRS)
    for stem in FIXTURE_STEMS.values():
        assert (FIXTURES / f"{stem}_pos.py").is_file()
        assert (FIXTURES / f"{stem}_neg.py").is_file()
    for stem in FIXTURE_DIRS.values():
        assert (FIXTURES / f"{stem}_pos").is_dir()
        assert (FIXTURES / f"{stem}_neg").is_dir()


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_STEMS))
def test_rule_fires_on_positive_fixture(rule_id):
    findings = scan_file(FIXTURES / f"{FIXTURE_STEMS[rule_id]}_pos.py")
    fired = {f.rule for f in findings}
    # Fires, and nothing *else* fires — fixtures stay single-purpose.
    assert fired == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_STEMS))
def test_rule_quiet_on_negative_fixture(rule_id):
    findings = scan_file(FIXTURES / f"{FIXTURE_STEMS[rule_id]}_neg.py")
    assert findings == []


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_DIRS))
def test_project_rule_fires_on_positive_fixture_dir(rule_id):
    target = FIXTURES / f"{FIXTURE_DIRS[rule_id]}_pos"
    findings = scan_paths([target], root=target)
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_DIRS))
def test_project_rule_quiet_on_negative_fixture_dir(rule_id):
    target = FIXTURES / f"{FIXTURE_DIRS[rule_id]}_neg"
    assert scan_paths([target], root=target) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def test_inline_suppression_silences_one_line(tmp_path):
    source = FIXTURES / "det103_pos.py"
    target = tmp_path / "det103_case.py"
    patched = source.read_text(encoding="utf-8").replace(
        "return time.time(), datetime.now()",
        "return time.time(), datetime.now()"
        "  # repro-lint: disable=DET103")
    target.write_text(patched, encoding="utf-8")
    assert scan_file(target) == []


def test_inline_suppression_is_rule_specific(tmp_path):
    target = tmp_path / "det103_case.py"
    target.write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # repro-lint: disable=DET101\n",
        encoding="utf-8")
    # The wrong-rule suppression doesn't silence DET103 — and is
    # itself dead, which LINT001 now says out loud.
    assert {f.rule for f in scan_file(target)} == {"DET103", "LINT001"}


def test_filewide_suppression(tmp_path):
    target = tmp_path / "det103_case.py"
    target.write_text(
        "# repro-lint: disable-file=DET103\n"
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
        "def stamp2():\n"
        "    return time.time()\n",
        encoding="utf-8")
    assert scan_file(target) == []


# ----------------------------------------------------------------------
# baseline workflow
# ----------------------------------------------------------------------

def test_baseline_round_trip(tmp_path):
    findings = scan_file(FIXTURES / "det102_pos.py")
    assert findings
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    loaded = load_baseline(baseline_path)
    assert [f.baseline_key() for f in loaded] == \
        [f.baseline_key() for f in findings]
    assert apply_baseline(findings, loaded) == []


def test_baseline_respects_multiplicity(tmp_path):
    target = tmp_path / "det103_case.py"
    target.write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n",
        encoding="utf-8")
    one = scan_file(target)
    assert len(one) == 1
    # Duplicate the offending line: same baseline key, twice.
    target.write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
        "def stamp2():\n"
        "    return time.time()\n",
        encoding="utf-8")
    two = scan_file(target)
    assert len(two) == 2
    # A baseline holding ONE occurrence excuses exactly one.
    assert len(apply_baseline(two, one)) == 1


def test_baseline_survives_line_renumbering(tmp_path):
    target = tmp_path / "det103_case.py"
    target.write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n",
        encoding="utf-8")
    baseline = scan_file(target)
    # Insert unrelated lines above: linenos shift, keys don't.
    target.write_text(
        "import time\n"
        "\n"
        "UNRELATED = 1\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n",
        encoding="utf-8")
    assert apply_baseline(scan_file(target), baseline) == []


# ----------------------------------------------------------------------
# self-scan: src/ stays clean modulo the committed baseline
# ----------------------------------------------------------------------

def test_self_scan_of_src_is_clean():
    findings = scan_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    baseline = load_baseline(BASELINE)
    fresh = apply_baseline(findings, baseline)
    assert fresh == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in fresh)


def test_committed_baseline_has_no_det_or_dur_entries():
    # The acceptance bar: determinism/durability findings get FIXED,
    # never baselined.
    baseline = load_baseline(BASELINE)
    offending = [f for f in baseline if f.rule.startswith(("DET", "DUR"))]
    assert offending == []


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_clean_scan_exits_zero(capsys):
    rc = main(["lint", str(FIXTURES / "det101_neg.py")])
    assert rc == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_findings_exit_one_text(capsys):
    rc = main(["lint", str(FIXTURES / "det101_pos.py")])
    assert rc == 1
    assert "DET101" in capsys.readouterr().out


def test_cli_json_format(capsys):
    rc = main(["lint", "--format", "json",
               str(FIXTURES / "det102_pos.py")])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == len(payload["findings"]) > 0
    assert {f["rule"] for f in payload["findings"]} == {"DET102"}


def test_cli_baseline_subtracts(tmp_path, capsys):
    fixture = str(FIXTURES / "det102_pos.py")
    baseline_path = tmp_path / "b.json"
    assert main(["lint", "--write-baseline", str(baseline_path),
                 fixture]) == 0
    capsys.readouterr()
    rc = main(["lint", "--baseline", str(baseline_path), fixture])
    assert rc == 0
    assert "baselined" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_missing_path_exits_two(tmp_path, capsys):
    rc = main(["lint", str(tmp_path / "nope.txt")])
    assert rc == 2
    assert "lint" in capsys.readouterr().err


def test_unparseable_file_reports_lint000(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n", encoding="utf-8")
    findings = scan_file(target)
    assert [f.rule for f in findings] == ["LINT000"]


# ----------------------------------------------------------------------
# docs stay in sync
# ----------------------------------------------------------------------

def test_readme_catalogs_every_rule():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for rule_id in RULES:
        assert rule_id in readme, f"README rule catalog misses {rule_id}"
