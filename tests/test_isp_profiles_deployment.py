"""Unit tests for repro.isp.profiles and repro.isp.deployment."""

import numpy as np
import pytest

from repro.geo.entities import BlockGroup, CensusBlock
from repro.geo.geometry import Point
from repro.isp.deployment import (
    GroundTruth,
    ServiceTruth,
    UNSERVED,
    build_ground_truth,
    sample_service_truth,
)
from repro.isp.plans import BroadbandPlan
from repro.isp.profiles import PROFILES, profile_for
from repro.stats.distributions import stable_rng
from repro.addresses.generator import AddressGenerator


def make_block_group(density: float = 10.0) -> BlockGroup:
    geoid = "060371234561"
    blocks = tuple(
        CensusBlock(geoid=f"{geoid}{i:03d}", centroid=Point(-118.0, 34.0),
                    is_rural=density < 500)
        for i in range(1, 3)
    )
    return BlockGroup(
        geoid=geoid, centroid=Point(-118.0, 34.0), population=1000,
        population_density=density, is_rural=density < 500,
        distance_to_city_miles=30.0, blocks=blocks,
    )


class TestProfiles:
    def test_all_bqt_isps_have_profiles(self):
        for isp_id in ("att", "centurylink", "frontier", "consolidated",
                       "xfinity", "spectrum"):
            assert profile_for(isp_id).isp_id == isp_id

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            profile_for("windstream")

    def test_att_serviceability_rises_with_density(self):
        att = profile_for("att")
        rural = att.serviceability_probability("CA", 5.0)
        urban = att.serviceability_probability("CA", 50_000.0)
        assert urban > rural
        assert urban > 0.6
        assert rural < 0.3

    def test_att_mississippi_is_density_flat(self):
        att = profile_for("att")
        assert att.serviceability_probability("MS", 5.0) == \
            att.serviceability_probability("MS", 5000.0)

    def test_centurylink_new_jersey_is_zero(self):
        # The paper observed 0% serviceability for 980 NJ addresses.
        assert profile_for("centurylink").serviceability_probability(
            "NJ", 100.0) == 0.0

    def test_frontier_florida_depressed(self):
        frontier = profile_for("frontier")
        assert frontier.serviceability_probability("FL", 100.0) < \
            frontier.serviceability_probability("OH", 100.0)

    def test_probabilities_bounded(self):
        for profile in PROFILES.values():
            for density in (0.1, 10.0, 1000.0, 100000.0):
                p = profile.serviceability_probability("OH", density)
                assert 0.0 <= p <= 1.0

    def test_negative_density_raises(self):
        with pytest.raises(ValueError):
            profile_for("att").serviceability_probability("CA", -1.0)

    def test_tier_mix_sampling_matches_weights(self):
        profile = profile_for("centurylink")
        rng = stable_rng(0, "mix")
        draws = [profile.sample_tier_label(rng) for _ in range(4000)]
        share_10 = draws.count("10") / len(draws)
        expected = profile.served_tier_mix["10"] / sum(
            profile.served_tier_mix.values())
        assert share_10 == pytest.approx(expected, abs=0.04)

    def test_speed_for_label(self):
        profile = profile_for("att")
        rng = stable_rng(1, "speed")
        assert profile.speed_for_label("10", rng) == 10.0
        assert 11.0 <= profile.speed_for_label("11-99", rng) <= 99.0
        assert profile.speed_for_label("1000+", rng) >= 1000.0
        assert profile.speed_for_label("Unknown Plan", rng) == 0.0
        with pytest.raises(ValueError):
            profile.speed_for_label("nope", rng)

    def test_price_in_paper_range_for_10mbps(self):
        # Section 4.2: 10 Mbps tier priced $30-55.
        rng = stable_rng(2, "price")
        prices = [profile_for(isp).price_for_speed(10.0, rng)
                  for isp in ("att", "centurylink", "frontier", "consolidated")
                  for _ in range(200)]
        assert np.median(prices) == pytest.approx(50.0, abs=10.0)
        assert min(prices) >= 20.0
        assert max(prices) <= 120.0

    def test_make_plan_unknown_returns_none(self):
        rng = stable_rng(3, "plan")
        assert profile_for("frontier").make_plan("Unknown Plan", rng) is None

    def test_make_plan_no_guarantee(self):
        rng = stable_rng(4, "plan")
        plan = profile_for("att").make_plan("AT&T Internet Air", rng)
        assert plan is not None
        assert not plan.is_speed_guaranteed

    def test_lower_tier_plans_below_top(self):
        rng = stable_rng(5, "lower")
        profile = profile_for("consolidated")
        top = profile.make_plan("1000+", rng)
        lower = profile.lower_tier_plans(top, rng)
        assert all(p.download_mbps < top.download_mbps for p in lower)


class TestServiceTruth:
    def test_unserved_invariants(self):
        with pytest.raises(ValueError):
            ServiceTruth(serves=False,
                         plans=(BroadbandPlan("x", 10.0, 1.0, 40.0),))
        with pytest.raises(ValueError):
            ServiceTruth(serves=False, existing_subscriber=True)

    def test_max_download_only_counts_guaranteed(self):
        truth = ServiceTruth(serves=True, plans=(
            BroadbandPlan("a", 10.0, 1.0, 40.0),
            BroadbandPlan("b", 100.0, 10.0, 60.0, is_speed_guaranteed=False),
        ))
        assert truth.max_download_mbps == 10.0
        assert truth.best_plan.download_mbps == 100.0

    def test_unserved_default(self):
        assert not UNSERVED.serves
        assert UNSERVED.max_download_mbps == 0.0
        assert UNSERVED.best_plan is None


class TestGroundTruth:
    def test_default_is_unserved(self):
        truth = GroundTruth()
        assert not truth.serves("att", "nope")
        assert truth.truth_for("att", "nope") is UNSERVED

    def test_set_and_get(self):
        truth = GroundTruth()
        state = ServiceTruth(serves=True,
                             plans=(BroadbandPlan("x", 10.0, 1.0, 40.0),),
                             tier_label="10")
        truth.set_truth("att", "a-1", state)
        assert truth.serves("att", "a-1")
        assert not truth.serves("frontier", "a-1")
        assert len(truth) == 1

    def test_sample_service_truth_deterministic(self):
        block_group = make_block_group()
        address = AddressGenerator(seed=0).generate_for_block(
            block_group.blocks[0], 1, True, "caf")[0]
        profile = profile_for("centurylink")
        first = sample_service_truth(profile, address, block_group, seed=9)
        second = sample_service_truth(profile, address, block_group, seed=9)
        assert first == second

    def test_build_ground_truth_covers_all_addresses(self):
        block_group = make_block_group()
        addresses = AddressGenerator(seed=0).generate_for_block(
            block_group.blocks[0], 50, True, "caf")
        truth = build_ground_truth(
            certified={"centurylink": addresses},
            block_groups={block_group.geoid: block_group},
            profiles=PROFILES,
            seed=0,
        )
        assert len(truth) == 50
        served = sum(truth.serves("centurylink", a.address_id)
                     for a in addresses)
        assert served > 30  # base probability is 0.904

    def test_build_ground_truth_unknown_cbg_raises(self):
        block_group = make_block_group()
        foreign_block = CensusBlock(geoid="130371234561001",
                                    centroid=Point(-84.0, 33.0), is_rural=True)
        addresses = AddressGenerator(seed=0).generate_for_block(
            foreign_block, 1, True, "caf")
        with pytest.raises(KeyError, match="unknown CBG"):
            build_ground_truth(
                certified={"att": addresses},
                block_groups={block_group.geoid: block_group},
                profiles=PROFILES,
            )
