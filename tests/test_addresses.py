"""Unit tests for repro.addresses."""

import pytest

from repro.addresses import AddressGenerator, StreetAddress, ZillowFeed
from repro.geo.entities import CensusBlock
from repro.geo.geometry import Point


@pytest.fixture
def block() -> CensusBlock:
    return CensusBlock(geoid="060371234561001",
                       centroid=Point(-118.0, 34.0), is_rural=True)


class TestStreetAddress:
    def test_single_line_format(self):
        address = StreetAddress(
            address_id="x-1",
            house_number=123,
            street_name="Cedar Ridge Rd",
            city="Alabaster Township 5",
            state_abbreviation="AL",
            zip_code="35007",
            block_geoid="010019876541002",
            location=Point(-86.8, 33.2),
            is_caf=True,
        )
        assert address.single_line == \
            "123 Cedar Ridge Rd, Alabaster Township 5, AL 35007"
        assert address.block_group_geoid == "010019876541"
        assert address.state_fips == "01"

    def test_validation(self):
        with pytest.raises(ValueError):
            StreetAddress("x", 0, "A St", "C", "AL", "35007",
                          "010019876541002", Point(0, 0), True)
        with pytest.raises(ValueError):
            StreetAddress("x", 1, "A St", "C", "AL", "bad",
                          "010019876541002", Point(0, 0), True)
        with pytest.raises(ValueError):
            StreetAddress("x", 1, "A St", "C", "AL", "35007",
                          "123", Point(0, 0), True)


class TestAddressGenerator:
    def test_count_and_block_assignment(self, block: CensusBlock):
        addresses = AddressGenerator(seed=1).generate_for_block(
            block, 25, is_caf=True, namespace="caf")
        assert len(addresses) == 25
        assert all(a.block_geoid == block.geoid for a in addresses)
        assert all(a.is_caf for a in addresses)
        assert all(a.state_abbreviation == "CA" for a in addresses)

    def test_ids_unique_and_stable(self, block: CensusBlock):
        first = AddressGenerator(seed=1).generate_for_block(
            block, 40, is_caf=True, namespace="caf")
        second = AddressGenerator(seed=1).generate_for_block(
            block, 40, is_caf=True, namespace="caf")
        ids = [a.address_id for a in first]
        assert len(set(ids)) == 40
        assert ids == [a.address_id for a in second]
        assert [a.house_number for a in first] == [a.house_number for a in second]

    def test_namespaces_are_independent(self, block: CensusBlock):
        generator = AddressGenerator(seed=1)
        caf = generator.generate_for_block(block, 10, True, "caf")
        zillow = generator.generate_for_block(block, 10, False, "zillow")
        assert not {a.address_id for a in caf} & {a.address_id for a in zillow}

    def test_locations_near_block_centroid(self, block: CensusBlock):
        addresses = AddressGenerator(seed=2).generate_for_block(
            block, 30, True, "caf")
        for address in addresses:
            assert address.location.distance_miles(block.centroid) < 5.0

    def test_zero_count(self, block: CensusBlock):
        assert AddressGenerator().generate_for_block(block, 0, True, "caf") == []

    def test_negative_count_raises(self, block: CensusBlock):
        with pytest.raises(ValueError):
            AddressGenerator().generate_for_block(block, -1, True, "caf")


class TestZillowFeed:
    def _addresses(self, block: CensusBlock, n: int, is_caf: bool, ns: str):
        return AddressGenerator(seed=3).generate_for_block(block, n, is_caf, ns)

    def test_lookup_and_membership(self, block: CensusBlock):
        addresses = self._addresses(block, 5, False, "zillow")
        feed = ZillowFeed(addresses)
        assert len(feed) == 5
        assert addresses[0].address_id in feed
        assert feed.lookup(addresses[0].address_id) == addresses[0]

    def test_lookup_unknown_raises(self, block: CensusBlock):
        feed = ZillowFeed([])
        with pytest.raises(KeyError):
            feed.lookup("nope")

    def test_duplicate_ids_rejected(self, block: CensusBlock):
        addresses = self._addresses(block, 3, False, "zillow")
        with pytest.raises(ValueError, match="duplicate"):
            ZillowFeed(addresses + addresses[:1])

    def test_block_queries(self, block: CensusBlock):
        non_caf = self._addresses(block, 4, False, "zillow")
        caf = self._addresses(block, 3, True, "caf")
        feed = ZillowFeed(non_caf + caf)
        assert len(feed.in_block(block.geoid)) == 7
        assert len(feed.non_caf_in_block(block.geoid)) == 4
        assert feed.in_block("999999999999999") == []

    def test_merge(self, block: CensusBlock):
        feed_a = ZillowFeed(self._addresses(block, 2, False, "a"))
        feed_b = ZillowFeed(self._addresses(block, 3, False, "b"))
        merged = ZillowFeed.merge([feed_a, feed_b])
        assert len(merged) == 5

    def test_summary(self, block: CensusBlock):
        feed = ZillowFeed(self._addresses(block, 4, False, "zillow"))
        summary = feed.summary()
        assert summary["addresses"] == 4
        assert summary["non_caf"] == 4
        assert summary["blocks"] == 1
