"""Unit tests for repro.bqt.campaign."""

import pytest

from repro.bqt.campaign import (
    MAX_POLITE_WORKERS_PER_ISP,
    CampaignPlan,
    estimate_duration,
    plan_full_census,
    plan_study,
)


class TestCampaignPlan:
    def test_politeness_cap_enforced(self):
        with pytest.raises(ValueError, match="politeness"):
            CampaignPlan(
                addresses_by_isp={"att": 100},
                workers_by_isp={"att": MAX_POLITE_WORKERS_PER_ISP + 1},
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignPlan(addresses_by_isp={}, workers_by_isp={})
        with pytest.raises(ValueError):
            CampaignPlan(addresses_by_isp={"att": -1},
                         workers_by_isp={"att": 1})
        with pytest.raises(ValueError):
            CampaignPlan(addresses_by_isp={"att": 1},
                         workers_by_isp={"att": 0})
        with pytest.raises(ValueError):
            CampaignPlan(addresses_by_isp={"att": 1},
                         workers_by_isp={"att": 1}, retry_overhead=0.9)

    def test_total_addresses(self):
        plan = plan_study({"att": 100, "frontier": 50})
        assert plan.total_addresses == 150


class TestEstimateDuration:
    def test_full_census_exceeds_six_months(self):
        # The paper's motivating claim (Section 1): querying all 6M+
        # addresses would take more than 6 months even with maximum
        # polite parallelism.
        estimate = estimate_duration(plan_full_census())
        assert estimate.wall_clock_months > 6.0

    def test_att_is_the_bottleneck(self):
        estimate = estimate_duration(plan_full_census())
        assert estimate.bottleneck_isp == "att"

    def test_study_campaign_is_months_not_years(self):
        # The paper's actual campaign: ~537k addresses, run mid-2023
        # onwards. Should land in the months range, far below census.
        study = plan_study({"att": 233_000, "centurylink": 112_000,
                            "frontier": 170_000, "consolidated": 23_000})
        estimate = estimate_duration(study)
        census = estimate_duration(plan_full_census())
        assert estimate.wall_clock_days < census.wall_clock_days / 5
        assert 1.0 < estimate.wall_clock_months < 12.0

    def test_more_workers_scale_linearly(self):
        one = estimate_duration(plan_study({"att": 10_000},
                                           workers_per_isp=1))
        four = estimate_duration(plan_study({"att": 10_000},
                                            workers_per_isp=4))
        assert one.wall_clock_days == pytest.approx(
            4 * four.wall_clock_days)

    def test_sequential_upper_bounds_wall_clock(self):
        estimate = estimate_duration(plan_full_census())
        assert estimate.sequential_days >= estimate.wall_clock_days

    def test_retry_overhead_increases_duration(self):
        base = CampaignPlan({"att": 1000}, {"att": 2}, retry_overhead=1.0)
        heavy = CampaignPlan({"att": 1000}, {"att": 2}, retry_overhead=1.5)
        assert estimate_duration(heavy).wall_clock_days == pytest.approx(
            1.5 * estimate_duration(base).wall_clock_days)
