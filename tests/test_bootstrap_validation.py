"""Tests for repro.stats.bootstrap and repro.core.validation."""

import numpy as np
import pytest

from repro.core.validation import Finding, validate_report, validate_world
from repro.stats.bootstrap import BootstrapInterval, bootstrap_weighted_rate


class TestBootstrap:
    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        rates = rng.uniform(0, 1, size=60)
        weights = rng.uniform(1, 100, size=60)
        interval = bootstrap_weighted_rate(rates, weights)
        assert interval.low <= interval.estimate <= interval.high

    def test_wider_with_more_confidence(self):
        rng = np.random.default_rng(1)
        rates = rng.uniform(0, 1, size=40)
        weights = np.ones(40)
        narrow = bootstrap_weighted_rate(rates, weights, confidence=0.80)
        wide = bootstrap_weighted_rate(rates, weights, confidence=0.99)
        assert wide.width >= narrow.width

    def test_shrinks_with_sample_size(self):
        rng = np.random.default_rng(2)
        small = rng.uniform(0.4, 0.6, size=10)
        large = rng.uniform(0.4, 0.6, size=500)
        small_ci = bootstrap_weighted_rate(small, np.ones(10))
        large_ci = bootstrap_weighted_rate(large, np.ones(500))
        assert large_ci.width < small_ci.width

    def test_degenerate_single_group(self):
        interval = bootstrap_weighted_rate([0.5], [10.0])
        assert interval.estimate == pytest.approx(0.5)
        assert interval.width == pytest.approx(0.0)

    def test_deterministic(self):
        rates = [0.2, 0.5, 0.9]
        weights = [1.0, 2.0, 3.0]
        a = bootstrap_weighted_rate(rates, weights, seed=7)
        b = bootstrap_weighted_rate(rates, weights, seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_contains_and_describe(self):
        interval = BootstrapInterval(estimate=0.5, low=0.4, high=0.6,
                                     confidence=0.95, replicates=100)
        assert interval.contains(0.45)
        assert not interval.contains(0.7)
        assert "95% CI" in interval.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_weighted_rate([], [])
        with pytest.raises(ValueError):
            bootstrap_weighted_rate([0.5], [1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_weighted_rate([0.5], [1.0], replicates=1)
        with pytest.raises(ValueError):
            BootstrapInterval(estimate=0.9, low=0.4, high=0.6,
                              confidence=0.95, replicates=100)

    def test_serviceability_ci_brackets_paper_band(self, report):
        rates_table = report.serviceability.cbg_rates
        interval = bootstrap_weighted_rate(
            rates_table["rate"], rates_table["weight"])
        assert interval.contains(report.serviceability.aggregate_rate())
        assert interval.width < 0.25


class TestValidation:
    def test_world_is_consistent(self, world):
        findings = validate_world(world)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_report_is_consistent(self, report):
        findings = validate_report(report)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_detects_tampered_truth(self, tiny_config):
        from repro.isp.deployment import ServiceTruth
        from repro.isp.plans import BroadbandPlan
        from repro.synth.world import build_world

        tampered = build_world(tiny_config)
        # Break an invariant: a served truth with a zero-speed plan is
        # impossible (plans validate > 0), so corrupt differently — an
        # unserved-with-plans state is blocked by ServiceTruth itself.
        # Instead drop a funded cell from the ledger view by removing
        # the address from caf_addresses (dangling CAF Map reference).
        victim = next(iter(tampered.caf_addresses))
        del tampered.caf_addresses[victim]
        findings = validate_world(tampered)
        assert any(f.check == "caf_map_address_exists" for f in findings)

    def test_finding_str(self):
        finding = Finding(check="x", detail="boom")
        assert str(finding) == "[x] boom"
