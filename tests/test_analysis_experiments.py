"""Tests for the experiment registry — every table/figure generator."""

import numpy as np
import pytest

from repro.analysis import EXPERIMENTS, run_experiment
from repro.analysis.result import ExperimentResult

ALL_IDS = sorted(EXPERIMENTS)


@pytest.fixture(scope="module")
def results(context):
    return {exp_id: run_experiment(exp_id, context) for exp_id in ALL_IDS}


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        expected = {f"figure{i}" for i in range(1, 13)} | {
            "table1", "table2", "table3", "table4", "headline",
            "carriage", "equity", "staleness", "panel"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_raises(self, context):
        with pytest.raises(KeyError, match="available"):
            run_experiment("figure99", context)

    def test_all_results_render(self, results):
        for exp_id, result in results.items():
            assert isinstance(result, ExperimentResult)
            text = result.render()
            assert exp_id in text
            assert result.title in text

    def test_series_are_valid_cdfs(self, results):
        for result in results.values():
            for name, (xs, ys) in result.series.items():
                assert xs.size == ys.size > 0, name
                assert np.all(np.diff(ys) >= 0), name
                assert ys[-1] == pytest.approx(1.0), name

    def test_paper_scalars_paired_with_measured(self, results):
        for result in results.values():
            for key in result.scalars:
                if key.startswith("paper_"):
                    assert key[len("paper_"):] in result.scalars, key


class TestFigure1:
    def test_concentration_scalars(self, results):
        scalars = results["figure1"].scalars
        assert scalars["top4_isp_address_share"] == pytest.approx(
            0.62, abs=0.07)
        assert scalars["top20_state_address_share"] > 0.6
        assert scalars["rural_block_share"] == pytest.approx(0.967, abs=0.03)

    def test_tables_ranked_descending(self, results):
        table = results["figure1"].tables["fig1a_addresses_by_state"]
        counts = list(table["addresses"])
        assert counts == sorted(counts, reverse=True)


class TestFigure2:
    def test_isp_rates_ordered(self, results):
        scalars = results["figure2"].scalars
        assert scalars["serviceability_centurylink"] > \
            scalars["serviceability_att"]

    def test_box_tables_have_all_isps(self, results):
        table = results["figure2"].tables["fig2a_cbg_rate_distribution_by_isp"]
        assert set(table["group"]) == {"att", "centurylink", "frontier",
                                       "consolidated"}


class TestFigure3:
    def test_correlations_positive_outside_mississippi(self, results):
        table = results["figure3"].tables["att_density_correlation_by_state"]
        for row in table.iter_rows():
            if row["state"] != "MS" and row["n_cbgs"] >= 10:
                assert row["spearman_r"] > -0.2, row["state"]


class TestMonopolyFigures:
    def test_figure4_shares(self, results):
        scalars = results["figure4"].scalars
        total = (scalars["type_a_tie_share"] + scalars["type_a_caf_share"]
                 + scalars["type_a_rival_share"])
        assert total == pytest.approx(1.0)
        assert scalars["median_pct_increase_caf_wins"] > 0

    def test_figure6_spillover(self, results):
        scalars = results["figure6"].scalars
        if {"type_a_caf_median_mbps", "type_b_caf_median_mbps"} <= set(scalars):
            assert scalars["type_b_caf_median_mbps"] >= \
                scalars["type_a_caf_median_mbps"] * 0.5

    def test_figure11_loss_margins_smaller(self, results):
        f4 = results["figure4"].scalars
        f11 = results["figure11"].scalars
        assert f11["median_pct_increase_monopoly_wins"] < \
            f4["median_pct_increase_caf_wins"]


class TestCollectionFigures:
    def test_figure7_medians_above_10pct(self, results):
        scalars = results["figure7"].scalars
        for isp in ("att", "centurylink"):
            assert scalars[f"queried_pct_median_{isp}"] >= 10.0

    def test_figure8_not_above_figure7(self, results):
        queried = results["figure7"].scalars
        collected = results["figure8"].scalars
        for isp in ("att", "frontier"):
            assert collected[f"collected_pct_median_{isp}"] <= \
                queried[f"queried_pct_median_{isp}"] + 1e-9

    def test_figure12_att_slowest(self, results):
        scalars = results["figure12"].scalars
        assert scalars["median_query_seconds_att"] > \
            scalars["median_query_seconds_centurylink"]

    def test_table2_shape(self, results):
        table = results["table2"].tables["table2"]
        rows = {row["isp"]: row for row in table.iter_rows()}
        assert rows["att"]["select_dropdown"] > 0
        assert rows["att"]["analyzing_result"] > 0   # call-to-order
        assert rows["centurylink"]["select_dropdown"] == 0
        assert rows["centurylink"]["empty_traceback"] == \
            rows["centurylink"]["total_unknown"]
        assert rows["consolidated"]["select_dropdown"] >= \
            0.9 * rows["consolidated"]["total_unknown"]


class TestTables34:
    def test_table3_cells_match_world_footprint(self, results, world):
        table = results["table3"].tables["table3"]
        cells = {(row["state"], row["isp"]) for row in table.iter_rows()}
        assert ("CA", "att") in cells
        assert ("VT", "consolidated") in cells
        assert ("VT", "att") not in cells

    def test_table3_counts_positive(self, results):
        table = results["table3"].tables["table3"]
        assert all(row["street_addresses"] > 0 for row in table.iter_rows())
        assert all(row["cbgs"] <= row["census_blocks"]
                   for row in table.iter_rows())

    def test_table4_totals(self, results):
        scalars = results["table4"].scalars
        assert scalars["total_caf_queried"] > 0
        assert scalars["total_non_caf_queried"] > 0
        assert scalars["analyzed_blocks"] > 0


class TestFigure9:
    def test_sensitivity_bounded(self, results):
        scalars = results["figure9"].scalars
        assert scalars["max_error_pct"] < 35.0  # tiny worlds are noisy
        table = results["figure9"].tables["fig9_deltas"]
        assert len(table) == 5


class TestHeadline:
    def test_measured_close_to_paper(self, results):
        scalars = results["headline"].scalars
        assert scalars["serviceability_rate"] == pytest.approx(
            scalars["paper_serviceability_rate"], abs=0.08)
        assert scalars["compliance_rate"] == pytest.approx(
            scalars["paper_compliance_rate"], abs=0.10)
