"""Unit tests for repro.tabular.colio — the binary column codec."""

import json
import math
import struct

import numpy as np
import pytest

from repro.runtime.cache import content_digest
from repro.tabular.colio import (
    MAGIC,
    decode_columns,
    decode_row_document,
    encode_columns,
    encode_row_document,
)


def _round_trip(columns, length, meta=None):
    meta_back, length_back, columns_back = decode_columns(
        encode_columns(columns, length, meta))
    assert length_back == length
    return meta_back, columns_back


class TestColumnRoundTrips:
    def test_typed_columns(self):
        columns = {
            "count": [3, -7, 0],
            "rate": [0.5, 1 / 3, -2.25],
            "ok": [True, False, True],
            "isp": ["att", "frontier", "cl"],
        }
        _, back = _round_trip(columns, 3)
        assert back == columns
        # Python types, not numpy scalars, come back out.
        assert all(type(v) is int for v in back["count"])
        assert all(type(v) is float for v in back["rate"])
        assert all(type(v) is bool for v in back["ok"])

    def test_floats_bit_exact(self):
        values = [0.1 + 0.2, 1e-308, math.inf, -math.inf, math.nan,
                  -0.0]
        _, back = _round_trip({"x": values}, len(values))
        for original, decoded in zip(values, back["x"]):
            assert struct.pack("<d", original) == struct.pack("<d", decoded)

    def test_numpy_array_input(self):
        columns = {
            "i": np.asarray([1, 2, 3], dtype=np.int64),
            "f": np.asarray([0.5, 1.5, 2.5]),
            "b": np.asarray([True, False, True]),
            "s": np.asarray(["a", "bb", "ccc"], dtype=object),
        }
        _, back = _round_trip(columns, 3)
        assert back["i"] == [1, 2, 3]
        assert back["f"] == [0.5, 1.5, 2.5]
        assert back["b"] == [True, False, True]
        assert back["s"] == ["a", "bb", "ccc"]

    def test_none_values_use_validity_masks(self):
        columns = {
            "maybe_int": [1, None, 3],
            "maybe_str": ["a", None, None],
            "maybe_float": [None, 2.5, None],
        }
        _, back = _round_trip(columns, 3)
        assert back == columns

    def test_all_none_column(self):
        _, back = _round_trip({"x": [None, None]}, 2)
        assert back["x"] == [None, None]

    def test_json_fallback_for_dicts_and_mixed(self):
        columns = {
            "modes": [{"fiber": 2, "dsl": 1}, {}],
            "mixed": [1, "two"],
            "big": [2 ** 70, 0],
        }
        _, back = _round_trip(columns, 2)
        assert back == columns

    def test_unicode_strings(self):
        values = ["café", "näive", "ελληνικά", ""]
        _, back = _round_trip({"s": values}, 4)
        assert back["s"] == values

    def test_meta_and_zero_length(self):
        meta = {"namespace": "a" * 64, "format": 2}
        meta_back, back = _round_trip({"x": [], "y": []}, 0, meta)
        assert meta_back == meta
        assert back == {"x": [], "y": []}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected 2"):
            encode_columns({"x": [1]}, 2)


class TestDamage:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="magic"):
            decode_columns(b"NOTCOLIO" + b"\x00" * 16)

    def test_truncation_everywhere(self):
        payload = encode_columns(
            {"i": [1, 2], "s": ["ab", "c"], "m": [None, {"k": 1}]}, 2)
        for cut in range(len(payload)):
            with pytest.raises(ValueError):
                decode_columns(payload[:cut])

    def test_trailing_bytes_rejected(self):
        payload = encode_columns({"i": [1]}, 1)
        with pytest.raises(ValueError, match="trailing"):
            decode_columns(payload + b"\x00")

    def test_header_not_json(self):
        header = b"{not json"
        payload = MAGIC + struct.pack("<I", len(header)) + header
        with pytest.raises(ValueError, match="header"):
            decode_columns(payload)


class TestRowDocuments:
    Q12_ROW = {
        "isp_id": "frontier",
        "state": "VT",
        "cbg": "500019601001",
        "served_rate": 0.625,
        "compliant_rate": 1 / 3,
        "queried": 8,
        "weight": 12,
    }

    def test_row_round_trip_hashes_identically(self):
        meta, row = decode_row_document(
            encode_row_document(self.Q12_ROW, {"digest": "d" * 64}))
        assert meta == {"digest": "d" * 64}
        assert row == self.Q12_ROW
        assert content_digest({"row": row}) == \
            content_digest({"row": self.Q12_ROW})
        # Canonical JSON byte-equality: the strongest round-trip claim.
        assert json.dumps(row, sort_keys=True) == \
            json.dumps(self.Q12_ROW, sort_keys=True)

    def test_none_row_distinct_from_missing(self):
        meta, row = decode_row_document(encode_row_document(None))
        assert row is None
        assert meta is None

    def test_q3_row_with_mode_dict(self):
        q3 = {"analyzed": True, "records": 41,
              "modes": {"fiber": 3, "fixed_wireless": 1}}
        _, row = decode_row_document(encode_row_document(q3))
        assert row == q3
        assert type(row["analyzed"]) is bool

    def test_binary_smaller_than_json_at_column_scale(self):
        """Machine words beat decimal text once a column has real
        length (the one-row cache documents pay a fixed header and
        break even; the bulk wins are columnar)."""
        n = 1000
        columns = {
            "cbg": [f"{500019601000 + i:012d}" for i in range(n)],
            "served_rate": [(i % 97) / 97 for i in range(n)],
            "compliant_rate": [(i % 89) / 89 for i in range(n)],
            "queried": list(range(n)),
            "weight": [i * 3 + 1 for i in range(n)],
        }
        rows = [{name: columns[name][i] for name in columns}
                for i in range(n)]
        json_size = sum(len(json.dumps(row).encode()) + 1 for row in rows)
        col_size = len(encode_columns(columns, n))
        assert col_size < 0.8 * json_size

    def test_not_a_row_document(self):
        payload = encode_columns({"x": [1]}, 1, {"unrelated": True})
        with pytest.raises(ValueError, match="row document"):
            decode_row_document(payload)
