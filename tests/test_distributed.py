"""Tests for repro.runtime.distributed: frames, leases, chaos.

Three layers, separately testable because the protocol runs over plain
binary streams:

* **frames** — length-prefixed, SHA-256-verified JSON messages must
  reject damage instead of propagating it;
* **the lease board and connection service** — shards move
  pending → leased → completed, and every failure mode (EOF, damaged
  frame, timeout, wrong index) puts the lease back;
* **the reference transport** — real ``repro worker`` subprocesses on
  a Unix socket, including the chaos scenario the acceptance criteria
  name: a worker killed mid-campaign whose shards are reassigned, with
  merged output still byte-identical to the serial backend.
"""

from __future__ import annotations

import io
import socket
import threading

import pytest

from harness.equivalence import canonical_logbook_bytes
from repro.runtime import RuntimeConfig, execute_campaign, plan_shards
from repro.runtime.checkpoint import CheckpointStore, campaign_fingerprint
from repro.runtime.distributed import (
    FrameError,
    _LeaseBoard,
    _lease_message,
    _scenario_from_json,
    _serve_connection,
    _spec_from_json,
    _spec_to_json,
    autotune_runtime_config,
    read_frame,
    run_shards_distributed,
    write_frame,
)
from repro.runtime.merge import merge_shard_results
from repro.synth.scenario import ScenarioConfig

SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

def roundtrip(message: dict) -> dict:
    buffer = io.BytesIO()
    write_frame(buffer, message)
    buffer.seek(0)
    return read_frame(buffer)


class TestFrames:
    def test_roundtrip(self):
        message = {"type": "hello", "pid": 42,
                   "nested": {"floats": [0.1, 2.5e-7], "none": None}}
        assert roundtrip(message) == message

    def test_back_to_back_frames(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"n": 1})
        write_frame(buffer, {"n": 2})
        buffer.seek(0)
        assert read_frame(buffer) == {"n": 1}
        assert read_frame(buffer) == {"n": 2}

    def test_corrupted_payload_rejected(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"type": "result", "index": 3})
        raw = bytearray(buffer.getvalue())
        raw[-1] ^= 0xFF  # flip one payload byte
        with pytest.raises(FrameError, match="SHA-256"):
            read_frame(io.BytesIO(bytes(raw)))

    def test_corrupted_digest_rejected(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"type": "result"})
        raw = bytearray(buffer.getvalue())
        raw[6] ^= 0xFF  # flip one digest byte (offset 4..35)
        with pytest.raises(FrameError):
            read_frame(io.BytesIO(bytes(raw)))

    def test_truncated_stream_is_eof(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"type": "lease", "padding": "x" * 100})
        for cut in (0, 2, 10, len(buffer.getvalue()) - 1):
            with pytest.raises(EOFError):
                read_frame(io.BytesIO(buffer.getvalue()[:cut]))

    def test_non_object_payload_rejected(self):
        import hashlib
        import struct

        payload = b"[1,2,3]"
        raw = (struct.pack(">I", len(payload))
               + hashlib.sha256(payload).digest() + payload)
        with pytest.raises(FrameError, match="JSON object"):
            read_frame(io.BytesIO(raw))


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------

class TestConnectAddressing:
    def test_relative_socket_path_without_separator(self, tmp_path):
        """A bare socket filename (no slash, no colon) is a Unix path,
        not a malformed HOST:PORT."""
        import os

        from repro.runtime.distributed import _connect

        sock_path = tmp_path / "coord.sock"
        server = socket.socket(socket.AF_UNIX)
        server.bind(str(sock_path))
        server.listen(1)
        cwd = os.getcwd()
        try:
            os.chdir(tmp_path)
            client = _connect("coord.sock")
            client.close()
        finally:
            os.chdir(cwd)
            server.close()

    def test_host_port_without_host_rejected(self):
        from repro.runtime.distributed import _connect

        with pytest.raises(ValueError, match="HOST:PORT"):
            _connect(":9999")


class TestCodecs:
    def test_scenario_roundtrip(self, tiny_config):
        from dataclasses import asdict

        restored = _scenario_from_json(
            roundtrip({"scenario": asdict(tiny_config)})["scenario"])
        assert restored == tiny_config
        assert hash(restored) == hash(tiny_config)  # usable as cache key

    def test_spec_roundtrip(self, world):
        for spec in plan_shards(world, 3, **SUBSET):
            assert _spec_from_json(
                roundtrip(_spec_to_json(spec))) == spec

    def test_lease_message_carries_everything(self, world):
        from repro.bqt.engine import EngineConfig
        from repro.core.sampling import SamplingPolicy

        spec = plan_shards(world, 2, **SUBSET)[0]
        message = _lease_message(
            world.config, spec, SamplingPolicy(min_samples=10),
            EngineConfig(max_attempts=2), 1, True, 12, 4)
        restored = roundtrip(message)
        assert restored["policy"]["min_samples"] == 10
        assert restored["engine_config"]["max_attempts"] == 2
        assert restored["max_replacements"] == 1
        assert restored["use_async"] is True
        assert restored["max_inflight"] == 12
        assert restored["per_isp_cap"] == 4
        assert _spec_from_json(restored["spec"]) == spec


# ----------------------------------------------------------------------
# Lease board
# ----------------------------------------------------------------------

def _dummy_specs(world, count=3):
    return plan_shards(world, count, **SUBSET)


class TestLeaseBoard:
    def test_checkout_requeue_deliver(self, world):
        delivered = []
        specs = _dummy_specs(world)
        board = _LeaseBoard(specs, delivered.append)
        first = board.checkout()
        assert first.index == 0
        board.requeue(first)
        assert board.checkout().index == 0  # lost work is oldest work
        assert board.outstanding()
        assert not board.done.is_set()

    def test_done_when_all_delivered(self, world):
        delivered = []
        specs = _dummy_specs(world)
        board = _LeaseBoard(specs, delivered.append)
        while (spec := board.checkout()) is not None:
            assert board.deliver(spec, f"result-{spec.index}")
        assert board.done.is_set()
        assert not board.outstanding()
        assert delivered == ["result-0", "result-1", "result-2"]

    def test_duplicate_delivery_is_noop(self, world):
        delivered = []
        specs = _dummy_specs(world)
        board = _LeaseBoard(specs, delivered.append)
        spec = board.checkout()
        assert board.deliver(spec, "first")
        assert not board.deliver(spec, "second")
        assert delivered == ["first"]

    def test_empty_board_is_born_done(self, world):
        board = _LeaseBoard([], lambda r: None)
        assert board.done.is_set()
        assert board.checkout() is None

    def test_on_complete_failure_ends_the_campaign(self, world):
        """An exception from on_complete (e.g. a checkpoint write to a
        full disk) must end the campaign with the error captured, not
        hang the coordinator or keep leasing shards."""
        def failing(result):
            raise OSError("disk full")

        board = _LeaseBoard(_dummy_specs(world), failing)
        spec = board.checkout()
        assert not board.deliver(spec, "result")
        assert isinstance(board.error, OSError)
        assert board.done.is_set()       # the coordinator loop exits...
        assert board.checkout() is None  # ...and nothing else is leased


# ----------------------------------------------------------------------
# Connection service: every failure mode requeues the lease
# ----------------------------------------------------------------------

def _serve_against_fake_worker(world, worker_behavior, lease_timeout=5.0,
                               on_abandon=lambda pid: None,
                               heartbeat_interval=None):
    """Run _serve_connection against an in-process fake worker."""
    specs = _dummy_specs(world, 2)
    delivered = []
    board = _LeaseBoard(specs, delivered.append)
    coordinator_sock, worker_sock = socket.socketpair()
    make_lease = lambda spec: {"type": "lease", "index": spec.index}  # noqa: E731
    worker = threading.Thread(target=worker_behavior, args=(worker_sock,),
                              daemon=True)
    worker.start()
    _serve_connection(coordinator_sock, board, make_lease, lease_timeout,
                      on_abandon, heartbeat_interval)
    worker.join(timeout=10)
    return board, delivered


class TestServeConnection:
    def test_worker_eof_requeues_lease(self, world):
        def vanishing_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1})
            read_frame(stream)  # take the lease...
            sock.close()        # ...and die without replying

        board, delivered = _serve_against_fake_worker(world, vanishing_worker)
        assert delivered == []
        assert board.checkout().index == 0  # the lease came back

    def test_lease_timeout_requeues_and_reports_abandoned_pid(self, world):
        abandoned: list[int] = []

        def hung_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 4242})
            read_frame(stream)  # take the lease, never reply
            try:
                read_frame(stream)  # block until the coordinator hangs up
            except (EOFError, OSError):
                pass
            sock.close()

        board, delivered = _serve_against_fake_worker(
            world, hung_worker, lease_timeout=0.3,
            on_abandon=abandoned.append)
        assert delivered == []
        assert board.checkout().index == 0
        # The transport is told which worker to put down: a wedged
        # process must not keep counting as fleet capacity.
        assert abandoned == [4242]

    def test_wrong_index_requeues(self, world):
        def confused_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1})
            read_frame(stream)
            write_frame(stream, {"type": "result", "index": 999,
                                 "shard": {}})
            sock.close()

        board, delivered = _serve_against_fake_worker(world, confused_worker)
        assert delivered == []
        assert board.checkout().index == 0

    def test_structurally_malformed_result_requeues(self, world):
        """A checksummed frame whose shard payload is missing keys (a
        worker running skewed code) must requeue, not kill the serve
        thread with a KeyError."""
        def skewed_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1})
            read_frame(stream)
            write_frame(stream, {"type": "result", "index": 0,
                                 "shard": {"index": 0}})  # no q12/q3
            sock.close()

        board, delivered = _serve_against_fake_worker(world, skewed_worker)
        assert delivered == []
        assert board.checkout().index == 0

    def test_damaged_result_frame_requeues(self, world):
        def noisy_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1})
            read_frame(stream)
            buffer = io.BytesIO()
            write_frame(buffer, {"type": "result", "index": 0,
                                 "shard": {}})
            raw = bytearray(buffer.getvalue())
            raw[-3] ^= 0xFF
            stream.write(bytes(raw))
            stream.flush()
            sock.close()

        board, delivered = _serve_against_fake_worker(world, noisy_worker)
        assert delivered == []
        assert board.checkout().index == 0

    def test_heartbeats_keep_a_slow_worker_leased(self, world):
        """A worker that beats while computing past the missed-
        heartbeat window must NOT be abandoned: heartbeats are exactly
        what distinguishes slow from silent."""
        def slow_beating_worker(sock):
            import time

            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1,
                                 "heartbeats": True})
            while True:
                message = read_frame(stream)
                if message["type"] == "shutdown":
                    sock.close()
                    return
                # Compute for ~6 missed-heartbeat windows, beating.
                for _ in range(12):
                    time.sleep(0.05)
                    write_frame(stream, {"type": "heartbeat",
                                         "index": message["index"]})
                write_frame(stream, {
                    "type": "result", "index": message["index"],
                    "shard": {"index": message["index"], "count": 2,
                              "q12": [], "q3": []},
                    "politeness": {}})

        board, delivered = _serve_against_fake_worker(
            world, slow_beating_worker, lease_timeout=30.0,
            heartbeat_interval=0.1)
        assert len(delivered) == 2
        assert board.done.is_set()

    def test_silent_worker_requeued_within_heartbeat_window(self, world):
        """A worker that takes a lease and goes silent (no beats, no
        result) loses it after the missed-heartbeat window — a small
        multiple of the interval, not the full lease timeout."""
        import time

        abandoned: list[int] = []

        def wedged_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 777,
                                 "heartbeats": True})
            read_frame(stream)  # take the lease, then say nothing
            try:
                read_frame(stream)  # block until the coordinator hangs up
            except (EOFError, OSError):
                pass
            sock.close()

        started = time.monotonic()
        board, delivered = _serve_against_fake_worker(
            world, wedged_worker, lease_timeout=60.0,
            heartbeat_interval=0.1, on_abandon=abandoned.append)
        elapsed = time.monotonic() - started
        assert delivered == []
        assert board.checkout().index == 0  # the lease came back
        assert abandoned == [777]
        assert elapsed < 10.0, (
            f"silent worker held its lease {elapsed:.1f}s — the missed-"
            f"heartbeat window should cut it well under the 60s lease "
            f"timeout")

    def test_legacy_worker_without_capability_keeps_full_timeout(
            self, world):
        """A worker whose hello does not advertise ``heartbeats`` (a
        pre-heartbeat fleet behind the ``worker_command`` hook) must
        keep the full lease timeout per read: a shard computing longer
        than the missed-heartbeat window is NOT abandoned while
        healthy."""
        def legacy_slow_worker(sock):
            import time

            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1})
            while True:
                message = read_frame(stream)
                if message["type"] == "shutdown":
                    sock.close()
                    return
                # Compute well past the 0.3s missed-heartbeat window,
                # silently — legacy workers never beat.
                time.sleep(0.8)
                write_frame(stream, {
                    "type": "result", "index": message["index"],
                    "shard": {"index": message["index"], "count": 2,
                              "q12": [], "q3": []},
                    "politeness": {}})

        board, delivered = _serve_against_fake_worker(
            world, legacy_slow_worker, lease_timeout=30.0,
            heartbeat_interval=0.1)
        assert len(delivered) == 2
        assert board.done.is_set()

    def test_beating_forever_still_bounded_by_lease_timeout(self, world):
        """Heartbeats prove liveness, not progress: a worker that beats
        forever without delivering is still cut off at the lease
        timeout, so the campaign cannot be held hostage by a zombie
        with a working heartbeat thread."""
        import time

        def beating_zombie(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1,
                                 "heartbeats": True})
            message = read_frame(stream)
            try:
                while True:
                    time.sleep(0.1)
                    write_frame(stream, {"type": "heartbeat",
                                         "index": message["index"]})
            except OSError:
                sock.close()

        started = time.monotonic()
        board, delivered = _serve_against_fake_worker(
            world, beating_zombie, lease_timeout=1.0,
            heartbeat_interval=0.1)
        elapsed = time.monotonic() - started
        assert delivered == []
        assert board.checkout().index == 0
        assert 0.9 <= elapsed < 10.0

    def test_idle_worker_gets_shutdown(self, world):
        messages = []

        def polite_worker(sock):
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "pid": 1})
            while True:
                message = read_frame(stream)
                messages.append(message["type"])
                if message["type"] == "shutdown":
                    sock.close()
                    return
                # Echo a structurally valid empty result so the serve
                # loop keeps going without running a real shard.
                write_frame(stream, {
                    "type": "result", "index": message["index"],
                    "shard": {"index": message["index"], "count": 2,
                              "q12": [], "q3": []},
                    "politeness": {}})

        board, delivered = _serve_against_fake_worker(world, polite_worker)
        assert messages == ["lease", "lease", "shutdown"]
        assert len(delivered) == 2
        assert board.done.is_set()


# ----------------------------------------------------------------------
# The reference transport, end to end (subprocess workers)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def serial_reference(world):
    collection, q3 = execute_campaign(
        world, RuntimeConfig(shards=4, backend="serial"), **SUBSET)
    return canonical_logbook_bytes(collection, q3)


@pytest.mark.chaos
class TestDistributedEndToEnd:
    def test_distributed_matches_serial(self, world, serial_reference):
        collection, q3 = execute_campaign(
            world, RuntimeConfig(shards=4, workers=2,
                                 backend="distributed"),
            **SUBSET)
        assert canonical_logbook_bytes(collection, q3) == serial_reference

    def test_distributed_async_workers_match_serial(
            self, world, serial_reference):
        collection, q3 = execute_campaign(
            world, RuntimeConfig(shards=4, workers=2,
                                 backend="distributed", max_inflight=16),
            **SUBSET)
        assert canonical_logbook_bytes(collection, q3) == serial_reference

    def test_distributed_checkpoints_every_frame_on_arrival(
            self, world, tmp_path):
        """Each result frame is checkpointed as it arrives, so a
        coordinator crash right after the campaign loses nothing."""
        shard_dir = str(tmp_path / "ckpt")
        execute_campaign(
            world, RuntimeConfig(shards=4, workers=2,
                                 backend="distributed",
                                 checkpoint_dir=shard_dir),
            **SUBSET)
        fingerprint = campaign_fingerprint(
            world.config, None, SUBSET["isps"], 4,
            states=SUBSET["states"], q3_states=SUBSET["q3_states"])
        store = CheckpointStore(shard_dir, fingerprint)
        assert set(store.load_completed()) == {0, 1, 2, 3}

    def test_on_complete_failure_raises_not_hangs(self, world):
        """A failing checkpoint write mid-campaign surfaces as the
        original error from the coordinator, like the serial backend."""
        config = RuntimeConfig(shards=2, workers=1, backend="distributed")
        specs = plan_shards(world, 2, **SUBSET)

        def failing_on_complete(result):
            raise OSError("disk full")

        with pytest.raises(OSError, match="disk full"):
            run_shards_distributed(world, specs, None, None, 2, config,
                                   1, failing_on_complete)


@pytest.mark.chaos
@pytest.mark.equivalence
class TestWorkerKillChaos:
    """The acceptance scenario: a worker dies mid-campaign, its shards
    are reassigned, and the merged output is still byte-identical."""

    def test_killed_worker_shards_reassigned_output_identical(
            self, world, serial_reference):
        config = RuntimeConfig(shards=4, workers=2, backend="distributed")
        specs = plan_shards(world, 4, **SUBSET)
        completed = {}
        progress = []

        def on_complete(result):
            completed[result.index] = result
            progress.append(result.index)

        # --die-after 0: the first worker dies abruptly (no goodbye
        # frame) the moment its first lease arrives — its leased shard
        # MUST be reassigned or the campaign never finishes.
        run_shards_distributed(
            world, specs, None, None, 2, config,
            config.per_shard_isp_cap_for(len(specs)), on_complete,
            first_worker_extra_args=("--die-after", "0"))
        assert sorted(completed) == [0, 1, 2, 3]
        assert len(progress) == 4  # no duplicate deliveries
        collection, q3 = merge_shard_results(
            world, specs, completed, policy=None, **SUBSET)
        assert canonical_logbook_bytes(collection, q3) == serial_reference

    def test_kill_after_first_shard_and_resume(
            self, world, tmp_path, serial_reference):
        """Kill mid-campaign *after* real work was checkpointed, then
        finish under a fresh coordinator run with --resume semantics:
        nothing recomputed, output identical."""
        shard_dir = str(tmp_path / "ckpt")
        config = RuntimeConfig(shards=4, workers=2, backend="distributed",
                               checkpoint_dir=shard_dir)
        collection, q3 = execute_campaign(world, config, **SUBSET)
        assert canonical_logbook_bytes(collection, q3) == serial_reference
        # Resume from the checkpoints: every shard restores, none runs.
        seen = []
        resumed = RuntimeConfig(shards=4, workers=2, backend="distributed",
                                checkpoint_dir=shard_dir, resume=True)
        collection, q3 = execute_campaign(
            world, resumed,
            on_progress=lambda done, total, r, restored: seen.append(
                (r.index, restored)),
            **SUBSET)
        assert seen == [(0, True), (1, True), (2, True), (3, True)]
        assert canonical_logbook_bytes(collection, q3) == serial_reference

    def test_wedged_worker_requeued_by_heartbeat_window(
            self, world, serial_reference):
        """The heartbeat acceptance scenario: one worker wedges (alive
        but silent — ``--wedge-after 0``) under a *long* lease timeout.
        Before heartbeats its shard sat leased for the full 120s; now
        the missed-heartbeat window requeues it in seconds, the wedged
        process is put down, and the merged output is byte-identical."""
        import time

        config = RuntimeConfig(shards=4, workers=2, backend="distributed")
        specs = plan_shards(world, 4, **SUBSET)
        completed = {}
        started = time.monotonic()
        run_shards_distributed(
            world, specs, None, None, 2, config,
            config.per_shard_isp_cap_for(len(specs)),
            lambda result: completed.__setitem__(result.index, result),
            lease_timeout=120.0,
            heartbeat_interval=0.2,
            first_worker_extra_args=("--wedge-after", "0"))
        elapsed = time.monotonic() - started
        assert sorted(completed) == [0, 1, 2, 3]
        collection, q3 = merge_shard_results(
            world, specs, completed, policy=None, **SUBSET)
        assert canonical_logbook_bytes(collection, q3) == serial_reference
        assert elapsed < 60.0, (
            f"campaign took {elapsed:.1f}s around a wedged worker — the "
            f"missed-heartbeat window should reclaim its shard well "
            f"under the 120s lease timeout")

    def test_wedged_worker_killed_not_waited_on_forever(self, world):
        """A worker that takes a lease and wedges (alive but silent)
        must be put down after the lease timeout so the liveness watch
        sees real capacity — before this fix the coordinator spun
        forever waiting for the zombie to exit."""
        import sys
        import textwrap

        wedge_script = textwrap.dedent("""
            import os, socket, sys, time
            from repro.runtime.distributed import read_frame, write_frame
            address = sys.argv[sys.argv.index("--connect") + 1]
            sock = socket.socket(socket.AF_UNIX)
            sock.connect(address)
            stream = sock.makefile("rwb")
            write_frame(stream, {"type": "hello", "protocol": 1,
                                 "pid": os.getpid()})
            read_frame(stream)   # take the lease...
            time.sleep(3600)     # ...and wedge, alive but silent
        """)
        config = RuntimeConfig(shards=1, workers=1, backend="distributed")
        specs = plan_shards(world, 1, **SUBSET)
        # Every spawned worker wedges and the respawn budget is zero:
        # the only acceptable outcome is a prompt, loud failure.
        with pytest.raises(RuntimeError, match="respawn budget"):
            run_shards_distributed(
                world, specs, None, None, 2, config, 1,
                lambda result: None,
                worker_command=(sys.executable, "-c", wedge_script),
                max_respawns=0,
                lease_timeout=1.0,
            )

    def test_total_fleet_death_raises_after_respawn_budget(self, world):
        """When every worker (including respawns) dies, the campaign
        must fail loudly instead of hanging."""
        import sys

        config = RuntimeConfig(shards=2, workers=1, backend="distributed")
        specs = plan_shards(world, 2, **SUBSET)
        with pytest.raises(RuntimeError, match="respawn budget"):
            run_shards_distributed(
                world, specs, None, None, 2, config, 1,
                lambda result: None,
                # Every spawned worker — respawns included — dies on
                # its first lease.
                worker_command=(sys.executable, "-m", "repro", "worker",
                                "--die-after", "0"),
                max_respawns=1,
                lease_timeout=30.0,
            )


# ----------------------------------------------------------------------
# Autotuning
# ----------------------------------------------------------------------

class TestAutotune:
    def test_generous_target_picks_small_fleet(self, world):
        plan = autotune_runtime_config(world, target_seconds=1e9)
        assert plan.workers == 1
        assert plan.meets_target
        assert plan.shards >= plan.workers
        config = plan.runtime_config()
        assert config.backend == "distributed"
        assert config.workers == 1

    def test_impossible_target_is_politeness_bound(self, world):
        from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP

        plan = autotune_runtime_config(world, target_seconds=1.0)
        assert not plan.meets_target
        assert plan.predicted_seconds > 1.0
        assert plan.workers <= MAX_POLITE_WORKERS_PER_ISP
        assert "politeness-bound" in plan.render()
        # The forecast must price the cap the executor actually grants
        # — floor-divided across workers — so the politeness-bound
        # fleet concurrency is workers * (cap // workers), never the
        # undivided cap when workers does not divide it.
        realized = plan.runtime_config()
        achievable = (realized.per_shard_isp_cap
                      * realized.concurrent_shards)
        assert achievable <= MAX_POLITE_WORKERS_PER_ISP

    def test_tighter_target_never_gets_smaller_fleet(self, world):
        generous = autotune_runtime_config(world, target_seconds=1e9)
        tight = autotune_runtime_config(world, target_seconds=3600.0)
        assert (tight.workers * tight.max_inflight
                >= generous.workers * generous.max_inflight)

    def test_plan_carries_runtime_flags_through(self, world, tmp_path):
        plan = autotune_runtime_config(world, target_seconds=1e9)
        config = plan.runtime_config(checkpoint_dir=str(tmp_path),
                                     resume=True)
        assert config.checkpoint_dir == str(tmp_path)
        assert config.resume

    def test_validation(self, world):
        with pytest.raises(ValueError):
            autotune_runtime_config(world, target_seconds=0.0)
        with pytest.raises(ValueError):
            autotune_runtime_config(world, target_seconds=10.0,
                                    pilot_shards=0)
        with pytest.raises(ValueError):
            autotune_runtime_config(world, target_seconds=10.0,
                                    shard_oversubscription=0)


@pytest.mark.chaos
class TestRespawnBudgetDefault:
    def test_first_worker_dies_fleet_of_one_respawns(self, world):
        """With a single worker that dies once, the default respawn
        budget revives the fleet and the campaign completes."""
        config = RuntimeConfig(shards=2, workers=1, backend="distributed")
        specs = plan_shards(world, 2, **SUBSET)
        completed = {}
        run_shards_distributed(
            world, specs, None, None, 2, config, 1,
            lambda result: completed.__setitem__(result.index, result),
            first_worker_extra_args=("--die-after", "1"))
        assert sorted(completed) == [0, 1]
