"""Tests for the async session engine: repro.bqt.aio + QuerySession.

Covers the resumable session state machine the sync and async drivers
share, the politeness token bucket (including a hypothesis-style
property sweep with ``max_inflight`` above the cap), and the retry /
error-injection paths through :mod:`repro.bqt.errors` under the async
driver.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.addresses.generator import AddressGenerator
from repro.bqt.aio import (
    PolitenessGate,
    query_async,
    run_cells_async,
    run_q12_cell_async,
)
from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.bqt.engine import BqtEngine, EngineConfig
from repro.bqt.errors import ErrorCategory
from repro.bqt.responses import PageKind, QueryStatus, WebsiteResponse
from repro.bqt.websites import build_website
from repro.core.collection import run_q12_cell
from repro.geo.entities import CensusBlock
from repro.geo.geometry import Point
from repro.isp.deployment import GroundTruth, ServiceTruth
from repro.isp.plans import BroadbandPlan
from repro.runtime import plan_shards

SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))


@pytest.fixture
def addresses():
    block = CensusBlock(geoid="060371234561001",
                       centroid=Point(-118.0, 34.0), is_rural=True)
    return AddressGenerator(seed=0).generate_for_block(block, 12, True, "caf")


def build_engine(isp_id, addresses, served=True, seed=0, config=None):
    truth = GroundTruth()
    if served:
        plan = BroadbandPlan("p", 25.0, 2.5, 50.0)
        for address in addresses:
            truth.set_truth(isp_id, address.address_id, ServiceTruth(
                serves=True, plans=(plan,), tier_label=plan.tier_label))
    site = build_website(isp_id, truth, seed=seed)
    return BqtEngine(site, seed=seed, config=config)


def record_key(record):
    return (record.isp_id, record.address_id, record.status, record.plans,
            record.error_category, record.attempts, record.elapsed_seconds)


class FailingWebsite:
    """A storefront whose every page load is a transient error."""

    def __init__(self, isp_id="att", bot_hostility=0.5):
        self.isp_id = isp_id
        self.bot_hostility = bot_hostility
        self.attempts_seen = 0

    def respond(self, address, rng, extra_error_probability=0.0):
        self.attempts_seen += 1
        return WebsiteResponse(page_kind=PageKind.ERROR_PAGE)


class ExplodingWebsite(FailingWebsite):
    """A storefront that crashes the driver (not a page error)."""

    def respond(self, address, rng, extra_error_probability=0.0):
        raise RuntimeError("browser crashed")


class TestQuerySession:
    def test_stepping_matches_blocking_query(self, addresses):
        blocking = build_engine("att", addresses).query_many(addresses)
        stepped = []
        engine = build_engine("att", addresses)
        for address in addresses:
            session = engine.begin(address)
            assert not session.done
            with pytest.raises(RuntimeError):
                _ = session.record
            while not session.done:
                assert session.step() > 0.0
            stepped.append(session.record)
        assert list(map(record_key, blocking)) == \
            list(map(record_key, stepped))

    def test_step_after_done_raises(self, addresses):
        engine = build_engine("att", addresses)
        session = engine.begin(addresses[0])
        while not session.done:
            session.step()
        with pytest.raises(RuntimeError):
            session.step()
        assert session.attempts >= 1
        assert session.elapsed_seconds == session.record.elapsed_seconds

    def test_interleaved_sessions_on_distinct_engines(self, addresses):
        """Round-robin stepping across engines cannot change any
        record — the independence the async driver relies on."""
        sequential = {
            isp: build_engine(isp, addresses).query(addresses[0])
            for isp in ("att", "frontier", "consolidated")
        }
        sessions = {
            isp: build_engine(isp, addresses).begin(addresses[0])
            for isp in ("att", "frontier", "consolidated")
        }
        while any(not s.done for s in sessions.values()):
            for session in sessions.values():  # one step each, round-robin
                if not session.done:
                    session.step()
        for isp, session in sessions.items():
            assert record_key(session.record) == record_key(sequential[isp])

    def test_query_async_equals_sync(self, addresses):
        sync_records = build_engine("frontier", addresses).query_many(addresses)

        async def collect():
            engine = build_engine("frontier", addresses)
            return [await query_async(engine, a) for a in addresses]

        async_records = asyncio.run(collect())
        assert list(map(record_key, sync_records)) == \
            list(map(record_key, async_records))


class TestPolitenessGate:
    def test_validation(self):
        with pytest.raises(ValueError):
            PolitenessGate(0)
        with pytest.raises(ValueError):
            PolitenessGate(MAX_POLITE_WORKERS_PER_ISP + 1)

    def test_trace_off_by_default(self):
        gate = PolitenessGate(2)

        async def main():
            async with gate.session("att"):
                pass

        asyncio.run(main())
        assert gate.trace == []  # not recorded unless opted in
        assert gate.watermarks == {"att": 1}  # watermarks always kept

    def test_watermarks_and_trace_balance(self):
        gate = PolitenessGate(3, record_trace=True)

        async def hold(isp):
            async with gate.session(isp):
                await asyncio.sleep(0)

        async def main():
            await asyncio.gather(*[hold("att") for _ in range(10)],
                                 *[hold("frontier") for _ in range(4)])

        asyncio.run(main())
        assert gate.watermarks["att"] <= 3
        assert gate.watermarks["frontier"] <= 3
        events = gate.trace
        acquires = [e for e in events if e[0] == "acquire"]
        releases = [e for e in events if e[0] == "release"]
        assert len(acquires) == len(releases) == 14
        assert all(1 <= inflight <= 3 for kind, _, inflight in acquires)

    def test_released_on_exception(self):
        gate = PolitenessGate(1, record_trace=True)

        async def crash():
            async with gate.session("att"):
                raise RuntimeError("boom")

        async def main():
            with pytest.raises(RuntimeError):
                await crash()
            # The token must be back: a second session may enter.
            async with gate.session("att"):
                pass

        asyncio.run(main())
        assert gate.trace[-1][2] == 0  # final release left zero in flight


class TestPolitenessProperty:
    """The acceptance property: with max_inflight > cap, the per-ISP
    in-flight watermark never exceeds the politeness budget."""

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        per_isp_cap=st.integers(1, MAX_POLITE_WORKERS_PER_ISP),
        extra_inflight=st.integers(1, 3 * MAX_POLITE_WORKERS_PER_ISP),
        cell_count=st.integers(4, 12),
    )
    def test_watermark_never_exceeds_budget(
            self, world, per_isp_cap, extra_inflight, cell_count):
        spec = plan_shards(world, 1, **SUBSET)[0]
        max_inflight = per_isp_cap + extra_inflight  # strictly above cap
        _q12, _q3, watermarks = asyncio.run(run_cells_async(
            world, spec.q12_cells[:cell_count], spec.q3_blocks[:2],
            max_inflight=max_inflight, per_isp_cap=per_isp_cap,
        ))
        assert watermarks
        for isp, peak in watermarks.items():
            assert 1 <= peak <= per_isp_cap, (isp, peak, per_isp_cap)


class TestRetryAndErrorInjection:
    def test_always_failing_site_exhausts_retries_with_category(
            self, addresses):
        config = EngineConfig(max_attempts=3, retry_backoff_seconds=7.0)
        site = FailingWebsite("att")
        engine = BqtEngine(site, seed=0, config=config)
        record = asyncio.run(query_async(engine, addresses[0]))
        assert record.status is QueryStatus.UNKNOWN
        assert record.attempts == 3
        assert site.attempts_seen == 3
        # ERROR_PAGE attributions come from the Table 2 mix, minus the
        # categories that carry their own page kinds.
        assert record.error_category in (ErrorCategory.EMPTY_TRACEBACK,
                                         ErrorCategory.CLICKING_BUTTON,
                                         ErrorCategory.OTHER)
        # Back-off is charged per failed attempt (timeout accounting).
        assert record.elapsed_seconds > 3 * config.retry_backoff_seconds

    def test_retry_path_identical_sync_vs_async(self, addresses):
        config = EngineConfig(max_attempts=3, retry_backoff_seconds=5.0)
        sync_record = BqtEngine(FailingWebsite("frontier"), seed=3,
                                config=config).query(addresses[0])
        async_record = asyncio.run(query_async(
            BqtEngine(FailingWebsite("frontier"), seed=3, config=config),
            addresses[0]))
        assert record_key(sync_record) == record_key(async_record)
        assert sync_record.status is QueryStatus.UNKNOWN

    def test_rotation_on_retries(self, addresses):
        engine = BqtEngine(FailingWebsite("att"), seed=0,
                           config=EngineConfig(max_attempts=4))
        asyncio.run(query_async(engine, addresses[0]))
        assert engine.proxy_pool.rotations == 4

    def test_driver_crash_propagates_from_event_loop(self, world):
        """A mid-session crash must surface, not hang the loop or leak
        the gate."""
        spec = plan_shards(world, 1, **SUBSET)[0]
        cell = spec.q12_cells[0]
        broken = dict(world.websites)
        broken[cell.isp_id] = ExplodingWebsite(cell.isp_id)
        import dataclasses

        broken_world = dataclasses.replace(world, websites=broken)
        with pytest.raises(Exception) as excinfo:
            asyncio.run(run_cells_async(
                broken_world, [cell], [], max_inflight=4))
        group = excinfo.value
        assert isinstance(group, BaseExceptionGroup)
        assert any(isinstance(e, RuntimeError) for e in group.exceptions)

    def test_validation(self, world):
        with pytest.raises(ValueError):
            asyncio.run(run_cells_async(world, [], [], max_inflight=0))
        with pytest.raises(ValueError):
            asyncio.run(run_q12_cell_async(
                world, "att", "cbg", [], max_replacements=-1))

    def test_politeness_watermark_is_falsifiable(self, world):
        """The evidence is measured at the query layer, not read back
        from the gate: with a single loop slot no two sessions are ever
        stepping at once, and the watermark must say so — a gate-side
        counter (which also counts slot-queued token holders) would
        not."""
        spec = plan_shards(world, 1, **SUBSET)[0]
        _q12, _q3, watermarks = asyncio.run(run_cells_async(
            world, spec.q12_cells[:6], [], max_inflight=1, per_isp_cap=8))
        assert max(watermarks.values()) == 1

    def test_cable_overlap_isp_as_storefront_rejected(self, world):
        """A cable-overlap ISP doubling as a Q1/Q2 storefront would
        invert the gate->slot lock order; it must be an explicit error,
        not a latent deadlock."""
        spec = plan_shards(world, 1, **SUBSET)[0]
        cabled = [b for b in spec.q3_blocks
                  if world.block_competition[b].cable_isp_id]
        assert cabled, "subset needs at least one cable-overlap block"
        cable_isp = world.block_competition[cabled[0]].cable_isp_id
        import dataclasses

        fake_cell = dataclasses.replace(spec.q12_cells[0], isp_id=cable_isp)
        with pytest.raises(ValueError, match="cable overlap"):
            asyncio.run(run_cells_async(
                world, [fake_cell], [cabled[0]], max_inflight=4))


class TestAsyncCellEquivalence:
    def test_q12_cell_async_equals_sync(self, world):
        spec = plan_shards(world, 1, **SUBSET)[0]
        cell = spec.q12_cells[0]
        grouped = world.caf_addresses_by_cbg(cell.isp_id, cell.state)
        plan_sync, sync_records = run_q12_cell(
            world, cell.isp_id, cell.cbg, grouped[cell.cbg])
        plan_async, async_records = asyncio.run(run_q12_cell_async(
            world, cell.isp_id, cell.cbg, grouped[cell.cbg]))
        assert plan_sync == plan_async
        assert list(map(record_key, sync_records)) == \
            list(map(record_key, async_records))
