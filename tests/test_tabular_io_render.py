"""Unit tests for repro.tabular.tableio and repro.tabular.render."""

import pytest

from repro.tabular import (
    Table,
    read_csv,
    read_jsonl,
    render_table,
    write_csv,
    write_jsonl,
)


@pytest.fixture
def sample() -> Table:
    return Table({
        "isp": ["att", "frontier"],
        "speed": [10.5, 25.0],
        "count": [3, 7],
        "served": [True, False],
    })


class TestCsvRoundTrip:
    def test_round_trip_preserves_values(self, sample: Table, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(sample, path)
        assert read_csv(path) == sample

    def test_type_inference(self, sample: Table, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(sample, path)
        loaded = read_csv(path)
        assert loaded["count"].dtype.kind == "i"
        assert loaded["speed"].dtype.kind == "f"
        assert loaded["served"].dtype.kind == "b"
        assert loaded["isp"].dtype.kind == "O"

    def test_creates_parent_directories(self, sample: Table, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.csv"
        write_csv(sample, path)
        assert path.exists()

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)

    def test_ragged_row_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match=":3"):
            read_csv(path)

    def test_empty_table_round_trip(self, tmp_path):
        table = Table({"a": [], "b": []})
        path = tmp_path / "empty_table.csv"
        write_csv(table, path)
        assert read_csv(path).column_names == ("a", "b")


class TestJsonlRoundTrip:
    def test_round_trip(self, sample: Table, tmp_path):
        path = tmp_path / "out.jsonl"
        write_jsonl(sample, path)
        assert read_jsonl(path) == sample

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert len(read_jsonl(path)) == 2

    def test_invalid_json_raises_with_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            read_jsonl(path)


class TestRender:
    def test_contains_headers_and_values(self, sample: Table):
        text = render_table(sample)
        assert "isp" in text
        assert "frontier" in text
        assert "10.50" in text

    def test_title_rendered(self, sample: Table):
        assert render_table(sample, title="My Table").startswith("My Table")

    def test_max_rows_truncates(self, sample: Table):
        text = render_table(sample, max_rows=1)
        assert "1 more rows" in text
        assert "frontier" not in text

    def test_booleans_rendered_as_yes_no(self, sample: Table):
        text = render_table(sample)
        assert "yes" in text
        assert "no" in text

    def test_nan_rendered_as_dash(self):
        table = Table({"x": [float("nan")]})
        assert "-" in render_table(table)

    def test_integers_have_thousand_separators(self):
        table = Table({"n": [1_234_567]})
        assert "1,234,567" in render_table(table)

class TestCsvTypeInferenceGuards:
    def test_leading_zero_fips_codes_stay_strings(self, tmp_path):
        """Regression: "01001" (an Alabama county FIPS) used to parse
        as the int 1001, corrupting every geo join key on a CSV round
        trip."""
        table = Table({"fips": ["01001", "06037", "48201"]})
        path = tmp_path / "fips.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert list(back["fips"]) == ["01001", "06037", "48201"]
        assert back == table

    def test_leading_zero_blocks_float_parse_too(self, tmp_path):
        path = tmp_path / "codes.csv"
        path.write_text("cbg\n010010201002\n0.5\n", encoding="utf-8")
        assert list(read_csv(path)["cbg"]) == ["010010201002", "0.5"]

    def test_plain_zero_values_still_numeric(self, tmp_path):
        path = tmp_path / "zeros.csv"
        path.write_text("a,b,c\n0,0.5,0e5\n10,-0.25,1e2\n",
                        encoding="utf-8")
        table = read_csv(path)
        assert list(table["a"]) == [0, 10]
        assert list(table["b"]) == [0.5, -0.25]
        assert list(table["c"]) == [0.0, 100.0]

    def test_negative_leading_zero_stays_string(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("a\n-01\n-02\n", encoding="utf-8")
        assert list(read_csv(path)["a"]) == ["-01", "-02"]


class TestEmptyTableRoundTrips:
    def test_empty_jsonl_round_trip_preserves_schema(self, tmp_path):
        table = Table({"isp": [], "speed": []})
        path = tmp_path / "empty.jsonl"
        write_jsonl(table, path)
        back = read_jsonl(path)
        assert back.column_names == ("isp", "speed")
        assert len(back) == 0

    def test_nonempty_jsonl_has_no_schema_marker(self, sample, tmp_path):
        path = tmp_path / "rows.jsonl"
        write_jsonl(sample, path)
        assert "__tabular_schema__" not in path.read_text("utf-8")
        assert read_jsonl(path) == sample


class TestAtomicPublish:
    """A writer killed (or failing) mid-write never tears the table on
    disk: the previous bytes survive intact (satellite of ISSUE 8)."""

    def test_kill_during_csv_publish_preserves_old_table(self, tmp_path):
        import os
        import subprocess
        import sys

        target = tmp_path / "table.csv"
        original = Table({"a": [1, 2], "b": ["x", "y"]})
        write_csv(original, target)
        before = target.read_bytes()

        # The subprocess dies inside atomicio's fsync — after the tmp
        # file is fully written, before the rename can publish it.
        script = (
            "import os, sys\n"
            "from pathlib import Path\n"
            "import repro.runtime.atomicio as atomicio\n"
            "from repro.tabular import Table, write_csv\n"
            "atomicio.os.fsync = lambda fd: os._exit(9)\n"
            "write_csv(Table({'a': [9, 9, 9], 'b': ['q', 'q', 'q']}),\n"
            "          Path(sys.argv[1]))\n"
            "os._exit(0)\n"
        )
        src = os.fspath(
            __import__("pathlib").Path(__file__).resolve().parent.parent
            / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run([sys.executable, "-c", script,
                               os.fspath(target)], env=env)
        assert proc.returncode == 9
        assert target.read_bytes() == before
        assert read_csv(target) == original

    def test_failed_csv_publish_preserves_old_table(self, tmp_path,
                                                    monkeypatch):
        import repro.runtime.atomicio as atomicio

        target = tmp_path / "table.csv"
        original = Table({"a": [1, 2]})
        write_csv(original, target)
        before = target.read_bytes()

        def boom(fd):
            raise OSError("injected fsync failure")

        monkeypatch.setattr(atomicio.os, "fsync", boom)
        with pytest.raises(OSError):
            write_csv(Table({"a": [3, 4, 5]}), target)
        assert target.read_bytes() == before

    def test_failed_jsonl_publish_preserves_old_table(self, tmp_path,
                                                      monkeypatch):
        import repro.runtime.atomicio as atomicio

        target = tmp_path / "table.jsonl"
        original = Table({"a": [1, 2]})
        write_jsonl(original, target)
        before = target.read_bytes()

        def boom(fd):
            raise OSError("injected fsync failure")

        monkeypatch.setattr(atomicio.os, "fsync", boom)
        with pytest.raises(OSError):
            write_jsonl(Table({"a": [3, 4, 5]}), target)
        assert target.read_bytes() == before
