"""OBS501 positive: a span constructed but never entered.

The record is silently dropped — the span only publishes when its
``with`` block exits.
"""

from repro.obs.trace import span


def leak_a_span() -> None:
    span("campaign.dispatch", shards=4)
