"""DET101 positive: ambient randomness, four ways."""
import random

import numpy as np


def sample():
    rng = random.Random()
    gen = np.random.default_rng()
    jitter = random.random()
    legacy = np.random.rand(3)
    return rng, gen, jitter, legacy
