"""DET101 negative: every RNG is explicitly seeded."""
import random

import numpy as np


def sample(seed: int):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random() + float(gen.random())
