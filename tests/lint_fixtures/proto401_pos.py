"""PROTO401 positive: encoders with no decoders."""


def _frame_to_json(frame):
    return {"kind": frame.kind}


class Event:
    def to_json(self):
        return {"name": self.name}
