"""DUR202 positive: an acked append with no fsync.

(The filename carries the ``journal`` path token the rule scopes to.)
"""


def append_entry(handle, payload: bytes) -> None:
    handle.write(payload)
    handle.flush()
