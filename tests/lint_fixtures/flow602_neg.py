"""FLOW602 negative: the generator is seeded from the caller's spec,
so the digest is reproducible and the taint never starts."""

import hashlib
import random


def draw(seed):
    return random.Random(seed).random()


def fingerprint(seed):
    return hashlib.sha256(str(draw(seed)).encode("utf-8")).hexdigest()
