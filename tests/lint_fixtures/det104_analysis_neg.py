"""DET104 negative: summation order pinned by sorting first."""


def total(values):
    return sum(sorted(set(values)))
