"""CONC301 negative: every cross-thread write holds the lock."""
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def start(self):
        thread = threading.Thread(target=self._run)
        thread.start()
        thread.join()

    def _run(self):
        with self._lock:
            self._count += 1

    def reset(self):
        with self._lock:
            self._count = 0
