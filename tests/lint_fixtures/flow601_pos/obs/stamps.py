"""Helper module: wraps the wall clock (allowlisted here in obs/)."""

import time


def fresh_stamp():
    return time.time()
