"""FLOW601 positive: the clock hides one module away.

DET103 cannot fire — ``time.time()`` lives in an allowlisted obs/
helper — but the value still lands in a frame, and the call-graph
taint sees it cross the boundary.
"""

from obs.stamps import fresh_stamp

WIRE_VERSION = 1


def publish(stream, write_frame):
    stamp = fresh_stamp()
    write_frame(stream, {"stamp": stamp, "v": WIRE_VERSION})
