"""CONC304 positive: two classes acquire each other's locks in
opposite orders through the call graph.

``Journal.append`` holds the journal lock and calls into the
notifier (which takes its own lock); ``Notifier.drain`` holds the
notifier lock and calls back into the journal. Thread A in one and
thread B in the other deadlock.
"""

import threading


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self._owner = Notifier()
        self.entries = []

    def append(self, entry):
        with self._lock:
            self.entries.append(entry)
            self._owner.wake(entry)


class Notifier:
    def __init__(self):
        self._wake_lock = threading.Lock()
        self._journal = Journal()
        self.pending = None

    def wake(self, entry):
        with self._wake_lock:
            self.pending = entry

    def drain(self):
        with self._wake_lock:
            self._journal.append(self.pending)
