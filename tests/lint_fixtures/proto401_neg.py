"""PROTO401 negative: every codec half has its inverse."""


def _frame_to_json(frame):
    return {"kind": frame.kind}


def _frame_from_json(data):
    return data["kind"]


class Event:
    def __init__(self, name):
        self.name = name

    def to_json(self):
        return {"name": self.name}

    @classmethod
    def from_json(cls, data):
        return cls(data["name"])
