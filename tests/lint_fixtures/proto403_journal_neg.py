"""PROTO403 negative: canonical (sorted-keys) JSON."""
import json


def encode(payload) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
