"""CONC303 positive: one method locks the write, another doesn't.

CONC301 stays silent here — the thread target never writes the
attribute — but the class-level view sees ``add`` treat ``_items`` as
shared (it takes the lock) while ``clear`` mutates it bare.
"""

import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._worker = threading.Thread(target=self._run)

    def _run(self):
        while self._items:
            pass

    def add(self, item):
        with self._lock:
            self._items = self._items + [item]

    def clear(self):
        self._items = []
