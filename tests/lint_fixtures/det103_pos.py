"""DET103 positive: wall-clock reads."""
import time
from datetime import datetime


def stamp():
    return time.time(), datetime.now()
