"""DET103 negative: monotonic clocks are fine for pacing."""
import time


def pace(started: float) -> float:
    return time.monotonic() - started
