"""FLOW602 positive: an unseeded draw reaches a digest via a helper.

The draw itself is suppressed (so only the *flow* rule speaks), which
also exercises suppression-use tracking: the disable below matches a
DET101 finding every scan, so LINT001 stays quiet.
"""

import hashlib
import random


def draw():
    return random.random()  # repro-lint: disable=DET101


def fingerprint():
    return hashlib.sha256(str(draw()).encode("utf-8")).hexdigest()
