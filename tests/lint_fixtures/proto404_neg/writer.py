"""PROTO404 negative (writer side): every key written is decoded by
the reader module."""

WIRE_VERSION = 2


def send(stream, write_frame, payload):
    write_frame(stream, {"type": "blob", "version": WIRE_VERSION,
                         "payload": payload})
