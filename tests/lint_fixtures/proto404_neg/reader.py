"""PROTO404 negative (reader side): reads exactly what the writer
writes, version-checked."""

WIRE_VERSION = 2


def receive(stream, read_frame):
    frame = read_frame(stream)
    if frame.get("version") != WIRE_VERSION:
        raise ValueError("protocol skew")
    if frame.get("type") != "blob":
        return None
    return frame.get("payload")
