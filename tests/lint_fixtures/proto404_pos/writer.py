"""PROTO404 positive (writer side): ``orphan_key`` goes on the wire
and no scanned module ever looks at it."""

WIRE_VERSION = 2


def send(stream, write_frame, payload):
    write_frame(stream, {"type": "blob", "version": WIRE_VERSION,
                         "payload": payload, "orphan_key": 1})
