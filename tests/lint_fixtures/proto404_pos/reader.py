"""PROTO404 positive (reader side): decodes everything but the
orphan — which is exactly the point."""

WIRE_VERSION = 2


def receive(stream, read_frame):
    frame = read_frame(stream)
    if frame.get("version") != WIRE_VERSION:
        raise ValueError("protocol skew")
    if frame.get("type") != "blob":
        return None
    return frame.get("payload")
