"""DET102 positive: hash-ordered iteration escapes into a list."""


def merged(a, b):
    out = []
    for item in set(a) | set(b):
        out.append(item)
    return out


def materialized(a):
    return list({x for x in a})
