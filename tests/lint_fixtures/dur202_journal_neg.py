"""DUR202 negative: write, flush, fsync — then ack."""
import os


def append_entry(handle, payload: bytes) -> None:
    handle.write(payload)
    handle.flush()
    os.fsync(handle.fileno())
