"""PROTO402 positive: emits frames, never mentions a version."""


def send(stream, write_frame, message):
    write_frame(stream, message)
