"""PROTO402 negative: every frame carries the protocol version."""

PROTOCOL_VERSION = 3


def send(stream, write_frame, message):
    write_frame(stream, dict(message, protocol=PROTOCOL_VERSION))
