"""PROTO402 negative: every frame carries the protocol version."""

PROTOCOL_VERSION = 3


def send(stream, write_frame, message):
    write_frame(stream, dict(message, protocol=PROTOCOL_VERSION))


def receive(stream, read_frame):
    frame = read_frame(stream)
    if frame.get("protocol") != PROTOCOL_VERSION:
        raise ValueError("protocol skew")
    return frame
