"""Helper module: consults the clock but never *returns* it — the
poll counter is deterministic given the same call sequence."""

import time


def poll_count(counter):
    if time.time() > 0:
        counter["polls"] += 1
    return counter["polls"]
