"""FLOW601 negative: the helper touches the clock for control flow
only; its return value is pure, so no taint reaches the frame."""

from obs.stamps import poll_count

WIRE_VERSION = 1


def publish(stream, write_frame, counter):
    polls = poll_count(counter)
    write_frame(stream, {"polls": polls, "v": WIRE_VERSION})
