"""DUR201 positive: truncating writes in a store module.

(The filename carries the ``store`` path token the rule scopes to.)
"""
import json


def save(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def save_note(path, text):
    path.write_text(text, encoding="utf-8")
