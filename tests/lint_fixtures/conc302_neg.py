"""CONC302 negative: the daemon thread is registered for joining."""
import threading


def spawn(worker, registry):
    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    registry.append(thread)
    return thread
