"""CONC301 positive: a counter written by the thread target and by
a public method, neither holding the lock."""
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def start(self):
        thread = threading.Thread(target=self._run)
        thread.start()
        thread.join()

    def _run(self):
        self._count += 1

    def reset(self):
        self._count = 0
