"""CONC302 positive: a daemon thread nobody can join."""
import threading


def spawn(worker):
    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
