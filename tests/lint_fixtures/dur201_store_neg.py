"""DUR201 negative: publishes through the atomic helpers."""
from repro.runtime.atomicio import atomic_write_json, atomic_write_text


def save(path, payload):
    atomic_write_json(path, payload)


def save_note(path, text):
    atomic_write_text(path, text)


def load(path):
    # Reads never torn-write; read mode is not flagged.
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
