"""CONC304 negative: the notifier finishes with its own lock before
calling into the journal, so every thread acquires journal-then-wake
in the same global order."""

import threading


class Journal:
    def __init__(self):
        self._lock = threading.Lock()
        self._owner = Notifier()
        self.entries = []

    def append(self, entry):
        with self._lock:
            self.entries.append(entry)
            self._owner.wake(entry)


class Notifier:
    def __init__(self):
        self._wake_lock = threading.Lock()
        self._journal = Journal()
        self.pending = None

    def wake(self, entry):
        with self._wake_lock:
            self.pending = entry

    def drain(self):
        with self._wake_lock:
            entry = self.pending
        self._journal.append(entry)
