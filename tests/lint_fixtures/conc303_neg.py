"""CONC303 negative: every write to the shared attribute holds the
same lock, whichever method performs it."""

import threading


class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []
        self._worker = threading.Thread(target=self._run)

    def _run(self):
        while self._items:
            pass

    def add(self, item):
        with self._lock:
            self._items = self._items + [item]

    def clear(self):
        with self._lock:
            self._items = []
