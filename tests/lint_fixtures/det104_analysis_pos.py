"""DET104 positive: float sum over a hash-ordered operand.

(The filename carries the ``analysis`` path token the rule scopes to.)
"""


def total(values):
    return sum(set(values))
