"""PROTO403 positive: non-canonical JSON in a protocol module.

(The filename carries the ``journal`` path token the rule scopes to.)
"""
import json


def encode(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")
