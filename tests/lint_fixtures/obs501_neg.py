"""OBS501 negative: every span is entered with ``with``."""

from repro.obs.trace import span


def traced_dispatch() -> None:
    with span("campaign.dispatch", shards=4):
        with span("campaign.merge") as merge_span:
            assert merge_span is not None
