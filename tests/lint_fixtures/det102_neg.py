"""DET102 negative: the union is sorted before iteration."""


def merged(a, b):
    out = []
    for item in sorted(set(a) | set(b)):
        out.append(item)
    return out


def membership(a, b):
    # Sets used as sets (membership, not iteration) are fine.
    return set(a) <= set(b)
