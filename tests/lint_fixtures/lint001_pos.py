"""LINT001 positive: a suppression that excuses nothing."""


def compute():
    return 1  # repro-lint: disable=DET103
