"""LINT001 negative: the suppression earns its keep every scan."""

import time


def stamp():
    return time.time()  # repro-lint: disable=DET103
