"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == "tiny"
        assert args.seed == 0

    def test_experiment_ids(self):
        args = build_parser().parse_args(["experiment", "figure1", "table2"])
        assert args.ids == ["figure1", "table2"]

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "headline" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_tiny(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Serviceability rate" in out
        assert "paper: 55.45%" in out

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_run_sharded_matches_sequential(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "--scale", "tiny", "--shards", "3"]) == 0
        assert capsys.readouterr().out == sequential

    def test_run_bad_runtime_flags_exit_2(self, capsys):
        assert main(["run", "--resume"]) == 2
        assert "checkpoint_dir" in capsys.readouterr().err
        assert main(["run", "--shards", "-1"]) == 2
        assert "shards must be positive" in capsys.readouterr().err
        assert main(["run", "--workers", "0"]) == 2
        assert "workers must be positive" in capsys.readouterr().err

    def test_run_with_cache_and_checkpoints(self, tmp_path, capsys):
        args = ["run", "--scale", "tiny", "--shards", "2",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        first = capsys.readouterr().out
        # Checkpoints are namespaced per campaign fingerprint.
        assert list((tmp_path / "ckpt").glob("*/shard-*.json"))
        assert list((tmp_path / "cache").glob("*.pkl"))
        # Second run is a cache hit with identical output.
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path), "--scale",
                     "tiny"]) == 0
        for name in ("audit.csv", "query_log.csv", "q3_query_log.csv",
                     "q3_blocks.csv", "caf_map.csv", "table1.csv",
                     "manifest.json"):
            assert (tmp_path / name).exists(), name

    def test_experiment_with_plot(self, capsys):
        assert main(["experiment", "figure6", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "CDFs" in out
        assert "log10(x)" in out

    def test_campaign(self, capsys):
        assert main(["campaign"]) == 0
        out = capsys.readouterr().out
        assert "months" in out
        assert "bottleneck" in out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

    def test_validate(self, capsys):
        assert main(["validate", "--scale", "tiny"]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_oversight(self, capsys):
        assert main(["oversight", "--isp", "frontier"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "detection power" in out


class TestAsyncBackendFlags:
    def test_parser_accepts_async_backends(self):
        args = build_parser().parse_args(
            ["run", "--backend", "process+async", "--max-inflight", "12"])
        assert args.backend == "process+async"
        assert args.max_inflight == 12
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "threads"])

    def test_run_async_matches_sequential(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "--scale", "tiny", "--shards", "3",
                     "--backend", "async", "--max-inflight", "16"]) == 0
        assert capsys.readouterr().out == sequential

    def test_bad_max_inflight_exits_2(self, capsys):
        assert main(["run", "--max-inflight", "0"]) == 2
        assert "max_inflight must be positive" in capsys.readouterr().err

    def test_shard_progress_lines_on_stderr(self, capsys):
        assert main(["run", "--scale", "tiny", "--shards", "3",
                     "--backend", "async"]) == 0
        err = capsys.readouterr().err
        lines = [l for l in err.splitlines() if l.startswith("[shard ")]
        assert len(lines) == 3
        assert "3/3 shards" in lines[-1]
        assert "ETA" in lines[0]

    def test_progress_printer_eta_math(self):
        from io import StringIO

        from repro.cli import _shard_progress_printer
        from repro.runtime import ShardResult

        stream = StringIO()
        on_progress = _shard_progress_printer(stream)
        on_progress(1, 4, ShardResult(index=2, count=4))
        on_progress(2, 4, ShardResult(index=0, count=4))
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[shard 2] done")
        assert "1/4 shards" in lines[0]
        assert "2/4 shards" in lines[1]

    def test_progress_printer_excludes_restored_from_rate(self):
        """The resumed-ETA bug this PR fixes: restored checkpoints
        arrive in microseconds and must not contribute near-zero
        intervals to the ETA rate."""
        from io import StringIO

        from repro.cli import _shard_progress_printer
        from repro.runtime import ShardResult

        stream = StringIO()
        on_progress = _shard_progress_printer(stream)
        # Three shards restore instantly, then the first executed
        # shard completes.
        for position, index in enumerate((0, 1, 2), start=1):
            on_progress(position, 5, ShardResult(index=index, count=5),
                        True)
        cells = {"VT|consolidated": (), "NH|consolidated": ()}
        on_progress(4, 5, ShardResult(index=3, count=5,
                                      q12_records=dict(cells)), False)
        lines = stream.getvalue().splitlines()
        assert all("restored from checkpoint" in line
                   for line in lines[:3])
        assert all("ETA" not in line for line in lines[:3])
        # One executed shard = no interval observed yet: the rate must
        # be unknown, not the absurd restored-shard rate.
        assert "ETA pending" in lines[3]
        # A second executed completion starts the real cell rate.
        on_progress(5, 5, ShardResult(index=4, count=5,
                                      q12_records=dict(cells)), False)
        assert "ETA 0.0s" in stream.getvalue().splitlines()[4]

    def test_max_inflight_promotes_auto_to_async(self, capsys):
        """An explicit --max-inflight must not be silently ignored:
        auto promotes to an async backend; an explicit serial backend
        is a rejected contradiction."""
        assert main(["run", "--scale", "tiny", "--shards", "2",
                     "--max-inflight", "4"]) == 0
        err = capsys.readouterr().err
        assert err.count("[shard ") == 2  # sharded progress ran
        assert main(["run", "--scale", "tiny", "--shards", "2",
                     "--backend", "serial", "--max-inflight", "4"]) == 2
        assert "max_inflight requires an async backend" in \
            capsys.readouterr().err

    def test_explicit_default_max_inflight_still_promotes(self, capsys):
        """--max-inflight 8 (the documented default, given explicitly)
        must behave like any other explicit value, not like an absent
        flag."""
        assert main(["run", "--scale", "tiny", "--shards", "2",
                     "--max-inflight", "8"]) == 0
        err = capsys.readouterr().err
        assert "no effect" not in err
        assert err.count("[shard ") == 2

    def test_async_with_workers_composes_to_process_async(self, capsys):
        """--backend async --workers N>1 must not silently drop the
        parallelism; it runs the composed process+async backend."""
        assert main(["run", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "--scale", "tiny", "--shards", "2",
                     "--workers", "2", "--backend", "async"]) == 0
        captured = capsys.readouterr()
        assert captured.out == sequential
        assert captured.err.count("[shard ") == 2

    def test_resume_prints_restored_lines(self, tmp_path, capsys):
        shard_dir = str(tmp_path / "ckpt")
        assert main(["run", "--scale", "tiny", "--shards", "3",
                     "--checkpoint-dir", shard_dir]) == 0
        first = capsys.readouterr()
        assert first.err.count("[shard ") == 3
        assert "restored" not in first.err
        assert main(["run", "--scale", "tiny", "--shards", "3",
                     "--checkpoint-dir", shard_dir, "--resume"]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert second.err.count("restored from checkpoint") == 3
        # Restored shards carry no ETA estimate at all.
        restored_lines = [line for line in second.err.splitlines()
                          if "restored" in line]
        assert all("ETA" not in line for line in restored_lines)

    def test_malformed_cache_max_bytes_exits_2(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1G")
        assert main(["run", "--scale", "tiny",
                     "--cache-dir", str(tmp_path)]) == 2
        assert "REPRO_CACHE_MAX_BYTES" in capsys.readouterr().err

    def test_list_ignores_malformed_cache_bound_without_cache(
            self, capsys, monkeypatch):
        """Commands that construct no cache must not trip over an env
        var they never read."""
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1G")
        assert main(["list"]) == 0
        assert "figure1" in capsys.readouterr().out


class TestDistributedBackendFlags:
    def test_parser_accepts_distributed(self):
        args = build_parser().parse_args(
            ["run", "--backend", "distributed", "--workers", "2"])
        assert args.backend == "distributed"
        args = build_parser().parse_args(
            ["run", "--target-seconds", "3600"])
        assert args.target_seconds == 3600.0

    def test_worker_parser(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "/tmp/coord.sock",
             "--die-after", "2", "--wedge-after", "1"])
        assert args.connect == "/tmp/coord.sock"
        assert args.die_after == 2
        assert args.wedge_after == 1
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])  # --connect required

    def test_worker_bad_address_exits_nonzero(self, tmp_path, capsys):
        missing = str(tmp_path / "nope" / "coord.sock")
        assert main(["worker", "--connect", missing]) == 1
        assert "caf-audit worker:" in capsys.readouterr().err
        assert main(["worker", "--connect", missing,
                     "--die-after", "-1"]) == 2
        assert "--die-after" in capsys.readouterr().err
        assert main(["worker", "--connect", missing,
                     "--wedge-after", "-1"]) == 2
        assert "--wedge-after" in capsys.readouterr().err

    def test_target_seconds_validation(self, capsys):
        assert main(["run", "--scale", "tiny",
                     "--target-seconds", "-5"]) == 2
        assert "must be positive" in capsys.readouterr().err
        assert main(["run", "--scale", "tiny", "--backend", "serial",
                     "--target-seconds", "60"]) == 2
        assert "distributed" in capsys.readouterr().err

    def test_lease_timeout_requires_distributed(self, capsys):
        assert main(["run", "--scale", "tiny", "--shards", "2",
                     "--lease-timeout", "60"]) == 2
        assert "lease_timeout requires the distributed backend" in \
            capsys.readouterr().err

    def test_target_seconds_warm_cache_skips_autotune(
            self, tmp_path, capsys, monkeypatch):
        """A warm cache must short-circuit before the pilot shard and
        world build, not after."""
        cache_dir = str(tmp_path / "cache")
        assert main(["run", "--scale", "tiny", "--shards", "2",
                     "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out

        import repro.synth.world as world_module

        def forbidden(*args, **kwargs):
            raise AssertionError("world rebuilt despite cached audit")

        monkeypatch.setattr(world_module, "build_world", forbidden)
        assert main(["run", "--scale", "tiny", "--cache-dir", cache_dir,
                     "--target-seconds", "1e9"]) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        assert "autotuning skipped" in captured.err

    @pytest.mark.chaos
    def test_run_distributed_matches_sequential(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "--scale", "tiny", "--shards", "3",
                     "--workers", "2", "--backend", "distributed"]) == 0
        captured = capsys.readouterr()
        assert captured.out == sequential
        assert captured.err.count("[shard ") == 3

    @pytest.mark.chaos
    def test_run_autotuned_target_seconds(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "--scale", "tiny",
                     "--target-seconds", "1e9"]) == 0
        captured = capsys.readouterr()
        assert captured.out == sequential
        assert "autotuned fleet:" in captured.err


@pytest.mark.longitudinal
class TestPanelCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["panel"])
        assert args.waves == 3
        assert args.churn_cell_rate == pytest.approx(0.10)
        assert args.years_per_wave == 1

    def test_panel_runs_and_reports_reuse(self, capsys):
        assert main(["panel", "--waves", "1",
                     "--churn-cell-rate", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "[wave 0] snapshot" in out
        assert "[wave 1] +1y" in out
        assert "replayed" in out
        assert "serviceability" in out

    def test_panel_store_resume_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "panel")
        assert main(["panel", "--waves", "1", "--store", store]) == 0
        first = capsys.readouterr().out
        assert main(["panel", "--waves", "1", "--store", store,
                     "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "restored from store" in resumed
        # Same drift numbers, whether replayed or re-collected.
        assert [line.split("(")[0] for line in resumed.splitlines()
                if "serviceability" in line] == \
            [line.split("(")[0] for line in first.splitlines()
             if "serviceability" in line]

    def test_invalid_waves_exit_2(self, capsys):
        assert main(["panel", "--waves", "0"]) == 2
        assert "--waves" in capsys.readouterr().err

    def test_invalid_churn_rate_exit_2(self, capsys):
        assert main(["panel", "--churn-cell-rate", "1.5"]) == 2
        assert "probability" in capsys.readouterr().err

    def test_resume_without_store_exit_2(self, capsys):
        assert main(["panel", "--resume"]) == 2
        assert "resume" in capsys.readouterr().err


class TestServiceCommands:
    """Parsing and fast error paths for serve/submit/follow/query (the
    daemon itself is exercised end to end in test_service_daemon.py
    and test_service_chaos.py)."""

    def test_parser_accepts_service_commands(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--journal", "j"])
        assert serve.journal == "j" and serve.name == "audit"
        submit = parser.parse_args(
            ["submit", "--connect", "host:9", "--kind", "panel",
             "--waves", "2", "--wait"])
        assert submit.kind == "panel" and submit.wait
        follow = parser.parse_args(
            ["follow", "--connect", "host:9", "--journal", "replica"])
        assert follow.journal == "replica"
        query = parser.parse_args(
            ["query", "--connect", "host:9", "--what", "wave-analysis",
             "--job", "job-1", "--wave", "0"])
        assert query.what == "wave-analysis" and query.wave == 0

    def test_serve_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_query_rejects_unknown_what(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--connect", "h:9", "--what", "horoscope"])

    def test_pace_parsing(self):
        from repro.cli import _parse_pace

        assert _parse_pace("none") == 0.0
        assert _parse_pace("real") == 1.0
        assert _parse_pace("0.25") == 0.25
        with pytest.raises(ValueError):
            _parse_pace("banana")
        # Negative paces parse but are refused by EngineConfig — the
        # command helper turns that into exit code 2.
        from repro.cli import _engine_config_for_pace

        assert _engine_config_for_pace("run", "-1") == 2

    def test_run_bad_pace_exits_2(self, capsys):
        assert main(["run", "--pace", "banana"]) == 2
        assert "--pace" in capsys.readouterr().err

    def test_submit_bad_pace_exits_2_before_connecting(self, capsys):
        # The bogus --connect address proves no connection is attempted.
        assert main(["submit", "--connect", "nowhere.invalid:1",
                     "--pace", "-3"]) == 2
        assert "--pace" in capsys.readouterr().err

    def test_run_worker_address_requires_distributed(self, capsys):
        assert main(["run", "--worker-address", "127.0.0.1:0"]) == 2
        assert "worker_address" in capsys.readouterr().err
