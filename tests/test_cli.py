"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == "tiny"
        assert args.seed == 0

    def test_experiment_ids(self):
        args = build_parser().parse_args(["experiment", "figure1", "table2"])
        assert args.ids == ["figure1", "table2"]

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out
        assert "headline" in out

    def test_unknown_experiment_exits_2(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_run_tiny(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Serviceability rate" in out
        assert "paper: 55.45%" in out

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_run_sharded_matches_sequential(self, capsys):
        assert main(["run", "--scale", "tiny"]) == 0
        sequential = capsys.readouterr().out
        assert main(["run", "--scale", "tiny", "--shards", "3"]) == 0
        assert capsys.readouterr().out == sequential

    def test_run_bad_runtime_flags_exit_2(self, capsys):
        assert main(["run", "--resume"]) == 2
        assert "checkpoint_dir" in capsys.readouterr().err
        assert main(["run", "--shards", "-1"]) == 2
        assert "shards must be positive" in capsys.readouterr().err
        assert main(["run", "--workers", "0"]) == 2
        assert "workers must be positive" in capsys.readouterr().err

    def test_run_with_cache_and_checkpoints(self, tmp_path, capsys):
        args = ["run", "--scale", "tiny", "--shards", "2",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert list((tmp_path / "ckpt").glob("shard-*.json"))
        assert list((tmp_path / "cache").glob("*.pkl"))
        # Second run is a cache hit with identical output.
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path), "--scale",
                     "tiny"]) == 0
        for name in ("audit.csv", "query_log.csv", "q3_query_log.csv",
                     "q3_blocks.csv", "caf_map.csv", "table1.csv",
                     "manifest.json"):
            assert (tmp_path / name).exists(), name

    def test_experiment_with_plot(self, capsys):
        assert main(["experiment", "figure6", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "CDFs" in out
        assert "log10(x)" in out

    def test_campaign(self, capsys):
        assert main(["campaign"]) == 0
        out = capsys.readouterr().out
        assert "months" in out
        assert "bottleneck" in out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

    def test_validate(self, capsys):
        assert main(["validate", "--scale", "tiny"]) == 0
        assert "consistent" in capsys.readouterr().out

    def test_oversight(self, capsys):
        assert main(["oversight", "--isp", "frontier"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out
        assert "detection power" in out
