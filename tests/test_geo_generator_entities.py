"""Unit tests for repro.geo.generator and repro.geo.entities."""

import pytest

from repro.geo.entities import BlockGroup, CensusBlock
from repro.geo.fips import state_by_abbreviation
from repro.geo.generator import GeographyConfig, generate_state_geography
from repro.geo.geometry import Point


@pytest.fixture(scope="module")
def california():
    return generate_state_geography(
        state_by_abbreviation("CA"), GeographyConfig(num_counties=6), seed=7)


class TestGeneratedStructure:
    def test_counts_match_config(self, california):
        config = GeographyConfig(num_counties=6)
        assert len(california.counties) == 6
        expected_bgs = 6 * config.tracts_per_county * config.block_groups_per_tract
        assert len(california.block_groups) == expected_bgs
        assert len(california.blocks) == expected_bgs * config.blocks_per_block_group

    def test_geoids_nest_correctly(self, california):
        for block_group in california.block_groups:
            assert block_group.geoid.startswith("06")
            for block in block_group.blocks:
                assert block.geoid[:12] == block_group.geoid

    def test_geoids_unique(self, california):
        geoids = [bg.geoid for bg in california.block_groups]
        assert len(set(geoids)) == len(geoids)
        block_geoids = [b.geoid for b in california.blocks]
        assert len(set(block_geoids)) == len(block_geoids)

    def test_coordinates_inside_state_box(self, california):
        bounds = state_by_abbreviation("CA").bounds
        for block_group in california.block_groups:
            assert bounds.contains(block_group.centroid)

    def test_blocks_near_their_block_group(self, california):
        for block_group in california.block_groups:
            for block in block_group.blocks:
                distance = block.centroid.distance_miles(block_group.centroid)
                assert distance < 100.0

    def test_population_in_census_range(self, california):
        for block_group in california.block_groups:
            assert 600 <= block_group.population <= 3000

    def test_mostly_rural(self, california):
        # CAF-like geographies are rural-dominated.
        rural = sum(bg.is_rural for bg in california.block_groups)
        assert rural / len(california.block_groups) > 0.5

    def test_density_positive_everywhere(self, california):
        assert all(bg.population_density > 0 for bg in california.block_groups)

    def test_determinism(self):
        state = state_by_abbreviation("GA")
        first = generate_state_geography(state, seed=3)
        second = generate_state_geography(state, seed=3)
        assert [bg.geoid for bg in first.block_groups] == \
               [bg.geoid for bg in second.block_groups]
        assert [bg.population for bg in first.block_groups] == \
               [bg.population for bg in second.block_groups]

    def test_different_seeds_differ(self):
        state = state_by_abbreviation("GA")
        first = generate_state_geography(state, seed=1)
        second = generate_state_geography(state, seed=2)
        populations_differ = any(
            a.population != b.population
            for a, b in zip(first.block_groups, second.block_groups))
        assert populations_differ

    def test_indexes(self, california):
        bg_index = california.block_group_index()
        block_index = california.block_index()
        sample_bg = california.block_groups[0]
        assert bg_index[sample_bg.geoid] is sample_bg
        assert block_index[sample_bg.blocks[0].geoid] is sample_bg.blocks[0]

    def test_scaled_config(self):
        config = GeographyConfig(num_counties=10)
        assert config.scaled(0.5).num_counties == 5
        assert config.scaled(0.01).num_counties == 1
        with pytest.raises(ValueError):
            config.scaled(0.0)

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            GeographyConfig(num_counties=0)
        with pytest.raises(ValueError):
            GeographyConfig(min_block_group_population=5000,
                            max_block_group_population=1000)


class TestEntities:
    def test_block_validation(self):
        with pytest.raises(ValueError, match="15 digits"):
            CensusBlock(geoid="123", centroid=Point(0, 0), is_rural=True)

    def test_block_derived_geoids(self):
        block = CensusBlock(geoid="060371234561001",
                            centroid=Point(0, 0), is_rural=True)
        assert block.block_group_geoid == "060371234561"
        assert block.state_fips == "06"

    def test_block_group_rejects_foreign_blocks(self):
        foreign = CensusBlock(geoid="130371234561001",
                              centroid=Point(0, 0), is_rural=True)
        with pytest.raises(ValueError, match="belong"):
            BlockGroup(
                geoid="060371234561",
                centroid=Point(0, 0),
                population=1000,
                population_density=5.0,
                is_rural=True,
                distance_to_city_miles=10.0,
                blocks=(foreign,),
            )

    def test_block_group_validation(self):
        with pytest.raises(ValueError):
            BlockGroup(geoid="060371234561", centroid=Point(0, 0),
                       population=-1, population_density=5.0, is_rural=True,
                       distance_to_city_miles=1.0, blocks=())
