"""Property-based tests (hypothesis) on core data structures and metrics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geo.geoid import block_geoid, block_group_geoid, county_geoid, \
    parse_geoid, tract_geoid
from repro.isp.plans import tier_label_for_speed
from repro.stats.distributions import allocate_counts, bounded_zipf_shares
from repro.stats.ecdf import ECDF
from repro.stats.summary import box_stats
from repro.stats.weighted import weighted_mean, weighted_quantile
from repro.tabular import Table

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
positive_weights = st.floats(min_value=1e-6, max_value=1e6,
                             allow_nan=False, allow_infinity=False)


class TestWeightedProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.data())
    def test_weighted_mean_within_range(self, values, data):
        weights = data.draw(st.lists(positive_weights,
                                     min_size=len(values),
                                     max_size=len(values)))
        mean = weighted_mean(values, weights)
        assert min(values) - 1e-6 <= mean <= max(values) + 1e-6

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_uniform_weights_match_numpy(self, values):
        mean = weighted_mean(values, [1.0] * len(values))
        assert np.isclose(mean, np.mean(values), rtol=1e-9, atol=1e-6)

    @given(st.lists(finite_floats, min_size=1, max_size=50),
           st.floats(min_value=0.0, max_value=1.0))
    def test_weighted_quantile_is_a_sample_value(self, values, q):
        result = weighted_quantile(values, [1.0] * len(values), q)
        assert result in values


class TestEcdfProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_monotone_and_bounded(self, values):
        cdf = ECDF(values)
        xs = sorted(values)
        evaluations = cdf.evaluate(xs)
        assert np.all(np.diff(evaluations) >= 0)
        assert np.all((evaluations >= 0) & (evaluations <= 1))
        assert cdf(max(values)) == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           st.floats(min_value=0.001, max_value=1.0))
    def test_quantile_inverse_consistency(self, values, q):
        cdf = ECDF(values)
        value = cdf.quantile(q)
        assert cdf(value) >= q - 1e-9

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_box_stats_ordering(self, values):
        box = box_stats(values)
        assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
        assert box.whisker_low >= box.minimum
        assert box.whisker_high <= box.maximum


class TestAllocationProperties:
    @given(st.integers(min_value=0, max_value=100_000),
           st.lists(positive_weights, min_size=1, max_size=40))
    def test_allocate_counts_exact_total(self, total, shares):
        counts = allocate_counts(total, shares)
        assert counts.sum() == total
        assert np.all(counts >= 0)

    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=0.0, max_value=3.0))
    def test_zipf_shares_normalized(self, n, exponent):
        shares = bounded_zipf_shares(n, exponent)
        assert np.isclose(shares.sum(), 1.0)
        assert np.all(shares > 0)


class TestGeoidProperties:
    @given(st.integers(min_value=0, max_value=999),
           st.integers(min_value=0, max_value=999_999),
           st.integers(min_value=0, max_value=9),
           st.integers(min_value=0, max_value=999))
    def test_round_trip(self, county, tract, bg_digit, block):
        geoid = block_geoid(
            block_group_geoid(tract_geoid(county_geoid("06", county), tract),
                              bg_digit),
            block)
        parts = parse_geoid(geoid)
        assert parts.block_geoid == geoid
        assert parts.state_fips == "06"
        assert int(parts.county) == county
        assert int(parts.tract) == tract
        assert int(parts.block_group) == bg_digit


class TestTierLabelProperties:
    @given(st.floats(min_value=0.0, max_value=100_000.0,
                     allow_nan=False, allow_infinity=False))
    def test_every_speed_has_a_label(self, speed):
        label = tier_label_for_speed(speed)
        assert isinstance(label, str) and label

    @given(st.floats(min_value=0.01, max_value=100_000.0,
                     allow_nan=False))
    def test_banding_monotone_in_thresholds(self, speed):
        label = tier_label_for_speed(speed)
        if speed >= 1000:
            assert label == "1000+"
        elif speed >= 100:
            assert label == "100-999"
        elif speed > 10:
            assert label == "11-99"
        else:
            assert label not in ("11-99", "100-999", "1000+")


class TestTableProperties:
    @settings(max_examples=50)
    @given(st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), finite_floats),
        min_size=1, max_size=60))
    def test_groupby_partition(self, pairs):
        table = Table({
            "key": [k for k, _ in pairs],
            "value": [v for _, v in pairs],
        })
        grouped = table.group_by("key")
        total = sum(len(sub) for _, sub in grouped.groups())
        assert total == len(table)
        sizes = grouped.size()
        assert sum(sizes["count"]) == len(table)

    @settings(max_examples=50)
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_sort_then_values_sorted(self, values):
        table = Table({"x": values})
        ordered = table.sort_by("x")
        assert list(ordered["x"]) == sorted(values)

    @settings(max_examples=30)
    @given(st.lists(finite_floats, min_size=1, max_size=40))
    def test_csv_round_trip(self, values):
        import tempfile
        from pathlib import Path

        from repro.tabular import read_csv, write_csv
        table = Table({"x": values})
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            write_csv(table, path)
            loaded = read_csv(path)
        np.testing.assert_allclose(
            loaded["x"].astype(float), table["x"], rtol=1e-12)
