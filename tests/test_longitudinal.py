"""Tests for repro.longitudinal — panels, digests, delta planning.

The replay-equivalence scenarios (incremental wave == from-scratch
re-collection, byte for byte) live in tests/test_equivalence_harness.py
with the backend matrix; this file covers the subsystem's own
mechanics: digest stability, delta planning, fold/merge conservation,
wave resume (checkpoints and the panel store), the wave-scenario
recipe workers rebuild evolved worlds from, and the persisted autotune
plan.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

import repro.runtime.executor as executor_module
from harness.equivalence import canonical_logbook_bytes
from repro.longitudinal import (
    PanelCampaign,
    PanelStore,
    compute_wave_digests,
    diff_digests,
)
from repro.runtime import RuntimeConfig
from repro.runtime.distributed import (
    _scenario_from_json,
    autotune_runtime_config,
)
from repro.synth.churn import ChurnModel, WaveScenario, churned_world
from repro.synth.scenario import ScenarioConfig

pytestmark = pytest.mark.longitudinal

# One ISP's footprint in two states plus one Q3 state: the same shape
# the backend-equivalence matrix uses — small enough for many panels.
SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))

SPARSE = ChurnModel(cell_rate=0.3)


@pytest.fixture(scope="module")
def panel_outcomes(world):
    """One shared incremental panel over the session world."""
    return PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                         **SUBSET).run()


class TestWaveDigests:
    def test_recompute_is_stable(self, world):
        first = compute_wave_digests(world, **SUBSET)
        second = compute_wave_digests(world, **SUBSET)
        assert first.q12 == second.q12
        assert first.q3 == second.q3
        assert first.total_cells > 0

    def test_zero_churn_preserves_every_digest(self, world):
        frozen = ChurnModel(upgrade_rate=0.0, new_deployment_rate=0.0,
                            retirement_rate=0.0)
        evolved = churned_world(world, years=3, model=frozen)
        assert compute_wave_digests(evolved, **SUBSET).q12 == \
            compute_wave_digests(world, **SUBSET).q12

    def test_zero_cell_rate_preserves_every_digest(self, world):
        evolved = churned_world(world, years=3,
                                model=ChurnModel(cell_rate=0.0))
        base = compute_wave_digests(world, **SUBSET)
        after = compute_wave_digests(evolved, **SUBSET)
        assert base.q12 == after.q12
        assert base.q3 == after.q3

    def test_unchanged_cells_keep_digests_under_sparse_churn(self, world):
        """Digest stability is cell-local: churn elsewhere must not
        move an untouched cell's digest."""
        evolved = churned_world(world, years=1, model=SPARSE)
        base = compute_wave_digests(world, **SUBSET)
        after = compute_wave_digests(evolved, **SUBSET)
        delta = diff_digests(base, after)
        unchanged = set(base.q12) - set(delta.changed_q12)
        assert unchanged, "sparse churn should leave some cells alone"
        for cell in unchanged:
            assert base.q12[cell] == after.q12[cell]

    def test_aggressive_churn_moves_digests(self, world):
        evolved = churned_world(
            world, years=2,
            model=ChurnModel(upgrade_rate=0.9, cell_rate=1.0))
        delta = diff_digests(compute_wave_digests(world, **SUBSET),
                             compute_wave_digests(evolved, **SUBSET))
        assert len(delta.changed_q12) > 0
        assert delta.requery_fraction > 0.5

    def test_diff_against_nothing_changes_everything(self, world):
        digests = compute_wave_digests(world, **SUBSET)
        delta = diff_digests(None, digests)
        assert len(delta.changed_q12) == delta.total_q12
        assert len(delta.changed_q3) == delta.total_q3
        assert delta.requery_fraction == 1.0


class TestPanelCampaign:
    def test_wave_zero_matches_direct_campaign(self, world, panel_outcomes):
        from repro.core.collection import (
            CollectionCampaign,
            collect_q3_dataset,
        )

        snapshot = panel_outcomes[0]
        collection = CollectionCampaign(world).run(
            isps=SUBSET["isps"], states=SUBSET["states"])
        q3 = collect_q3_dataset(world, states=SUBSET["q3_states"])
        assert canonical_logbook_bytes(snapshot.collection, snapshot.q3) \
            == canonical_logbook_bytes(collection, q3)

    def test_accounting_conserves_cells(self, panel_outcomes):
        for outcome in panel_outcomes:
            assert (outcome.fresh_q12 + outcome.replayed_q12
                    == outcome.delta.total_q12)
            assert (outcome.fresh_q3 + outcome.replayed_q3
                    == outcome.delta.total_q3)
        assert panel_outcomes[0].reuse_fraction == 0.0

    def test_sparse_churn_actually_replays(self, panel_outcomes):
        assert sum(o.replayed_q12 + o.replayed_q3
                   for o in panel_outcomes[1:]) > 0

    def test_zero_churn_waves_replay_everything(self, world):
        frozen = ChurnModel(cell_rate=0.0)
        outcomes = PanelCampaign(world, model=frozen, horizons=(1, 2),
                                 **SUBSET).run()
        snapshot_bytes = canonical_logbook_bytes(
            outcomes[0].collection, outcomes[0].q3)
        for outcome in outcomes[1:]:
            assert outcome.fresh_q12 == outcome.fresh_q3 == 0
            assert outcome.reuse_fraction == 1.0
            assert canonical_logbook_bytes(
                outcome.collection, outcome.q3) == snapshot_bytes

    def test_horizon_validation(self, world):
        with pytest.raises(ValueError):
            PanelCampaign(world, horizons=())
        with pytest.raises(ValueError):
            PanelCampaign(world, horizons=(0, 1))
        with pytest.raises(ValueError):
            PanelCampaign(world, horizons=(2, 1))
        with pytest.raises(ValueError):
            PanelCampaign(world, horizons=(1, 1))
        with pytest.raises(ValueError, match="resume"):
            PanelCampaign(world, horizons=(1,), resume=True)

    def test_determinism_across_runs(self, world, panel_outcomes):
        again = PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                              **SUBSET).run()
        for first, second in zip(panel_outcomes, again):
            assert canonical_logbook_bytes(first.collection, first.q3) \
                == canonical_logbook_bytes(second.collection, second.q3)
            assert first.delta == second.delta


class TestWaveResume:
    def _bytes(self, outcomes):
        return [canonical_logbook_bytes(o.collection, o.q3)
                for o in outcomes]

    def test_checkpointed_waves_resume_without_queries(
            self, world, tmp_path, monkeypatch):
        runtime = RuntimeConfig(backend="serial", shards=2,
                                checkpoint_dir=str(tmp_path / "ckpt"))
        reference = self._bytes(PanelCampaign(
            world, model=SPARSE, horizons=(1, 2), runtime=runtime,
            **SUBSET).run())

        def refuse(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume re-queried a checkpointed shard")

        monkeypatch.setattr(executor_module, "run_shard", refuse)
        resumed = RuntimeConfig(backend="serial", shards=2,
                                checkpoint_dir=str(tmp_path / "ckpt"),
                                resume=True)
        outcomes = PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                                 runtime=resumed, **SUBSET).run()
        assert self._bytes(outcomes) == reference

    def test_panel_store_resume_replays_waves(
            self, world, tmp_path, monkeypatch):
        store_dir = str(tmp_path / "panel")
        reference = self._bytes(PanelCampaign(
            world, model=SPARSE, horizons=(1, 2), store_dir=store_dir,
            **SUBSET).run())

        def refuse(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("store resume re-queried a wave")

        monkeypatch.setattr(executor_module, "run_shard", refuse)
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                                 store_dir=store_dir, resume=True,
                                 **SUBSET)
        outcomes = campaign.run()
        assert self._bytes(outcomes) == reference
        assert all(o.restored_from_store for o in outcomes)
        assert campaign.store.waves() == [0, 1, 2]

    def test_damaged_store_wave_recomputes(self, world, tmp_path):
        store_dir = str(tmp_path / "panel")
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1,),
                                 store_dir=store_dir, **SUBSET)
        reference = self._bytes(campaign.run())
        # Truncate wave 1 mid-document: resume must fall back to
        # recomputing it (and still match), never crash or mis-replay.
        path = campaign.store.wave_path(1)
        path.write_text(path.read_text(encoding="utf-8")[:100],
                        encoding="utf-8")
        outcomes = PanelCampaign(world, model=SPARSE, horizons=(1,),
                                 store_dir=store_dir, resume=True,
                                 **SUBSET).run()
        assert self._bytes(outcomes) == reference
        assert outcomes[0].restored_from_store
        assert not outcomes[1].restored_from_store

    def test_store_rejects_foreign_fingerprint(self, world, tmp_path):
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1,),
                                 store_dir=str(tmp_path), **SUBSET)
        campaign.run()
        foreign = PanelStore(tmp_path, "deadbeef" * 8)
        assert foreign.load_wave(0) is None


class TestPanelStoreCAS:
    """The format-2 store: digest-keyed cell CAS + thin manifests."""

    def _run(self, world, tmp_path, horizons=(1, 2), resume=False):
        return PanelCampaign(world, model=SPARSE, horizons=horizons,
                             store_dir=str(tmp_path / "panel"),
                             resume=resume, **SUBSET)

    def test_unchanged_cells_stored_once_per_digest(self, world, tmp_path):
        """The storage analogue of delta collection: CAS entries number
        distinct digests (snapshot cells + churned generations), not
        waves x cells — and every one is referenced."""
        campaign = self._run(world, tmp_path)
        outcomes = campaign.run()
        store = campaign.store
        total = outcomes[0].delta.total_q12 + outcomes[0].delta.total_q3
        churned = sum(o.fresh_q12 + o.fresh_q3 for o in outcomes[1:])
        cas_files = {p.stem for p in store.cells_directory.glob("*.json")}
        assert len(cas_files) <= total + churned
        assert len(cas_files) < len(outcomes) * total, (
            "CAS stored cells once per wave — no cross-wave sharing")
        assert cas_files == store.referenced_digests()

    def test_sweep_reclaims_only_orphans(self, world, tmp_path):
        campaign = self._run(world, tmp_path)
        campaign.run()
        store = campaign.store
        # Nothing referenced may be reclaimed...
        assert store.sweep_unreferenced_cells() == []
        # ...while an orphan (e.g. a crash between CAS publish and the
        # manifest write) is.
        orphan = "f" * 64
        store.cell_path(orphan).write_text("{}", encoding="utf-8")
        assert store.sweep_unreferenced_cells() == [orphan]

    def test_sweep_is_safe_under_resume(self, world, tmp_path,
                                        monkeypatch):
        """A sweep between runs must never strand a wave a later
        ``--resume`` will load: after sweeping, every wave still
        restores from the store without a single query."""
        campaign = self._run(world, tmp_path)
        reference = [canonical_logbook_bytes(o.collection, o.q3)
                     for o in campaign.run()]
        campaign.store.sweep_unreferenced_cells()

        def refuse(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume re-queried after a sweep")

        monkeypatch.setattr(executor_module, "run_shard", refuse)
        resumed = self._run(world, tmp_path, resume=True)
        outcomes = resumed.run()
        assert [canonical_logbook_bytes(o.collection, o.q3)
                for o in outcomes] == reference
        assert all(o.restored_from_store for o in outcomes)

    def test_crash_orphans_reclaimed_by_end_of_run_sweep(
            self, world, tmp_path):
        """A crash between publishing a wave's CAS entries and its
        manifest leaves orphaned cell files; the next completed run's
        end-of-panel sweep reclaims them (and a healthy store sweeps
        nothing — CAS files and references coincide exactly)."""
        campaign = self._run(world, tmp_path, horizons=(1,))
        campaign.run()
        store = campaign.store
        assert ({p.stem for p in store.cells_directory.glob("*.json")}
                == store.referenced_digests())
        # Simulate the crash: orphan CAS entries with no manifest.
        orphans = {"a" * 64, "b" * 64}
        for digest in orphans:
            store.cell_path(digest).write_text("{}", encoding="utf-8")
        rerun = self._run(world, tmp_path, horizons=(1,), resume=True)
        rerun.run()
        remaining = {p.stem for p in store.cells_directory.glob("*.json")}
        assert remaining == store.referenced_digests()
        assert not (orphans & remaining)

    def test_different_horizons_use_disjoint_panel_directories(
            self, world, tmp_path):
        """Horizons feed the panel fingerprint, so panels at different
        horizons can never share (or sweep) each other's CAS."""
        one = self._run(world, tmp_path, horizons=(1,))
        two = self._run(world, tmp_path, horizons=(1, 2))
        assert one.fingerprint != two.fingerprint
        assert (one.store.panel_directory
                != two.store.panel_directory)

    def test_missing_cas_entry_makes_the_wave_a_miss(self, world,
                                                     tmp_path):
        campaign = self._run(world, tmp_path, horizons=(1,))
        campaign.run()
        store = campaign.store
        victim = next(iter(store.referenced_digests()))
        store.cell_path(victim).unlink()
        affected = [wave for wave in store.waves()
                    if store.load_wave(wave) is None]
        assert affected, "some wave referenced the deleted digest"
        # A resumed panel recomputes the damaged wave(s) and heals the
        # store, byte-for-byte.
        healed = self._run(world, tmp_path, horizons=(1,), resume=True)
        healed.run()
        assert all(store.load_wave(wave) is not None
                   for wave in store.waves())

    def test_tampered_cell_payload_rejected_and_healed(self, world,
                                                       tmp_path):
        """A corrupted-in-place CAS entry is a miss AND is quarantined,
        so the recompute's republish actually replaces it — without
        the unlink, ``_publish_cell``'s exists() skip would leave the
        damage in place and the wave would re-collect on every resume
        forever."""
        campaign = self._run(world, tmp_path, horizons=(1,))
        campaign.run()
        store = campaign.store
        victim = next(iter(store.referenced_digests()))
        path = store.cell_path(victim)
        document = json.loads(path.read_text(encoding="utf-8"))
        document["payload"]["tampered"] = True
        path.write_text(json.dumps(document), encoding="utf-8")
        assert store._load_cell_payload(victim) is None
        assert not path.exists()  # quarantined, not left to fester

        # The resumed run recomputes the affected wave(s) and heals
        # the store: the entry is republished and every wave loads.
        self._run(world, tmp_path, horizons=(1,), resume=True).run()
        assert store._load_cell_payload(victim) is not None
        assert all(store.load_wave(wave) is not None
                   for wave in store.waves())

    def test_rollback_never_unlinks_newer_format_entries(
            self, world, tmp_path):
        """A CAS entry claiming a *future* format is a plain miss, not
        quarantine fodder: rolling back a binary must not delete the
        newer store it cannot read."""
        campaign = self._run(world, tmp_path, horizons=(1,))
        campaign.run()
        store = campaign.store
        future = store.cell_path("d" * 64)
        future.write_text(json.dumps({"format": 99, "digest": "d" * 64,
                                      "payload": {}}), encoding="utf-8")
        assert store._load_cell_payload("d" * 64) is None
        assert future.exists()

    def test_v1_wave_document_loads_read_only(self, world, tmp_path):
        """A format-1 wave file (the pre-CAS layout: the whole cell
        payload embedded as one double-encoded JSON string) must keep
        loading byte-for-byte, so existing panels upgrade in place."""
        import hashlib

        from repro.runtime.checkpoint import _shard_to_json

        campaign = self._run(world, tmp_path, horizons=(1,))
        outcomes = campaign.run()
        store = campaign.store
        reference = store.load_wave(0)
        assert reference is not None

        # Rewrite wave 0 exactly as the 1.4 store serialized it.
        cell_payload = json.dumps(_shard_to_json(outcomes[0].cells),
                                  sort_keys=True, separators=(",", ":"))
        v1_document = {
            "format": 1,
            "fingerprint": store.fingerprint,
            "wave": 0,
            "horizon_years": 0,
            "counts": {"fresh_q12": outcomes[0].fresh_q12,
                       "replayed_q12": 0,
                       "fresh_q3": outcomes[0].fresh_q3,
                       "replayed_q3": 0},
            "cells_sha256": hashlib.sha256(
                cell_payload.encode("utf-8")).hexdigest(),
            "cells": cell_payload,
        }
        store.wave_path(0).write_text(json.dumps(v1_document,
                                                 sort_keys=True),
                                      encoding="utf-8")
        loaded = store.load_wave(0)
        assert loaded is not None
        cells, manifest = loaded
        assert manifest["format"] == 1
        assert _shard_to_json(cells) == _shard_to_json(reference[0])

        # And a resumed panel replays the v1 wave wholesale.
        resumed = self._run(world, tmp_path, horizons=(1,), resume=True)
        assert all(o.restored_from_store for o in resumed.run())

    def test_v1_checksum_still_over_the_double_encoded_string(
            self, world, tmp_path):
        """The v1 reader must checksum the embedded *string* payload
        (its historical on-disk form), so real v1 files verify and
        subtly re-encoded ones do not."""
        campaign = self._run(world, tmp_path, horizons=(1,))
        outcomes = campaign.run()
        store = campaign.store
        from repro.runtime.checkpoint import _shard_to_json

        cell_payload = json.dumps(_shard_to_json(outcomes[0].cells),
                                  sort_keys=True, separators=(",", ":"))
        document = {
            "format": 1,
            "fingerprint": store.fingerprint,
            "wave": 0,
            "horizon_years": 0,
            "counts": {},
            "cells_sha256": "0" * 64,  # wrong checksum
            "cells": cell_payload,
        }
        store.wave_path(0).write_text(json.dumps(document),
                                      encoding="utf-8")
        assert store.load_wave(0) is None

    def test_v2_document_is_not_double_encoded(self, world, tmp_path):
        """The satellite bugfix: manifests and CAS entries store
        nested JSON objects, not pre-serialized strings."""
        campaign = self._run(world, tmp_path, horizons=(1,))
        campaign.run()
        store = campaign.store
        document = json.loads(store.wave_path(0).read_text("utf-8"))
        assert document["format"] == 2
        assert isinstance(document["cells"], dict)
        from repro.runtime.cache import content_digest

        assert document["cells_sha256"] == content_digest(
            document["cells"])
        digest = document["cells"]["q12"][0][-1]
        cell = json.loads(store.cell_path(digest).read_text("utf-8"))
        assert isinstance(cell["payload"], dict)
        assert cell["payload_sha256"] == content_digest(cell["payload"])


class TestWaveScenario:
    def test_realize_matches_direct_evolution(self, world, tiny_config):
        scenario = WaveScenario(base=tiny_config, years=2, model=SPARSE)
        realized = scenario.realize()
        direct = churned_world(world, years=2, model=SPARSE)
        assert compute_wave_digests(realized, **SUBSET).q12 == \
            compute_wave_digests(direct, **SUBSET).q12

    def test_wire_codec_roundtrip(self, tiny_config):
        scenario = WaveScenario(base=tiny_config, years=3,
                                model=ChurnModel(cell_rate=0.25))
        decoded = _scenario_from_json(json.loads(
            json.dumps(asdict(scenario), sort_keys=True)))
        assert decoded == scenario

    def test_plain_scenario_codec_still_works(self, tiny_config):
        decoded = _scenario_from_json(json.loads(
            json.dumps(asdict(tiny_config), sort_keys=True)))
        assert decoded == tiny_config

    def test_negative_years_raise(self, tiny_config):
        with pytest.raises(ValueError):
            WaveScenario(base=tiny_config, years=-1)

    def test_passthrough_properties(self, tiny_config):
        scenario = WaveScenario(base=tiny_config, years=1)
        assert scenario.seed == tiny_config.seed
        assert scenario.states == tiny_config.states
        assert scenario.q3_states == tiny_config.q3_states


class TestProcessBackendRealizesWaves:
    def test_process_delta_matches_serial(self, world):
        """Process-pool workers rebuild the evolved wave world from the
        WaveScenario recipe — their records must match the in-process
        serial path byte for byte."""
        serial = PanelCampaign(world, model=SPARSE, horizons=(1,),
                               **SUBSET).run()
        pooled = PanelCampaign(
            world, model=SPARSE, horizons=(1,),
            runtime=RuntimeConfig(backend="process", shards=2, workers=2),
            **SUBSET).run()
        for left, right in zip(serial, pooled):
            assert canonical_logbook_bytes(left.collection, left.q3) \
                == canonical_logbook_bytes(right.collection, right.q3)


class TestAutotunePlanStore:
    def test_plan_persists_and_skips_pilot(self, world, tmp_path,
                                           monkeypatch):
        first = autotune_runtime_config(world, target_seconds=1e9,
                                        plan_dir=tmp_path, **SUBSET)
        stored = list(tmp_path.glob("autotune-*.json"))
        assert len(stored) == 1

        def refuse(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pilot shard ran despite a stored plan")

        monkeypatch.setattr(executor_module, "run_shard", refuse)
        second = autotune_runtime_config(world, target_seconds=1e9,
                                         plan_dir=tmp_path, **SUBSET)
        assert second == first

    def test_different_target_misses_the_store(self, world, tmp_path):
        autotune_runtime_config(world, target_seconds=1e9,
                                plan_dir=tmp_path, **SUBSET)
        autotune_runtime_config(world, target_seconds=3600.0,
                                plan_dir=tmp_path, **SUBSET)
        assert len(list(tmp_path.glob("autotune-*.json"))) == 2

    def test_damaged_plan_recomputes(self, world, tmp_path):
        first = autotune_runtime_config(world, target_seconds=1e9,
                                        plan_dir=tmp_path, **SUBSET)
        (path,) = tmp_path.glob("autotune-*.json")
        path.write_text("{not json", encoding="utf-8")
        again = autotune_runtime_config(world, target_seconds=1e9,
                                        plan_dir=tmp_path, **SUBSET)
        assert again == first


class TestPanelExperiment:
    def test_trajectory_and_attribution(self, context):
        from repro.analysis.panel import run as run_panel

        result = run_panel(context, waves=2)
        trajectory = result.tables["trajectory"]
        assert len(trajectory) == 3
        assert trajectory.row(0)["years_after_snapshot"] == 0
        assert trajectory.row(0)["reuse_fraction"] == 0.0
        assert result.scalars["mean_wave_reuse_fraction"] > 0.0
        assert result.scalars["staleness_half_life_years"] > 0.0
        attribution = result.tables["churn_attribution"]
        assert len(attribution) > 0

    def test_waves_validation(self, context):
        from repro.analysis.panel import run as run_panel

        with pytest.raises(ValueError):
            run_panel(context, waves=0)
