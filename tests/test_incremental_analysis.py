"""Tests for repro.analysis.incremental — rows, reduce, row cache.

The byte-equality of the incremental fold against the full-logbook
recompute is proven scenario-by-scenario in
tests/test_equivalence_harness.py; this file covers the machinery:
cache invalidation semantics (digest stable ⇒ cached row byte-equal,
digest moved ⇒ row recomputed under the new key), the disk-backed
row store (atomic publish, damage and foreign-namespace rejection),
and the reduce's own contracts.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.incremental import (
    WaveRowCache,
    full_wave_analysis,
    q12_cell_row,
    reduce_rows,
    row_cache_for,
    standard_for_seed,
    wave_analysis,
)
from repro.longitudinal import PanelCampaign, diff_digests
from repro.synth.churn import ChurnModel

pytestmark = pytest.mark.longitudinal

SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))

SPARSE = ChurnModel(cell_rate=0.3)


@pytest.fixture(scope="module")
def panel_outcomes(world):
    return PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                         **SUBSET).run()


def _row_bytes(row) -> bytes:
    return json.dumps(row, sort_keys=True, separators=(",", ":")).encode()


class TestRowInvalidation:
    def test_stable_digest_reuses_byte_equal_row(self, world,
                                                 panel_outcomes):
        """A cell whose digest did not move folds the *cached* row,
        and that row is byte-equal to a fresh recompute of the cell."""
        base, wave1 = panel_outcomes[0], panel_outcomes[1]
        delta = diff_digests(base.digests, wave1.digests)
        unchanged = [cell for cell in wave1.digests.q12
                     if cell not in set(delta.changed_q12)]
        assert unchanged, "sparse churn should leave some cells alone"

        campaign = PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                                 **SUBSET)
        cache = row_cache_for(campaign)
        wave_analysis(base, cache=cache)
        hits_before = cache.hits
        wave_analysis(wave1, cache=cache)
        assert cache.hits - hits_before >= len(unchanged)

        standard = standard_for_seed(world.config.seed)
        for cell in unchanged:
            digest = wave1.digests.q12[cell]
            assert digest == base.digests.q12[cell]
            hit, cached = cache.lookup("q12", digest)
            assert hit
            fresh = q12_cell_row(
                cell, wave1.cells.q12_records[cell],
                wave1.collection.cbg_totals[(cell.isp_id, cell.cbg)],
                standard)
            assert _row_bytes(cached) == _row_bytes(fresh)

    def test_moved_digest_recomputes_row(self, world):
        """A churned cell's new digest must miss the cache: its row is
        computed from the wave's fresh records, never replayed from
        the prior wave's world state."""
        aggressive = ChurnModel(cell_rate=1.0, upgrade_rate=0.9)
        campaign = PanelCampaign(world, model=aggressive, horizons=(1,),
                                 **SUBSET)
        base, wave1 = campaign.run()
        delta = diff_digests(base.digests, wave1.digests)
        assert delta.changed_q12, "aggressive churn should move cells"

        cache = row_cache_for(campaign)
        wave_analysis(base, cache=cache)
        misses_before = cache.misses
        wave_analysis(wave1, cache=cache)
        assert cache.misses - misses_before >= len(delta.changed_q12)
        # Both generations stay addressable — the old digest's row is
        # not invalidated in place, the new digest gets its own entry.
        for cell in delta.changed_q12:
            assert cache.lookup("q12", base.digests.q12[cell])[0]
            assert cache.lookup("q12", wave1.digests.q12[cell])[0]

    def test_analysis_matches_oracle_without_cache(self, panel_outcomes):
        from harness.equivalence import canonical_analysis_bytes

        for outcome in panel_outcomes:
            assert canonical_analysis_bytes(wave_analysis(outcome)) == \
                canonical_analysis_bytes(full_wave_analysis(outcome))


class TestDiskBackedRows:
    def test_rows_persist_across_cache_instances(self, world, tmp_path,
                                                 panel_outcomes):
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1, 2),
                                 **SUBSET)
        warm = row_cache_for(campaign, directory=tmp_path)
        wave_analysis(panel_outcomes[0], cache=warm)
        assert warm.directory.exists()

        cold = row_cache_for(campaign, directory=tmp_path)
        assert cold.namespace == warm.namespace
        hits_or_misses = []
        for cell, digest in panel_outcomes[0].digests.q12.items():
            hit, row = cold.lookup("q12", digest)
            hits_or_misses.append(hit)
        assert all(hits_or_misses)
        assert cold.hits > 0 and cold.misses == 0

    def test_damaged_row_file_is_a_miss(self, world, tmp_path,
                                        panel_outcomes):
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1,),
                                 **SUBSET)
        cache = row_cache_for(campaign, directory=tmp_path)
        wave_analysis(panel_outcomes[0], cache=cache)
        victim = next(cache.directory.glob("q12-*.col"))
        victim.write_bytes(victim.read_bytes()[:10])  # torn write
        digest = victim.stem.split("-", 1)[1]
        fresh = row_cache_for(campaign, directory=tmp_path)
        assert not fresh.lookup("q12", digest)[0]

    def test_corrupted_row_value_is_a_miss_not_a_wrong_rate(
            self, world, tmp_path, panel_outcomes):
        """A bit-flipped row *value* in a still-parseable file must
        fail the payload checksum and be quarantined — folded in, it
        would silently break the byte-equality contract."""
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1,),
                                 **SUBSET)
        cache = row_cache_for(campaign, directory=tmp_path)
        wave_analysis(panel_outcomes[0], cache=cache)
        from repro.tabular.colio import decode_row_document

        victim = next(p for p in cache.directory.glob("q12-*.col")
                      if decode_row_document(p.read_bytes())[1])
        payload = bytearray(victim.read_bytes())
        payload[-1] ^= 0xFF  # flip a bit in the last value buffer
        victim.write_bytes(bytes(payload))
        assert decode_row_document(bytes(payload))[1]  # still parseable
        digest = victim.stem.split("-", 1)[1]
        fresh = row_cache_for(campaign, directory=tmp_path)
        assert not fresh.lookup("q12", digest)[0]
        assert not victim.exists()  # quarantined for re-put to heal

    def test_foreign_namespace_rejected(self, world, tmp_path,
                                        panel_outcomes):
        """Two panels must not exchange rows even if their digests
        collide — the namespace inside each row file is checked."""
        campaign = PanelCampaign(world, model=SPARSE, horizons=(1,),
                                 **SUBSET)
        cache = row_cache_for(campaign, directory=tmp_path)
        wave_analysis(panel_outcomes[0], cache=cache)
        foreign = WaveRowCache(cache.namespace[:16] + "f" * 48,
                               directory=tmp_path)
        # Same 16-hex directory prefix, different full namespace.
        assert foreign.directory == cache.directory
        digest = next(iter(panel_outcomes[0].digests.q12.values()))
        assert not foreign.lookup("q12", digest)[0]

    def test_cached_none_row_round_trips(self, tmp_path):
        cache = WaveRowCache("a" * 64, directory=tmp_path)
        cache.put("q12", "b" * 64, None)
        fresh = WaveRowCache("a" * 64, directory=tmp_path)
        hit, row = fresh.lookup("q12", "b" * 64)
        assert hit and row is None

    def test_format1_json_cache_still_readable(self, tmp_path):
        """A cache persisted before the binary format: its format-1
        JSON files must stay warm, the loaded row must be byte-equal
        to what format 2 round-trips, and a re-put must upgrade the
        file to format 2."""
        from repro.runtime.cache import content_digest

        namespace, digest = "a" * 64, "b" * 64
        row = {"isp_id": "frontier", "state": "VT", "cbg": "500019601001",
               "served_rate": 0.625, "compliant_rate": 1 / 3,
               "queried": 8, "weight": 12}
        cache = WaveRowCache(namespace, directory=tmp_path)
        legacy = cache.directory / f"q12-{digest}.json"
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(json.dumps({
            "format": 1, "namespace": namespace, "digest": digest,
            "row_sha256": content_digest({"row": row}), "row": row,
        }), encoding="utf-8")

        hit, loaded = cache.lookup("q12", digest)
        assert hit and _row_bytes(loaded) == _row_bytes(row)

        cache.put("q12", digest, loaded)
        assert (cache.directory / f"q12-{digest}.col").exists()
        fresh = WaveRowCache(namespace, directory=tmp_path)
        hit, upgraded = fresh.lookup("q12", digest)
        assert hit and _row_bytes(upgraded) == _row_bytes(row)

    def test_sweep_unreferenced_rows(self, tmp_path):
        """Churned cells strand one row file per superseded digest;
        sweeping against the live digest set (the panel store's
        referenced digests) reclaims exactly those."""
        cache = WaveRowCache("a" * 64, directory=tmp_path)
        live, stale = "b" * 64, "c" * 64
        cache.put("q12", live, {"queried": 1})
        cache.put("q12", stale, {"queried": 2})
        cache.put("q3", stale, {"records": 0})
        removed = cache.sweep_unreferenced({live})
        assert sorted(removed) == [stale, stale]
        fresh = WaveRowCache("a" * 64, directory=tmp_path)
        assert fresh.lookup("q12", live)[0]
        assert not fresh.lookup("q12", stale)[0]
        assert not fresh.lookup("q3", stale)[0]


class TestReduce:
    def test_empty_rows_raise_like_the_dataset(self):
        with pytest.raises(ValueError, match="empty"):
            reduce_rows([], [])

    def test_custom_standard_rejected_with_a_cache(self, world,
                                                   panel_outcomes):
        """The cache namespace digests only the default standard, so
        mixing a custom standard with a cache would silently exchange
        rows computed under different standards."""
        from repro.core.audit import ComplianceStandard

        with pytest.raises(ValueError, match="standard"):
            wave_analysis(panel_outcomes[0],
                          cache=WaveRowCache("a" * 64),
                          standard=ComplianceStandard())

    def test_experiment_reports_row_reuse(self, context):
        from repro.analysis.panel import run as run_panel

        result = run_panel(context, waves=2)
        assert result.scalars["analysis_row_reuse_fraction"] > 0.0
