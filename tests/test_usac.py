"""Unit tests for the repro.usac package."""

import numpy as np
import pytest

from repro.isp.deployment import GroundTruth, ServiceTruth
from repro.isp.plans import BroadbandPlan
from repro.usac import (
    CafMapDataset,
    CertificationBatch,
    Disbursement,
    DisbursementLedger,
    DeploymentRecord,
    HubbPortal,
)
from repro.usac.generator import NationalDatasetConfig, certified_speed_for
from repro.stats.distributions import stable_rng


def record(address_id="a-1", isp="att", state="CA",
           block="060371234561001", download=10.0) -> DeploymentRecord:
    return DeploymentRecord(
        address_id=address_id, isp_id=isp, state_abbreviation=state,
        block_geoid=block, longitude=-118.0, latitude=34.0, households=1,
        technology="dsl", certified_download_mbps=download,
        certified_upload_mbps=1.0, certified_latency_ms=40.0,
    )


class TestDeploymentRecord:
    def test_derived_geoids(self):
        rec = record()
        assert rec.block_group_geoid == "060371234561"
        assert rec.state_fips == "06"

    def test_speed_floor_check(self):
        assert record(download=10.0).meets_caf_speed_floor
        assert not record(download=9.0).meets_caf_speed_floor

    def test_validation(self):
        with pytest.raises(ValueError):
            record(block="bad")
        with pytest.raises(ValueError):
            record(download=0.0)


class TestCafMapDataset:
    def test_indexes(self):
        dataset = CafMapDataset([
            record("a-1"), record("a-2", isp="frontier", state="OH",
                                  block="390371234561001"),
        ])
        assert len(dataset) == 2
        assert dataset.isps() == ["att", "frontier"]
        assert dataset.states() == ["CA", "OH"]
        assert len(dataset.for_isp_state("att", "CA")) == 1
        assert dataset.record_for("a-1").isp_id == "att"
        assert "a-1" in dataset

    def test_duplicate_address_rejected(self):
        dataset = CafMapDataset([record("a-1")])
        with pytest.raises(ValueError, match="duplicate"):
            dataset.add(record("a-1"))

    def test_unknown_address_raises(self):
        with pytest.raises(KeyError):
            CafMapDataset().record_for("nope")

    def test_per_block_counts(self):
        dataset = CafMapDataset([
            record("a-1"), record("a-2"),
            record("a-3", block="060371234561002"),
        ])
        per_block = dataset.addresses_per_block()
        assert per_block["060371234561001"] == 2
        per_cbg = dataset.addresses_per_block_group()
        assert per_cbg["060371234561"] == 3

    def test_to_table(self):
        table = CafMapDataset([record()]).to_table()
        assert "certified_download_mbps" in table.column_names
        assert len(table) == 1


class TestDisbursementLedger:
    def test_accumulation(self):
        ledger = DisbursementLedger([
            Disbursement("att", "CA", 100.0),
            Disbursement("att", "CA", 50.0),
            Disbursement("frontier", "OH", 30.0),
        ])
        assert ledger.amount_for("att", "CA") == pytest.approx(150.0)
        assert ledger.total_usd() == pytest.approx(180.0)
        assert ledger.by_state()["CA"] == pytest.approx(150.0)
        assert ledger.by_isp()["frontier"] == pytest.approx(30.0)

    def test_top_isps(self):
        ledger = DisbursementLedger([
            Disbursement("a", "CA", 10.0),
            Disbursement("b", "CA", 30.0),
            Disbursement("c", "CA", 20.0),
        ])
        assert ledger.top_isps(2) == [("b", 30.0), ("c", 20.0)]
        assert ledger.share_of_top_isps(1) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            Disbursement("a", "CA", -1.0)
        with pytest.raises(ValueError):
            DisbursementLedger().top_isps(0)
        with pytest.raises(ValueError):
            DisbursementLedger().share_of_top_isps(1)


class TestHubbPortal:
    def test_submit_accumulates(self):
        portal = HubbPortal()
        added = portal.submit(CertificationBatch(
            isp_id="att", filing_year=2021,
            records=(record("a-1"), record("a-2"))))
        assert added == 2
        assert len(portal.caf_map) == 2
        assert len(portal.filings) == 1

    def test_batch_validation(self):
        with pytest.raises(ValueError, match="other ISPs"):
            CertificationBatch(isp_id="frontier", filing_year=2021,
                               records=(record("a-1", isp="att"),))
        with pytest.raises(ValueError, match="empty"):
            CertificationBatch(isp_id="att", filing_year=2021, records=())
        with pytest.raises(ValueError, match="evidence"):
            CertificationBatch(isp_id="att", filing_year=2021,
                               records=(record(),), evidence_kind="rumor")

    def test_verification_review_detects_gap(self):
        portal = HubbPortal(seed=1)
        records = tuple(record(f"a-{i}") for i in range(100))
        portal.submit(CertificationBatch("att", 2021, records))
        truth = GroundTruth()
        plan = BroadbandPlan("x", 10.0, 1.0, 40.0)
        # Only the first half is actually served.
        for i, rec in enumerate(records):
            if i < 50:
                truth.set_truth("att", rec.address_id,
                                ServiceTruth(serves=True, plans=(plan,),
                                             tier_label="10"))
        review = portal.run_verification_review("att", truth,
                                                sample_fraction=0.5)
        assert review.sampled == 50
        assert 0.2 < review.compliance_gap < 0.8
        assert review.pass_rate == pytest.approx(1 - review.compliance_gap)

    def test_review_without_filings_raises(self):
        with pytest.raises(ValueError):
            HubbPortal().run_verification_review("att", GroundTruth())

    def test_review_bad_fraction_raises(self):
        portal = HubbPortal()
        portal.submit(CertificationBatch("att", 2021, (record(),)))
        with pytest.raises(ValueError):
            portal.run_verification_review("att", GroundTruth(),
                                           sample_fraction=0.0)


class TestNationalGenerator:
    def test_marginals(self, national):
        caf_map = national.caf_map
        counts = caf_map.count_by_isp()
        top4 = sum(sorted(counts.values(), reverse=True)[:4]) / len(caf_map)
        assert top4 == pytest.approx(0.62, abs=0.06)
        assert national.rural_block_share == pytest.approx(0.967, abs=0.03)
        cbg_sizes = list(caf_map.addresses_per_block_group().values())
        assert np.median(cbg_sizes) == pytest.approx(64, rel=0.35)

    def test_top_states(self, national):
        ranked = sorted(national.caf_map.count_by_state().items(),
                        key=lambda kv: -kv[1])
        assert ranked[0][0] == "TX"
        assert {"WI", "MN"} <= {state for state, _ in ranked[:4]}

    def test_funds_scale(self, national):
        expected = 10e9 * 0.002
        assert national.ledger.total_usd() == pytest.approx(expected, rel=0.01)

    def test_certified_speeds_mass_at_10(self, national):
        speeds = [r.certified_download_mbps for r in national.caf_map
                  if r.isp_id == "att"]
        assert all(s == 10.0 for s in speeds)

    def test_consolidated_certifies_a_tail(self):
        rng = stable_rng(0, "speeds")
        draws = [certified_speed_for("consolidated", rng)[0]
                 for _ in range(2000)]
        share_10 = draws.count(10.0) / len(draws)
        assert share_10 == pytest.approx(0.86, abs=0.04)
        assert 25.0 in draws
        assert any(speed >= 1000.0 for speed in draws)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NationalDatasetConfig(scale=0.0)
        with pytest.raises(ValueError):
            NationalDatasetConfig(num_small_isps=0)
        with pytest.raises(ValueError):
            NationalDatasetConfig(rural_block_fraction=1.5)

    def test_determinism(self):
        from repro.usac.generator import generate_national_dataset
        config = NationalDatasetConfig(scale=0.0005, seed=11)
        first = generate_national_dataset(config)
        second = generate_national_dataset(config)
        assert len(first.caf_map) == len(second.caf_map)
        assert first.ledger.total_usd() == pytest.approx(
            second.ledger.total_usd())
