"""Unit tests for repro.stats.summary and repro.stats.correlation."""

import numpy as np
import pytest

from repro.stats.correlation import pearson, spearman
from repro.stats.summary import box_stats, five_number_summary


class TestFiveNumberSummary:
    def test_known_values(self):
        summary = five_number_summary([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary == (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_single_value(self):
        assert five_number_summary([7.0]) == (7.0, 7.0, 7.0, 7.0, 7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            five_number_summary([])


class TestBoxStats:
    def test_quartiles(self):
        box = box_stats(list(range(1, 101)))
        assert box.q1 == pytest.approx(25.75)
        assert box.median == pytest.approx(50.5)
        assert box.q3 == pytest.approx(75.25)
        assert box.iqr == pytest.approx(49.5)

    def test_outlier_detection(self):
        values = [10.0] * 20 + [11.0] * 20 + [500.0]
        box = box_stats(values)
        assert 500.0 in box.outliers
        assert box.whisker_high <= 11.0

    def test_no_outliers_whiskers_are_extremes(self):
        box = box_stats([1.0, 2.0, 3.0, 4.0])
        assert box.whisker_low == 1.0
        assert box.whisker_high == 4.0
        assert box.outliers == ()

    def test_row_shape(self):
        row = box_stats([1.0, 2.0]).row()
        assert set(row) == {"n", "min", "q1", "median", "q3", "max",
                            "whisker_low", "whisker_high", "n_outliers"}

    def test_negative_whisker_raises(self):
        with pytest.raises(ValueError):
            box_stats([1.0], whisker=-1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats([])


class TestCorrelation:
    def test_perfect_positive(self):
        xs = np.arange(10.0)
        result = pearson(xs, 2 * xs + 1)
        assert result.coefficient == pytest.approx(1.0)
        assert result.significant

    def test_perfect_negative_spearman(self):
        xs = np.arange(10.0)
        result = spearman(xs, -(xs**3))
        assert result.coefficient == pytest.approx(-1.0)

    def test_spearman_rank_invariance(self):
        xs = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        linear = spearman(xs, xs).coefficient
        monotone = spearman(xs, np.exp(xs)).coefficient
        assert linear == pytest.approx(monotone)

    def test_no_correlation_not_significant(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=100)
        ys = rng.normal(size=100)
        result = pearson(xs, ys)
        assert abs(result.coefficient) < 0.3

    def test_n_recorded(self):
        result = pearson([1.0, 2.0, 3.0], [1.0, 2.5, 2.0])
        assert result.n == 3

    def test_describe_mentions_strength(self):
        result = pearson(np.arange(10.0), np.arange(10.0))
        assert "strong" in result.describe()
        assert "positive" in result.describe()

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError, match="at least 3"):
            pearson([1.0, 2.0], [1.0, 2.0])

    def test_misaligned_raise(self):
        with pytest.raises(ValueError, match="align"):
            spearman([1.0, 2.0, 3.0], [1.0, 2.0])
