"""Unit tests for repro.bqt.flows."""

import pytest

from repro.bqt.errors import ErrorCategory
from repro.bqt.flows import FlowTrace, campaign_flow_stats, trace_for_record
from repro.bqt.logbook import QueryLog, QueryRecord
from repro.bqt.responses import QueryStatus
from repro.isp.plans import BroadbandPlan


def record(status=QueryStatus.SERVICEABLE, isp="att", attempts=1,
           plans=None, error=None, speed=25.0):
    if status is QueryStatus.SERVICEABLE and plans is None:
        plans = (BroadbandPlan("p", speed, speed / 10, 50.0),)
    return QueryRecord(
        isp_id=isp, address_id="a-1", block_geoid="060371234561001",
        state_abbreviation="CA", status=status, plans=plans or (),
        error_category=error, attempts=attempts)


class TestTraceForRecord:
    def test_serviceable_flow(self):
        trace = trace_for_record(record())
        assert trace.final_status is QueryStatus.SERVICEABLE
        assert trace.steps[0].action == "open_storefront"
        assert trace.steps[-1].page == "plans page"

    def test_no_service_flow(self):
        trace = trace_for_record(record(status=QueryStatus.NO_SERVICE))
        assert trace.steps[-1].page == "no-service page"

    def test_unknown_plan_flow(self):
        trace = trace_for_record(record(isp="frontier", plans=()))
        assert trace.steps[-1].page == "subscriber page without tiers"

    def test_dropdown_miss_flow(self):
        trace = trace_for_record(record(
            status=QueryStatus.UNKNOWN,
            error=ErrorCategory.SELECT_DROPDOWN))
        assert trace.steps[-1].page == "no suggestion offered"

    def test_att_call_to_order_flow(self):
        trace = trace_for_record(record(
            status=QueryStatus.UNKNOWN, isp="att",
            error=ErrorCategory.ANALYZING_RESULT))
        assert trace.steps[-1].page == "call-to-order page"

    def test_centurylink_human_verification_flow(self):
        trace = trace_for_record(record(
            status=QueryStatus.UNKNOWN, isp="centurylink",
            error=ErrorCategory.EMPTY_TRACEBACK))
        assert trace.steps[-1].page == "human-verification wall"

    def test_consolidated_gigabit_redirects_to_fidium(self):
        trace = trace_for_record(record(isp="consolidated", speed=1000.0))
        assert trace.followed_redirect
        non_gigabit = trace_for_record(record(isp="consolidated",
                                              speed=50.0))
        assert not non_gigabit.followed_redirect

    def test_retries_repeat_the_prefix(self):
        single = trace_for_record(record(attempts=1))
        triple = trace_for_record(record(attempts=3))
        assert triple.num_steps > single.num_steps
        retry_steps = [s for s in triple.steps if s.action == "retry"]
        assert len(retry_steps) == 2

    def test_render(self):
        text = trace_for_record(record()).render()
        assert "open_storefront" in text
        assert "serviceable" in text

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            FlowTrace(isp_id="att", address_id="a", steps=(),
                      final_status=QueryStatus.NO_SERVICE)


class TestCampaignFlowStats:
    def test_stats_shape(self, report):
        stats = campaign_flow_stats(report.collection.log)
        assert stats.total_steps > len(report.collection.log)
        assert stats.mean_steps_per_query >= 3.0
        assert 0.0 <= stats.retry_share <= 1.0
        assert 0.0 <= stats.redirect_share <= 1.0

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            campaign_flow_stats(QueryLog())
