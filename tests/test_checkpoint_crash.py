"""Kill-mid-write crash tests for the checkpoint store.

With the distributed backend, checkpoints are what survive a machine
failure — so the store must stay readable whatever instruction the
writer died on. Each test here stages one concrete wreck (truncated
manifest, truncated shard file, orphaned tmp file, manifest that never
learned about a published shard) and asserts that ``load_completed``
recovers every intact shard instead of silently discarding work, and
that campaigns sharing a checkpoint root cannot destroy each other.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.runtime import (
    CheckpointStore,
    campaign_fingerprint,
    plan_shards,
    run_shard,
)

SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))


@pytest.fixture(scope="module")
def two_shards(world):
    """Two completed shards of the subset campaign, plus fingerprint."""
    specs = plan_shards(world, 2, **SUBSET)
    results = [run_shard(world.config, spec, world=world) for spec in specs]
    fingerprint = campaign_fingerprint(world.config, None, SUBSET["isps"], 2)
    return results, fingerprint


def record_key(record):
    return (record.isp_id, record.address_id, record.block_geoid,
            record.status, record.plans, record.error_category,
            record.attempts, record.elapsed_seconds, record.replacement_for)


class TestTruncatedManifest:
    def test_rebuilds_every_intact_shard(self, two_shards, tmp_path):
        """The bug this PR fixes: a manifest truncated by a mid-write
        kill used to make ``load_completed`` return {} even though
        every shard file was intact."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        for result in results:
            store.save_shard(result)
        manifest = store.campaign_directory / "checkpoint.json"
        manifest.write_text(
            manifest.read_text(encoding="utf-8")[:37], encoding="utf-8")
        completed = store.load_completed()
        assert set(completed) == {0, 1}
        # The recovered records are exact, not merely counted.
        for index, original in enumerate(results):
            for cell, records in original.q12_records.items():
                assert ([record_key(r)
                         for r in completed[index].q12_records[cell]]
                        == [record_key(r) for r in records])

    def test_heals_the_manifest_on_disk(self, two_shards, tmp_path):
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        for result in results:
            store.save_shard(result)
        manifest = store.campaign_directory / "checkpoint.json"
        manifest.write_text("", encoding="utf-8")
        store.load_completed()
        healed = json.loads(manifest.read_text(encoding="utf-8"))
        assert healed["fingerprint"] == fingerprint
        assert sorted(healed["checksums"]) == ["shard-0000.json",
                                               "shard-0001.json"]

    def test_non_object_json_manifest_recovers(self, two_shards, tmp_path):
        """Valid JSON that is not an object (hand-editing damage) must
        trigger the rebuild, not an AttributeError."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        for result in results:
            store.save_shard(result)
        (store.campaign_directory / "checkpoint.json").write_text(
            "[1, 2]", encoding="utf-8")
        assert set(store.load_completed()) == {0, 1}

    def test_missing_manifest_recovers_too(self, two_shards, tmp_path):
        """A writer killed after publishing shards but before the very
        first manifest write leaves no manifest at all."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        for result in results:
            store.save_shard(result)
        (store.campaign_directory / "checkpoint.json").unlink()
        assert set(store.load_completed()) == {0, 1}


class TestTruncatedShardFile:
    def test_truncated_shard_skipped_others_survive(
            self, two_shards, tmp_path):
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        for result in results:
            store.save_shard(result)
        path = store.shard_path(1)
        path.write_text(path.read_text(encoding="utf-8")[:50],
                        encoding="utf-8")
        assert set(store.load_completed()) == {0}

    def test_truncated_shard_and_manifest_together(
            self, two_shards, tmp_path):
        """The worst wreck: manifest torn AND one shard torn — the
        rebuild must keep exactly the shards that still parse."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        for result in results:
            store.save_shard(result)
        shard = store.shard_path(0)
        shard.write_text(shard.read_text(encoding="utf-8")[:50],
                         encoding="utf-8")
        (store.campaign_directory / "checkpoint.json").write_text(
            "{not json", encoding="utf-8")
        assert set(store.load_completed()) == {1}


class TestPartialTmpFiles:
    def test_leftover_tmp_never_loaded(self, two_shards, tmp_path):
        """A writer killed before its rename leaves a ``*.tmp-<pid>``
        file; it must be invisible to resume."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(results[0])
        partial = (store.campaign_directory
                   / "shard-0001.json.tmp-99999")
        partial.write_text('{"index": 1, "count"', encoding="utf-8")
        assert set(store.load_completed()) == {0}

    def test_stale_tmp_swept_fresh_tmp_kept(self, two_shards, tmp_path):
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(results[0])
        stale = store.campaign_directory / "shard-0001.json.tmp-99999"
        stale.write_text("orphaned by a crashed writer", encoding="utf-8")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = store.campaign_directory / "checkpoint.json.tmp-11111"
        fresh.write_text("a live writer's in-progress file",
                         encoding="utf-8")
        store.save_shard(results[1])
        assert not stale.exists()  # crash leak reclaimed
        assert fresh.exists()      # concurrent writer untouched

    def test_writes_publish_by_rename(self, two_shards, tmp_path,
                                      monkeypatch):
        """If the writer dies between writing the tmp file and the
        rename, the previously published manifest is still the one on
        disk — no torn state, only old state."""
        from pathlib import Path

        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(results[0])
        before = (store.campaign_directory
                  / "checkpoint.json").read_text(encoding="utf-8")

        original_replace = Path.replace

        def dying_replace(self, target):
            if target.name == "checkpoint.json":
                raise KeyboardInterrupt  # the kill lands mid-publish
            return original_replace(self, target)

        monkeypatch.setattr(Path, "replace", dying_replace)
        with pytest.raises(KeyboardInterrupt):
            store.save_shard(results[1])
        monkeypatch.undo()
        after = (store.campaign_directory
                 / "checkpoint.json").read_text(encoding="utf-8")
        assert after == before  # old manifest intact, not truncated
        # Resume still recovers BOTH shards: shard 1's file was
        # published before the manifest update died.
        assert set(store.load_completed()) == {0, 1}


class TestChecksumAuthority:
    def test_listed_file_failing_checksum_is_recomputed(
            self, two_shards, tmp_path):
        """For files the manifest lists, the checksum is authoritative:
        parseable-but-mismatching content (bit rot that stays valid
        JSON) is skipped and recomputed rather than silently merged —
        integrity beats stale-record recovery."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(results[0])
        store.save_shard(results[1])
        path = store.shard_path(0)
        # Parseable damage: perturb one digit inside the payload.
        text = path.read_text(encoding="utf-8")
        damaged = text.replace("1", "2", 1)
        assert damaged != text
        path.write_text(damaged, encoding="utf-8")
        assert set(store.load_completed()) == {1}
        # Re-saving the recomputed shard refreshes the entry.
        store.save_shard(results[0])
        assert set(store.load_completed()) == {0, 1}


class TestLegacyLayoutMigration:
    """Pre-1.3 checkpoints lived at the root; resume must survive the
    upgrade to the namespaced layout."""

    def _stage_legacy(self, store, results, tmp_path):
        """Write a v1.2-style root-level layout for this campaign."""
        from repro.runtime.checkpoint import _shard_to_json

        checksums = {}
        for result in results:
            path = tmp_path / f"shard-{result.index:04d}.json"
            path.write_text(json.dumps(_shard_to_json(result),
                                       sort_keys=True), encoding="utf-8")
            from repro.persist.store import _sha256

            checksums[path.name] = _sha256(path)
        (tmp_path / "checkpoint.json").write_text(json.dumps({
            "format": 1,
            "fingerprint": store.fingerprint,
            "checksums": checksums,
        }), encoding="utf-8")

    def test_legacy_checkpoints_resume_after_upgrade(
            self, two_shards, tmp_path):
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        self._stage_legacy(store, results, tmp_path)
        completed = store.load_completed()
        assert set(completed) == {0, 1}
        # The files were migrated into the namespace and the legacy
        # layout retired, so the next load takes the normal path.
        assert store.shard_path(0).exists()
        assert not (tmp_path / "shard-0000.json").exists()
        assert not (tmp_path / "checkpoint.json").exists()
        assert set(store.load_completed()) == {0, 1}

    def test_legacy_file_failing_its_checksum_not_adopted(
            self, two_shards, tmp_path):
        """Migration honors the legacy manifest's checksums: parseable
        bit rot is dropped and recomputed, not blessed into the new
        layout."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        self._stage_legacy(store, results, tmp_path)
        damaged = tmp_path / "shard-0000.json"
        damaged.write_text(
            damaged.read_text(encoding="utf-8").replace("1", "2", 1),
            encoding="utf-8")
        assert set(store.load_completed()) == {1}
        assert not store.shard_path(0).exists()

    def test_foreign_legacy_layout_untouched(self, two_shards, tmp_path):
        results, fingerprint = two_shards
        other = CheckpointStore(tmp_path, "deadbeef" * 8)
        self._stage_legacy(other, results, tmp_path)
        store = CheckpointStore(tmp_path, fingerprint)
        assert store.load_completed() == {}
        # Another campaign's legacy files are not ours to migrate.
        assert (tmp_path / "shard-0000.json").exists()
        assert (tmp_path / "checkpoint.json").exists()

    def test_clear_retires_own_legacy_layout(self, two_shards, tmp_path):
        """A non-resume run clears its campaign; stale legacy files
        must not resurrect on the next resume."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        self._stage_legacy(store, results, tmp_path)
        store.clear()
        assert store.load_completed() == {}
        assert not (tmp_path / "checkpoint.json").exists()


class TestFingerprintNamespacing:
    def test_resume_with_different_shard_count(self, world, tmp_path):
        """The documented fingerprint behavior: rerunning with a
        different ``--shards`` is a *different campaign* — it resumes
        nothing, and (the bug this PR fixes) it must not delete the
        original campaign's checkpoints either."""
        specs2 = plan_shards(world, 2, **SUBSET)
        fp2 = campaign_fingerprint(world.config, None, SUBSET["isps"], 2)
        store2 = CheckpointStore(tmp_path, fp2)
        for spec in specs2:
            store2.save_shard(run_shard(world.config, spec, world=world))

        fp3 = campaign_fingerprint(world.config, None, SUBSET["isps"], 3)
        assert fp3 != fp2
        store3 = CheckpointStore(tmp_path, fp3)
        assert store3.load_completed() == {}  # nothing to resume
        specs3 = plan_shards(world, 3, **SUBSET)
        store3.save_shard(run_shard(world.config, specs3[0], world=world))
        # Both campaigns now coexist under one root, fully intact.
        assert set(store2.load_completed()) == {0, 1}
        assert set(store3.load_completed()) == {0}
        assert store2.campaign_directory != store3.campaign_directory

    def test_foreign_manifest_warns_instead_of_deleting(
            self, two_shards, tmp_path):
        """save_shard used to call clear() when the manifest
        fingerprint mismatched, destroying another campaign's files.
        Now it warns and rebuilds the manifest, deleting nothing."""
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(results[0])
        manifest = store.campaign_directory / "checkpoint.json"
        tampered = json.loads(manifest.read_text(encoding="utf-8"))
        tampered["fingerprint"] = "deadbeef"
        manifest.write_text(json.dumps(tampered), encoding="utf-8")
        with pytest.warns(UserWarning, match="fingerprint"):
            store.save_shard(results[1])
        # Nothing was deleted; both shards load.
        assert store.shard_path(0).exists()
        assert set(store.load_completed()) == {0, 1}

    def test_clear_only_touches_own_namespace(self, two_shards, tmp_path):
        results, fingerprint = two_shards
        store = CheckpointStore(tmp_path, fingerprint)
        store.save_shard(results[0])
        other = CheckpointStore(tmp_path, "feedc0de" * 8)
        other.save_shard(results[1])
        store.clear()
        assert store.load_completed() == {}
        assert set(other.load_completed()) == {1}
