"""Unit tests for repro.tabular.frame."""

import numpy as np
import pytest

from repro.tabular import Table


@pytest.fixture
def sample() -> Table:
    return Table({
        "isp": ["att", "frontier", "att", "centurylink"],
        "speed": [10.0, 25.0, 100.0, 10.0],
        "served": [True, True, False, True],
    })


class TestConstruction:
    def test_column_names_ordered(self, sample: Table):
        assert sample.column_names == ("isp", "speed", "served")

    def test_length(self, sample: Table):
        assert len(sample) == 4
        assert sample.num_rows == 4

    def test_empty_table(self):
        table = Table()
        assert len(table) == 0
        assert table.column_names == ()

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="rows"):
            Table({"a": [1, 2], "b": [1]})

    def test_strings_stored_as_objects(self, sample: Table):
        assert sample["isp"].dtype.kind == "O"

    def test_from_rows(self):
        table = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert len(table) == 2
        assert list(table["a"]) == [1, 2]

    def test_from_rows_schema_mismatch_raises(self):
        with pytest.raises(ValueError, match="schema"):
            Table.from_rows([{"a": 1}, {"b": 2}])

    def test_from_rows_empty_with_columns(self):
        table = Table.from_rows([], columns=["a", "b"])
        assert table.column_names == ("a", "b")
        assert len(table) == 0

    def test_from_records(self):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            y: int

        table = Table.from_records([Point(1, 2), Point(3, 4)], ["x", "y"])
        assert list(table["y"]) == [2, 4]

    def test_tuple_cells_kept_as_objects(self):
        table = Table({"pair": [(1, 2), (3, 4)]})
        assert table["pair"][0] == (1, 2)


class TestAccess:
    def test_column_is_read_only(self, sample: Table):
        with pytest.raises(ValueError):
            sample["speed"][0] = 999.0

    def test_missing_column_raises_with_hint(self, sample: Table):
        with pytest.raises(KeyError, match="available"):
            sample["nope"]

    def test_row(self, sample: Table):
        assert sample.row(1) == {"isp": "frontier", "speed": 25.0, "served": True}

    def test_row_negative_index(self, sample: Table):
        assert sample.row(-1)["isp"] == "centurylink"

    def test_row_out_of_range(self, sample: Table):
        with pytest.raises(IndexError):
            sample.row(10)

    def test_iter_rows_round_trip(self, sample: Table):
        rebuilt = Table.from_rows(sample.to_rows())
        assert rebuilt == sample

    def test_contains(self, sample: Table):
        assert "isp" in sample
        assert "nope" not in sample

    def test_construction_copies_input(self):
        source = np.array([1.0, 2.0])
        table = Table({"a": source})
        source[0] = 99.0
        assert table["a"][0] == 1.0


class TestTransformations:
    def test_select_projects_and_orders(self, sample: Table):
        projected = sample.select(["served", "isp"])
        assert projected.column_names == ("served", "isp")

    def test_select_missing_raises(self, sample: Table):
        with pytest.raises(KeyError):
            sample.select(["nope"])

    def test_rename(self, sample: Table):
        renamed = sample.rename({"isp": "provider"})
        assert "provider" in renamed
        assert "isp" not in renamed

    def test_with_column_from_values(self, sample: Table):
        extended = sample.with_column("price", [50.0, 60.0, 70.0, 80.0])
        assert list(extended["price"]) == [50.0, 60.0, 70.0, 80.0]
        assert "price" not in sample  # original untouched

    def test_with_column_broadcast_scalar(self, sample: Table):
        extended = sample.with_column("state", "CA")
        assert set(extended["state"]) == {"CA"}

    def test_with_column_callable(self, sample: Table):
        extended = sample.with_column("fast", lambda t: t["speed"] >= 25.0)
        assert list(extended["fast"]) == [False, True, True, False]

    def test_drop(self, sample: Table):
        assert sample.drop(["served"]).column_names == ("isp", "speed")

    def test_take_gathers(self, sample: Table):
        taken = sample.take([2, 0])
        assert list(taken["speed"]) == [100.0, 10.0]

    def test_mask_filters(self, sample: Table):
        served = sample.mask(sample["served"].astype(bool))
        assert len(served) == 3

    def test_mask_requires_boolean(self, sample: Table):
        with pytest.raises(TypeError):
            sample.mask(np.array([1, 0, 1, 0]))

    def test_mask_length_checked(self, sample: Table):
        with pytest.raises(ValueError):
            sample.mask(np.array([True]))

    def test_filter_predicate(self, sample: Table):
        fast = sample.filter(lambda t: t["speed"] > 10.0)
        assert len(fast) == 2

    def test_where_equal(self, sample: Table):
        att = sample.where_equal(isp="att")
        assert len(att) == 2
        att_served = sample.where_equal(isp="att", served=True)
        assert len(att_served) == 1

    def test_sort_by_single(self, sample: Table):
        ordered = sample.sort_by("speed")
        assert list(ordered["speed"]) == [10.0, 10.0, 25.0, 100.0]

    def test_sort_by_descending(self, sample: Table):
        ordered = sample.sort_by("speed", descending=True)
        assert list(ordered["speed"])[0] == 100.0

    def test_sort_by_multiple_is_stable(self):
        table = Table({"a": [2, 1, 2, 1], "b": ["x", "y", "w", "z"]})
        ordered = table.sort_by(["a", "b"])
        assert list(ordered["a"]) == [1, 1, 2, 2]
        assert list(ordered["b"]) == ["y", "z", "w", "x"]

    def test_head(self, sample: Table):
        assert len(sample.head(2)) == 2
        assert len(sample.head(100)) == 4

    def test_concat(self, sample: Table):
        doubled = sample.concat(sample)
        assert len(doubled) == 8

    def test_concat_schema_mismatch_raises(self, sample: Table):
        with pytest.raises(ValueError, match="schemas"):
            sample.concat(sample.drop(["served"]))

    def test_concat_with_empty(self, sample: Table):
        empty = sample.mask(np.zeros(4, dtype=bool))
        assert sample.concat(empty) == sample

    def test_unique(self, sample: Table):
        assert list(sample.unique("isp")) == ["att", "centurylink", "frontier"]

    def test_value_counts_descending(self, sample: Table):
        counts = sample.value_counts("isp")
        assert counts["att"] == 2
        assert list(counts)[0] == "att"

    def test_equality(self, sample: Table):
        assert sample == sample.take(range(4))
        assert sample != sample.head(2)

class TestSortStability:
    def test_descending_keeps_ties_in_first_seen_order(self):
        """Regression: descending used to reverse the ascending
        permutation wholesale, which also reversed tied rows."""
        table = Table({
            "speed": [10.0, 25.0, 10.0, 25.0, 10.0],
            "row": [0, 1, 2, 3, 4],
        })
        ordered = table.sort_by("speed", descending=True)
        assert list(ordered["speed"]) == [25.0, 25.0, 10.0, 10.0, 10.0]
        assert list(ordered["row"]) == [1, 3, 0, 2, 4]

    def test_descending_multi_key(self):
        table = Table({"a": [1, 2, 1, 2], "b": ["x", "y", "w", "z"]})
        ordered = table.sort_by(["a", "b"], descending=True)
        assert list(ordered["a"]) == [2, 2, 1, 1]
        assert list(ordered["b"]) == ["z", "y", "x", "w"]

    def test_per_key_descending_flags(self):
        table = Table({
            "isp": ["att", "cl", "att", "cl"],
            "speed": [10.0, 25.0, 100.0, 10.0],
        })
        ordered = table.sort_by(["isp", "speed"],
                                descending=[False, True])
        assert list(ordered["isp"]) == ["att", "att", "cl", "cl"]
        assert list(ordered["speed"]) == [100.0, 10.0, 25.0, 10.0]

    def test_descending_flags_length_checked(self):
        table = Table({"a": [1], "b": [2]})
        with pytest.raises(ValueError, match="descending"):
            table.sort_by(["a", "b"], descending=[True])

    def test_descending_strings(self):
        table = Table({"isp": ["att", "frontier", "cl"]})
        ordered = table.sort_by("isp", descending=True)
        assert list(ordered["isp"]) == ["frontier", "cl", "att"]


class TestExactEquality:
    def test_tiny_float_drift_breaks_equality(self):
        """Regression: __eq__ used np.allclose(rtol=1e-5), masking
        exactly the float regressions the byte-equality oracles exist
        to catch."""
        left = Table({"rate": [0.1, 0.2]})
        right = Table({"rate": [0.1, 0.2 + 1e-9]})
        assert left != right
        assert left.approx_equal(right)

    def test_nan_equal_to_nan(self):
        left = Table({"rate": [float("nan"), 1.0]})
        right = Table({"rate": [float("nan"), 1.0]})
        assert left == right
        assert left.approx_equal(right)

    def test_approx_equal_tolerances(self):
        left = Table({"rate": [1.0]})
        assert left.approx_equal(Table({"rate": [1.0 + 1e-9]}))
        assert not left.approx_equal(Table({"rate": [1.1]}))
        assert left.approx_equal(Table({"rate": [1.1]}), atol=0.2)

    def test_approx_equal_requires_table(self):
        with pytest.raises(TypeError):
            Table({"a": [1]}).approx_equal({"a": [1]})
