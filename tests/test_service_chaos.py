"""SIGKILL chaos for the audit daemon: the journal IS the state.

The acceptance scenario, end to end in real OS processes: a
``caf-audit serve`` daemon is killed with SIGKILL mid-campaign, and
``Journal.replay()`` must reconstruct byte-for-byte the completed-
shard state a :class:`~repro.runtime.checkpoint.CheckpointStore`
resume would have loaded after an identical interruption
(:func:`tests.harness.equivalence.assert_journal_replay_equivalent`).
A restarted daemon then finishes the job from the journaled shards
and seals the same logbook digest as an uninterrupted serial run.

The submitted campaign runs paced (``engine_config.pace``) so each
shard takes seconds of wall clock — a deterministic kill window —
while the oracle runs unpaced: the pacing invariant (records are
byte-identical at any pace) is what makes the equivalence assertion
meaningful at all.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.runtime import (
    CheckpointStore,
    campaign_fingerprint,
    plan_shards,
    run_shard,
)
from repro.runtime.cache import content_digest
from repro.runtime.checkpoint import _record_to_json
from repro.runtime.merge import merge_shard_results
from repro.service import Journal, ServiceClient
from repro.service.journal import service_fingerprint

from harness.equivalence import assert_journal_replay_equivalent

pytestmark = pytest.mark.chaos

SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))
SHARDS = 4
# ~3.5s of wall clock per shard on this subset: wide enough that the
# status poller always lands a kill between shard boundaries.
PACE = 0.001

_SRC = str(Path(__file__).resolve().parents[1] / "src")


def campaign_spec(world) -> dict:
    return {"kind": "campaign", "scenario": asdict(world.config),
            "shards": SHARDS, "engine_config": {"pace": PACE},
            **{key: list(value) for key, value in SUBSET.items()}}


def spawn_daemon(journal_dir: Path, socket_path: Path):
    """A real ``caf-audit serve`` process; returns (proc, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--journal", str(journal_dir), "--address", str(socket_path)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=env)
    address = proc.stdout.readline().strip()  # printed once bound
    if not address:
        proc.kill()
        raise RuntimeError("daemon exited before binding")
    return proc, address


def reap(proc) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30)


class TestDaemonSigkill:
    def test_replay_equals_checkpoint_resume_and_job_completes(
            self, world, tmp_path):
        journal_dir = tmp_path / "journal"
        job_id = self._run_and_kill_mid_campaign(world, tmp_path,
                                                 journal_dir)
        completed_indices = self._assert_replay_matches_checkpoint_twin(
            world, tmp_path, journal_dir, job_id)
        self._assert_restart_seals_the_oracle_logbook(
            world, tmp_path, journal_dir, job_id, completed_indices)

    # -- stage 1: the kill -------------------------------------------------

    def _run_and_kill_mid_campaign(self, world, tmp_path, journal_dir):
        proc, address = spawn_daemon(journal_dir, tmp_path / "kill.sock")
        try:
            with ServiceClient(address) as client:
                job_id = client.submit(campaign_spec(world))["job"]
                deadline = time.monotonic() + 120
                while True:
                    state = client.status(job_id)["state"]
                    if (state["status"] == "running"
                            and 1 <= state["shards_completed"] < SHARDS):
                        break
                    assert state["status"] not in ("completed", "failed"), \
                        "campaign finished before the kill landed"
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            reap(proc)
        return job_id

    # -- stage 2: replay ≡ checkpoint resume -------------------------------

    def _assert_replay_matches_checkpoint_twin(self, world, tmp_path,
                                               journal_dir, job_id):
        journal = Journal(journal_dir, service_fingerprint("audit"))
        try:
            # SIGKILL tears at most the tail entry: recovery truncates
            # silently, never quarantines.
            assert not list(journal_dir.glob("**/*.quarantine*"))
            state = journal.replay()
            job = state.jobs[job_id]
            assert job.status == "running"  # mid-flight, as killed
            fingerprint = campaign_fingerprint(
                world.config, None, SUBSET["isps"], SHARDS,
                states=SUBSET["states"], q3_states=SUBSET["q3_states"])
            completed_indices = sorted(state.completed_shards(fingerprint))
            # The status poll saw >= 1 shard, and every shard entry is
            # fsynced before a status response can reflect it — so the
            # replay must hold at least one, and the job was unfinished.
            assert 1 <= len(completed_indices) < SHARDS
            assert job.shards_completed == len(completed_indices)

            # The checkpoint twin: a plain serial campaign interrupted
            # after the same shards, resumed through CheckpointStore.
            # It runs UNPACED — byte equality across the pace gap is
            # the pacing invariant, asserted end to end.
            specs = plan_shards(world, SHARDS, **SUBSET)
            store = CheckpointStore(tmp_path / "ckpt", fingerprint)
            for index in completed_indices:
                store.save_shard(
                    run_shard(world.config, specs[index], world=world))
            replayed = assert_journal_replay_equivalent(
                journal, fingerprint, store)
            assert sorted(replayed) == completed_indices
        finally:
            journal.close()
        return completed_indices

    # -- stage 3: restart finishes from the journal ------------------------

    def _assert_restart_seals_the_oracle_logbook(self, world, tmp_path,
                                                 journal_dir, job_id,
                                                 completed_indices):
        proc, address = spawn_daemon(journal_dir, tmp_path / "again.sock")
        try:
            with ServiceClient(address) as client:
                final = client.wait_for_job(job_id, timeout=300.0)
        finally:
            reap(proc)
        assert final["status"] == "completed", final.get("error")

        specs = plan_shards(world, SHARDS, **SUBSET)
        completed = {spec.index: run_shard(world.config, spec, world=world)
                     for spec in specs}
        collection, q3 = merge_shard_results(world, specs, completed,
                                             **SUBSET)
        oracle = content_digest({
            "q12": [_record_to_json(r) for r in collection.log],
            "q3": [_record_to_json(r) for r in q3.log],
        })
        assert final["result"]["logbook_sha256"] == oracle

        # The restart resumed, not re-ran: exactly one shard-completed
        # entry per shard across both daemon lives.
        journal = Journal(journal_dir, service_fingerprint("audit"))
        try:
            shard_events = [entry.event for entry in journal.entries()
                            if entry.event.get("kind") == "shard-completed"]
            assert sorted(event["index"] for event in shard_events) \
                == list(range(SHARDS))
        finally:
            journal.close()


class TestSubmissionDurability:
    def test_acknowledged_submission_survives_an_instant_kill(
            self, world, tmp_path):
        """fsync-before-ack: a submission the client saw accepted is
        in the journal even if the daemon dies the next instant."""
        journal_dir = tmp_path / "journal"
        proc, address = spawn_daemon(journal_dir, tmp_path / "svc.sock")
        try:
            with ServiceClient(address) as client:
                accepted = client.submit(campaign_spec(world))
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            reap(proc)
        journal = Journal(journal_dir, service_fingerprint("audit"))
        try:
            job = journal.replay().jobs[accepted["job"]]
            assert job.spec["shards"] == SHARDS
        finally:
            journal.close()
