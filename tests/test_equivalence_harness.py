"""Differential-equivalence tests: every backend, byte for byte.

Runs a small campaign under serial / process / async / process+async
and asserts byte-identical merged logbooks, cell-count conservation,
and politeness-cap compliance — across two scenario shapes and two
seeds each, so backend drift cannot hide behind one lucky world. These
are the tests CI's ``pytest -m equivalence`` job runs in isolation.
"""

from __future__ import annotations

import pytest

from harness.equivalence import (
    assert_backends_equivalent,
    assert_incremental_analysis_equivalent,
    assert_panel_backends_equivalent,
    assert_panel_replay_equivalent,
    backend_matrix,
    run_backend,
)
from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.runtime import RuntimeConfig
from repro.synth.churn import ChurnModel
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import build_world

pytestmark = pytest.mark.equivalence

# Keep the campaigns small: one ISP's footprint in two states, one Q3
# state — big enough for replacements, Q3 cable overlap, and real
# interleaving, small enough to run 4 backends x 4 worlds in CI.
SUBSET = dict(isps=("consolidated",), states=("VT", "NH"), q3_states=("UT",))

# Two scenario *shapes* (not just reseeds): the standard tiny world,
# and a coarser-CBG variant that shifts cell sizes and block layouts.
SCENARIO_SHAPES = {
    "tiny": lambda seed: ScenarioConfig.tiny(seed=seed),
    "coarse": lambda seed: ScenarioConfig(
        seed=seed, address_scale=0.004, cbg_size_median=80.0,
        cbg_size_sigma=0.6, max_cbg_size=300, blocks_per_cbg=5),
}
SEEDS = (0, 11)


@pytest.mark.parametrize("shape", sorted(SCENARIO_SHAPES))
@pytest.mark.parametrize("seed", SEEDS)
def test_backends_bit_identical(shape, seed):
    world = build_world(SCENARIO_SHAPES[shape](seed))
    runs = assert_backends_equivalent(world, backend_matrix(), **SUBSET)
    # The harness proved equality; spot-check the campaign was not
    # degenerate (equality over empty logs proves nothing).
    assert runs[0].q12_records > 0
    assert runs[0].q12_cells > 1


def test_async_interleaving_actually_happens(world):
    """The async run must hold >1 session in flight, or it is serial
    with extra steps — and the politeness assertions above would be
    vacuous."""
    config = RuntimeConfig(shards=1, backend="async",
                           max_inflight=MAX_POLITE_WORKERS_PER_ISP + 4)
    run = run_backend(world, config, **SUBSET)
    assert max(run.politeness.values()) > 1
    assert max(run.politeness.values()) <= config.per_shard_isp_cap


def test_politeness_cap_honored_with_inflight_above_cap(world):
    """max_inflight far above the cap: the gate, not the loop bound,
    must be what limits per-storefront concurrency."""
    config = RuntimeConfig(shards=2, backend="async",
                           max_inflight=4 * MAX_POLITE_WORKERS_PER_ISP)
    run = run_backend(world, config, **SUBSET)
    for isp, peak in run.politeness.items():
        assert peak <= MAX_POLITE_WORKERS_PER_ISP, isp


def test_equivalence_holds_with_divided_politeness_budget(world):
    """process+async divides the cap across workers; the division must
    not change a single byte either."""
    runs = [
        run_backend(world, config, **SUBSET)
        for config in (
            RuntimeConfig(shards=4, backend="serial"),
            RuntimeConfig(shards=4, workers=4, backend="process+async",
                          max_inflight=6),
        )
    ]
    assert runs[0].logbook == runs[1].logbook
    assert runs[1].config.per_shard_isp_cap == MAX_POLITE_WORKERS_PER_ISP // 4


# ----------------------------------------------------------------------
# The longitudinal column of the matrix: incremental panel waves must
# be byte-identical to from-scratch re-collection of each evolved world.
# ----------------------------------------------------------------------

@pytest.mark.longitudinal
def test_panel_replay_equivalent_three_waves(world):
    """The acceptance scenario: a 3-wave panel at the default sparse
    churn replays unchanged cells yet reproduces every wave's logbook
    byte for byte."""
    outcomes = assert_panel_replay_equivalent(
        world, model=ChurnModel(cell_rate=0.3), horizons=(1, 2, 3),
        **SUBSET)
    # Non-degenerate: real records, and real incremental savings.
    assert len(outcomes[0].collection.log) > 0
    assert any(o.fresh_q12 + o.fresh_q3
               < o.delta.total_q12 + o.delta.total_q3
               for o in outcomes[1:])


@pytest.mark.longitudinal
def test_panel_replay_equivalent_at_default_churn(world):
    """The default panel churn model (10% of cells per year), three
    waves — the configuration `repro panel` ships with."""
    from repro.longitudinal import DEFAULT_PANEL_CHURN

    assert_panel_replay_equivalent(
        world, model=DEFAULT_PANEL_CHURN, horizons=(1, 2, 3), **SUBSET)


@pytest.mark.longitudinal
def test_panel_replay_equivalent_under_sharded_runtime(world):
    """Delta collections routed through the sharded runtime (the same
    machinery the backend matrix exercises) must merge to the same
    bytes as from-scratch re-collection."""
    assert_panel_replay_equivalent(
        world, model=ChurnModel(cell_rate=0.3), horizons=(1, 2),
        runtime=RuntimeConfig(shards=3, backend="serial"), **SUBSET)


@pytest.mark.longitudinal
@pytest.mark.parametrize("shape", sorted(SCENARIO_SHAPES))
@pytest.mark.parametrize("seed", SEEDS)
def test_panel_incremental_analysis_equivalent(shape, seed):
    """The incremental-analysis acceptance scenario: per-wave
    digest-keyed row folds byte-equal to full recompute, across two
    panel scenario shapes and two seeds each, with real row reuse."""
    world = build_world(SCENARIO_SHAPES[shape](seed))
    outcomes = assert_incremental_analysis_equivalent(
        world, model=ChurnModel(cell_rate=0.3), horizons=(1, 2), **SUBSET)
    # Non-degenerate: real records behind the rates.
    assert len(outcomes[0].collection.log) > 0


@pytest.mark.longitudinal
@pytest.mark.parametrize("shape", sorted(SCENARIO_SHAPES))
@pytest.mark.parametrize("seed", SEEDS)
def test_panel_wave_logbooks_identical_across_backends(shape, seed):
    """Panel wave logbooks must stay byte-identical whichever of the
    five backends runs the delta collections — the longitudinal column
    crossed with the full backend matrix."""
    world = build_world(SCENARIO_SHAPES[shape](seed))
    assert_panel_backends_equivalent(
        world, model=ChurnModel(cell_rate=0.3), horizons=(1,), **SUBSET)


@pytest.mark.longitudinal
def test_panel_replay_equivalent_under_dense_churn(world):
    """Per-address (uncorrelated) churn changes nearly every cell —
    the delta planner must degrade gracefully to ~full re-collection
    and still be byte-exact."""
    assert_panel_replay_equivalent(
        world, model=ChurnModel(), horizons=(1,), expect_replay=False,
        **SUBSET)
