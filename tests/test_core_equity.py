"""Unit tests for repro.core.equity."""

import pytest

from repro.core.equity import EquityAnalysis


@pytest.fixture(scope="module")
def equity(report, world) -> EquityAnalysis:
    return EquityAnalysis(report.audit, world)


class TestEquityAnalysis:
    def test_cbg_table_carries_demographics(self, equity):
        table = equity.cbg_table
        assert "median_income_usd" in table.column_names
        assert "is_rural" in table.column_names
        assert all(income > 0 for income in table["median_income_usd"])

    def test_quartiles_partition_cbgs(self, equity):
        rows = equity.by_income_quartile()
        assert [row.quartile for row in rows] == [1, 2, 3, 4]
        total = sum(row.num_cbgs for row in rows)
        assert total == len(equity.cbg_table)

    def test_quartile_edges_ordered(self, equity):
        rows = equity.by_income_quartile()
        for row in rows:
            assert row.income_low_usd <= row.income_high_usd
        for earlier, later in zip(rows, rows[1:]):
            assert earlier.income_high_usd <= later.income_low_usd + 1e-9

    def test_rates_are_probabilities(self, equity):
        for row in equity.by_income_quartile():
            assert 0.0 <= row.serviceability <= 1.0
            assert 0.0 <= row.compliance <= 1.0
            assert row.compliance <= row.serviceability + 1e-9

    def test_income_correlation_positive(self, equity):
        # Income tracks density, density drives AT&T serviceability, so
        # the audit should show the digital-divide correlation the
        # literature reports.
        result = equity.income_serviceability_correlation()
        assert result.coefficient > 0.0

    def test_rural_urban_gap(self, equity):
        gap = equity.rural_urban_gap()
        assert "rural" in gap
        if "urban" in gap:
            assert gap["urban"] >= gap["rural"] - 0.15

    def test_disparity_ratio_at_least_parity(self, equity):
        assert equity.disparity_ratio() >= 0.8

    def test_quartile_table_shape(self, equity):
        table = equity.quartile_table()
        assert len(table) == 4
        assert "serviceability" in table.column_names
