"""Unit tests for repro.isp.plans and repro.isp.registry."""

import pytest

from repro.isp.plans import (
    BroadbandPlan,
    NO_GUARANTEE_LABELS,
    SPEED_TIER_LABELS,
    carriage_value,
    tier_label_for_speed,
)
from repro.isp.registry import (
    ALL_ISPS,
    BQT_SUPPORTED_ISPS,
    CAF_STUDY_ISPS,
    isp_by_id,
    small_isp,
)


class TestBroadbandPlan:
    def test_carriage_value(self):
        plan = BroadbandPlan("x", 100.0, 10.0, 50.0)
        assert plan.carriage_value == pytest.approx(2.0)

    def test_tier_label_guaranteed(self):
        assert BroadbandPlan("x", 10.0, 1.0, 40.0).tier_label == "10"
        assert BroadbandPlan("x", 50.0, 5.0, 60.0).tier_label == "11-99"

    def test_tier_label_named_no_guarantee(self):
        plan = BroadbandPlan("AT&T Internet Air", 75.0, 10.0, 55.0,
                             is_speed_guaranteed=False)
        assert plan.tier_label == "AT&T Internet Air"

    def test_tier_label_unnamed_no_guarantee_is_unknown(self):
        plan = BroadbandPlan("Mystery", 75.0, 10.0, 55.0,
                             is_speed_guaranteed=False)
        assert plan.tier_label == "Unknown Plan"

    def test_validation(self):
        with pytest.raises(ValueError):
            BroadbandPlan("x", -1.0, 1.0, 50.0)
        with pytest.raises(ValueError):
            BroadbandPlan("x", 10.0, 1.0, 0.0)


class TestTierLabels:
    def test_taxonomy_covers_paper_buckets(self):
        for label in ("0", "AT&T Internet Air", "Frontier Internet",
                      "Unknown Plan", "0.768", "10", "11-99", "100-999",
                      "1000+"):
            assert label in SPEED_TIER_LABELS

    @pytest.mark.parametrize("speed,label", [
        (0.0, "0"),
        (0.5, "0.5"),
        (0.768, "0.768"),
        (1.0, "1"),
        (1.5, "1.5"),
        (3.0, "3"),
        (5.0, "5"),
        (6.0, "6"),
        (7.0, "7"),
        (10.0, "10"),
        (10.5, "11-99"),    # anything above the 10 Mbps floor banded up
        (11.0, "11-99"),
        (99.9, "11-99"),
        (100.0, "100-999"),
        (999.0, "100-999"),
        (1000.0, "1000+"),
        (5000.0, "1000+"),
        (2.0, "1.5"),       # unknown sub-10 value floors down
    ])
    def test_bucketing(self, speed, label):
        assert tier_label_for_speed(speed) == label

    def test_negative_speed_raises(self):
        with pytest.raises(ValueError):
            tier_label_for_speed(-1.0)

    def test_carriage_value_function(self):
        # The FCC's benchmark implies ~0.11 for 10 Mbps at $89.
        assert carriage_value(10.0, 89.0) == pytest.approx(0.112, abs=0.01)
        with pytest.raises(ValueError):
            carriage_value(10.0, 0.0)
        with pytest.raises(ValueError):
            carriage_value(-1.0, 10.0)


class TestRegistry:
    def test_study_isps_are_the_papers_four(self):
        assert {isp.isp_id for isp in CAF_STUDY_ISPS} == {
            "att", "centurylink", "frontier", "consolidated"}

    def test_bqt_supports_six(self):
        assert len(BQT_SUPPORTED_ISPS) == 6
        assert {isp.isp_id for isp in BQT_SUPPORTED_ISPS} >= {
            "xfinity", "spectrum"}

    def test_cable_isps_not_caf_recipients(self):
        assert not isp_by_id("xfinity").is_caf_recipient
        assert not isp_by_id("spectrum").is_caf_recipient

    def test_att_has_slowest_queries(self):
        # Figure 12: AT&T's bot detection makes it slowest and widest.
        att = isp_by_id("att")
        others = [isp for isp in ALL_ISPS if isp.isp_id != "att"]
        assert att.median_query_seconds > max(
            isp.median_query_seconds for isp in others)
        assert att.query_time_sigma > max(
            isp.query_time_sigma for isp in others)

    def test_small_isp_synthesis(self):
        isp = small_isp(17)
        assert isp.isp_id == "smallisp-017"
        assert isp.is_caf_recipient
        assert not isp.bqt_supported

    def test_lookup_small_isp_by_id(self):
        assert isp_by_id("smallisp-042").isp_id == "smallisp-042"

    def test_unknown_isp_raises(self):
        with pytest.raises(KeyError):
            isp_by_id("verizon")

    def test_negative_small_isp_raises(self):
        with pytest.raises(ValueError):
            small_isp(-1)
