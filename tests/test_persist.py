"""Unit tests for repro.persist."""

import pytest

from repro.persist import StudyManifest, StudyStore


@pytest.fixture(scope="module")
def saved_store(report, tmp_path_factory):
    store = StudyStore(tmp_path_factory.mktemp("study"))
    manifest = store.save(report)
    return store, manifest


class TestStudyStore:
    def test_save_writes_all_datasets(self, saved_store):
        store, manifest = saved_store
        for name in store.dataset_names():
            assert store.dataset_path(name).exists(), name
            assert name in manifest.checksums

    def test_manifest_round_trip(self, saved_store):
        store, manifest = saved_store
        loaded = store.load_manifest()
        assert loaded == manifest

    def test_manifest_records_provenance(self, saved_store, world):
        _, manifest = saved_store
        assert manifest.seed == world.config.seed
        assert manifest.states == world.config.states
        assert "serviceability_rate" in manifest.headline

    def test_verify_clean_store(self, saved_store):
        store, _ = saved_store
        assert store.verify() == []

    def test_verify_detects_tampering(self, report, tmp_path):
        store = StudyStore(tmp_path / "tampered")
        store.save(report)
        path = store.dataset_path("audit")
        path.write_text(path.read_text().replace("True", "False", 1))
        assert store.verify() == ["audit"]

    def test_load_round_trips_row_counts(self, saved_store, report):
        store, _ = saved_store
        audit = store.load("audit")
        assert len(audit) == len(report.audit.table)
        q3_blocks = store.load("q3_blocks")
        assert len(q3_blocks) == len(report.monopoly.blocks)

    def test_loaded_audit_reproduces_rates(self, saved_store, report):
        import numpy as np
        store, _ = saved_store
        audit = store.load("audit")
        per_address = float(np.mean(audit["served"].astype(float)))
        original = float(np.mean(
            report.audit.table["served"].astype(float)))
        assert per_address == pytest.approx(original)

    def test_unknown_dataset_raises(self, saved_store):
        store, _ = saved_store
        with pytest.raises(KeyError, match="datasets"):
            store.dataset_path("nope")

    def test_load_missing_raises(self, tmp_path):
        store = StudyStore(tmp_path / "empty")
        with pytest.raises(FileNotFoundError):
            store.load("audit")
        with pytest.raises(FileNotFoundError):
            store.load_manifest()

    def test_manifest_json_stable(self):
        manifest = StudyManifest(
            seed=1, address_scale=0.01, states=("CA",),
            headline={"serviceability_rate": 0.55},
            checksums={"audit": "ab" * 32})
        assert StudyManifest.from_json(manifest.to_json()) == manifest
