"""Tests for repro.obs: tracing, metrics, reports — and the proofs
that observability never touches an output byte.

Four layers:

* **trace unit tests** — deterministic ids, stack/adopted parenting,
  drain/ingest movement, and the damage-tolerant sidecar store;
* **metrics unit tests** — counter/gauge/histogram semantics, the
  commutative merge, drain deltas, and both expositions;
* **report unit tests** — tree assembly (orphans become roots, never
  vanish), self-time, and the critical path;
* **equivalence + chaos** — logbook bytes are identical with
  ``REPRO_TRACE=1`` and without, and a killed worker still yields ONE
  stitched trace whose ``lease.reassign`` span parents the retried
  shard's spans.
"""

from __future__ import annotations

import json

import pytest

from harness.equivalence import canonical_logbook_bytes
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_VERSION,
)
from repro.obs.report import build_tree, critical_path, render_tree, \
    self_seconds
from repro.obs.trace import (
    TRACE_CONTEXT_VERSION,
    TraceBuffer,
    TraceStore,
    derive_span_id,
    derive_trace_id,
    tracing_enabled,
)
from repro.runtime import RuntimeConfig, execute_campaign, plan_shards
from repro.runtime.checkpoint import campaign_fingerprint
from repro.runtime.distributed import run_shards_distributed
from repro.runtime.merge import merge_shard_results

SUBSET = dict(isps=("consolidated",), states=("VT", "NH"),
              q3_states=("UT",))

FP = "a" * 64  # a stand-in campaign fingerprint


@pytest.fixture
def traced(monkeypatch):
    """REPRO_TRACE=1 plus a fresh buffer, restored afterwards."""
    monkeypatch.setenv("REPRO_TRACE", "1")
    buffer = TraceBuffer()
    buffer.configure(FP, site="test")
    return buffer


# ----------------------------------------------------------------------
# trace: identity
# ----------------------------------------------------------------------

class TestIdentity:
    def test_trace_id_is_deterministic(self):
        assert derive_trace_id(FP) == derive_trace_id(FP)
        assert derive_trace_id(FP) != derive_trace_id("b" * 64)
        assert len(derive_trace_id(FP)) == 32

    def test_span_id_varies_by_every_input(self):
        base = derive_span_id("t", "p", "n", 0)
        assert len(base) == 16
        assert derive_span_id("t", "p", "n", 0) == base
        assert derive_span_id("t2", "p", "n", 0) != base
        assert derive_span_id("t", "p2", "n", 0) != base
        assert derive_span_id("t", "p", "n2", 0) != base
        assert derive_span_id("t", "p", "n", 1) != base

    def test_same_campaign_rerun_yields_same_ids(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        ids = []
        for _ in range(2):
            buffer = TraceBuffer()
            buffer.configure(FP)
            with buffer.span("campaign") as outer:
                with buffer.span("shard.run", index=0) as inner:
                    pass
            ids.append((buffer.trace_id, outer.span_id, inner.span_id))
        assert ids[0] == ids[1]

    def test_repeat_campaign_same_process_gets_fresh_span_ids(
            self, traced):
        """Ordinals persist across same-fingerprint re-runs, so a
        repeated campaign's spans never collide with the first run's
        in one accumulated sidecar."""
        with traced.span("campaign") as first:
            pass
        with traced.span("campaign") as second:
            pass
        assert first.span_id != second.span_id


# ----------------------------------------------------------------------
# trace: buffer semantics
# ----------------------------------------------------------------------

class TestTraceBuffer:
    def test_disabled_returns_shared_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert not tracing_enabled()
        buffer = TraceBuffer()
        buffer.configure(FP)
        span_ = buffer.span("anything", shard=3)
        with span_ as entered:
            assert entered.span_id == ""
        assert buffer.snapshot() == []

    def test_unconfigured_buffer_is_noop_even_when_enabled(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        buffer = TraceBuffer()
        with buffer.span("early"):
            pass
        assert buffer.snapshot() == []

    def test_nesting_parents_via_thread_stack(self, traced):
        with traced.span("outer") as outer:
            with traced.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        records = {r["name"]: r for r in traced.snapshot()}
        assert records["outer"]["parent_id"] == ""
        assert records["inner"]["parent_id"] == outer.span_id
        assert records["inner"]["trace_id"] == traced.trace_id

    def test_explicit_parent_wins_over_stack(self, traced):
        with traced.span("outer"):
            with traced.span("graft", parent_id="feedbeef00000000") as g:
                assert g.parent_id == "feedbeef00000000"

    def test_record_shape(self, traced):
        with traced.span("op", shard=7):
            pass
        [record] = traced.snapshot()
        assert record["name"] == "op"
        assert record["site"] == "test"
        assert record["attrs"] == {"shard": 7}
        assert record["duration"] >= 0.0
        assert "error" not in record

    def test_exception_marks_error_and_propagates(self, traced):
        with pytest.raises(ValueError):
            with traced.span("doomed"):
                raise ValueError("boom")
        [record] = traced.snapshot()
        assert record["error"] is True

    def test_adopt_and_clear(self, traced):
        context = {"version": TRACE_CONTEXT_VERSION,
                   "trace_id": "f" * 32, "span_id": "e" * 16}
        assert traced.adopt(context)
        assert traced.trace_id == "f" * 32
        with traced.span("remote.child") as child:
            assert child.parent_id == "e" * 16
        # Invalid/missing context clears adoption and re-derives.
        assert not traced.adopt(None)
        assert traced.trace_id == derive_trace_id(FP)
        with traced.span("local.root") as root:
            assert root.parent_id == ""

    def test_adopt_rejects_future_version(self, traced):
        refused = {"version": TRACE_CONTEXT_VERSION + 1,
                   "trace_id": "f" * 32, "span_id": "e" * 16}
        assert not traced.adopt(refused)
        assert traced.trace_id == derive_trace_id(FP)

    def test_current_context_tracks_stack_top(self, traced):
        outer_context = traced.current_context()
        assert outer_context == {"version": TRACE_CONTEXT_VERSION,
                                 "trace_id": traced.trace_id,
                                 "span_id": ""}
        with traced.span("outer") as outer:
            assert traced.current_context()["span_id"] == outer.span_id

    def test_new_fingerprint_resets_records_and_ordinals(self, traced):
        with traced.span("campaign"):
            pass
        traced.configure("b" * 64)
        assert traced.snapshot() == []
        with traced.span("campaign") as fresh:
            pass
        assert fresh.span_id == derive_span_id(
            derive_trace_id("b" * 64), "", "campaign", 0)

    def test_drain_clears_ingest_filters(self, traced):
        with traced.span("op"):
            pass
        records = traced.drain()
        assert len(records) == 1
        assert traced.snapshot() == []
        traced.ingest(records + ["junk", {"no": "span_id"}, None])
        assert traced.snapshot() == records
        traced.ingest("not-a-list")
        assert traced.snapshot() == records


# ----------------------------------------------------------------------
# trace: sidecar store
# ----------------------------------------------------------------------

class TestTraceStore:
    RECORD = {"trace_id": "t" * 32, "span_id": "s" * 16,
              "parent_id": "", "name": "op", "site": "coordinator",
              "start": 1.0, "duration": 0.5}

    def test_save_load_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path, FP)
        path = store.save_trace("coordinator", [self.RECORD])
        assert path.name == "trace-coordinator.jsonl"
        assert path.parent == tmp_path / FP[:16]
        assert store.load_spans() == [self.RECORD]

    def test_second_save_accumulates(self, tmp_path):
        store = TraceStore(tmp_path, FP)
        store.save_trace("coordinator", [self.RECORD])
        second = dict(self.RECORD, span_id="r" * 16)
        store.save_trace("coordinator", [second])
        assert store.load_spans() == [self.RECORD, second]

    def test_sites_get_separate_files(self, tmp_path):
        store = TraceStore(tmp_path, FP)
        store.save_trace("coordinator", [self.RECORD])
        store.save_trace("worker-123", [dict(self.RECORD,
                                             site="worker-123")])
        files = sorted(p.name for p
                       in store.namespace_directory.glob("trace-*.jsonl"))
        assert files == ["trace-coordinator.jsonl",
                         "trace-worker-123.jsonl"]
        assert len(store.load_spans()) == 2

    def test_hostile_site_name_is_sanitized(self, tmp_path):
        store = TraceStore(tmp_path, FP)
        path = store.save_trace("../../evil site", [self.RECORD])
        assert path.parent == store.namespace_directory
        assert "/" not in path.name.replace("trace-", "", 1)

    def test_damaged_lines_are_skipped_not_fatal(self, tmp_path):
        store = TraceStore(tmp_path, FP)
        path = store.save_trace("coordinator", [self.RECORD])
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw + "{torn json\n", encoding="utf-8")
        assert store.load_spans() == [self.RECORD]

    def test_missing_namespace_is_empty(self, tmp_path):
        assert TraceStore(tmp_path, FP).load_spans() == []


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("shards_total").inc()
        registry.counter("shards_total").inc(3)
        registry.gauge("inflight").set(5.0)
        registry.gauge("inflight").set(2.0)
        registry.histogram("wait_seconds").observe(0.25)
        snapshot = {entry["name"]: entry
                    for entry in registry.snapshot()["metrics"]}
        assert snapshot["shards_total"]["value"] == 4
        assert snapshot["inflight"]["value"] == 2.0
        assert snapshot["wait_seconds"]["count"] == 1
        assert snapshot["wait_seconds"]["sum"] == 0.25

    def test_labels_split_instruments(self):
        registry = MetricsRegistry()
        registry.counter("sessions", isp="a").inc()
        registry.counter("sessions", isp="b").inc(2)
        entries = registry.snapshot()["metrics"]
        assert [(e["labels"], e["value"]) for e in entries] == \
            [({"isp": "a"}, 1), ({"isp": "b"}, 2)]

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_histogram_bucket_edges(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 2.0, 99.0):
            hist.observe(value)
        # Inclusive upper edges: 1.0 lands in bucket 0, 2.0 in bucket 1.
        assert hist.counts == [2, 2, 1]
        assert hist.count == 5

    def test_default_buckets_cover_microseconds_to_minutes(self):
        assert DEFAULT_BUCKETS[0] < 1e-5
        assert DEFAULT_BUCKETS[-1] > 600

    def test_merge_is_commutative(self):
        def loaded(seed):
            registry = MetricsRegistry()
            registry.counter("n").inc(seed)
            registry.gauge("depth").set(float(seed))
            registry.histogram("lat").observe(seed * 0.1)
            return registry

        a, b = loaded(1).snapshot(), loaded(7).snapshot()
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()
        merged = {e["name"]: e for e in ab.snapshot()["metrics"]}
        assert merged["n"]["value"] == 8        # counters add
        assert merged["depth"]["value"] == 7.0  # gauges max
        assert merged["lat"]["count"] == 2      # histograms add

    def test_merge_ignores_future_version_and_junk(self):
        registry = MetricsRegistry()
        registry.merge(None)
        registry.merge({"version": SNAPSHOT_VERSION + 1, "metrics": [
            {"name": "n", "kind": "counter", "labels": {}, "value": 9}]})
        registry.merge({"version": SNAPSHOT_VERSION, "metrics": [
            "junk", {"name": "n", "kind": "alien", "labels": {}},
            {"name": 3, "kind": "counter", "labels": {}}]})
        assert registry.snapshot()["metrics"] == []

    def test_drain_leaves_zeroed_instruments(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(5)
        registry.histogram("lat").observe(1.0)
        first = registry.drain()
        assert {e["name"]: e.get("value", e.get("count"))
                for e in first["metrics"]} == {"n": 5, "lat": 1}
        # Post-drain frames carry only new deltas: no double counting.
        registry.counter("n").inc(2)
        second = registry.drain()
        values = {e["name"]: e.get("value", e.get("count"))
                  for e in second["metrics"]}
        assert values == {"n": 2, "lat": 0}

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", kind="audit").inc(3)
        registry.histogram("lat", bounds=(1.0,)).observe(0.5)
        text = registry.render_prometheus()
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{kind="audit"} 3' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_json_exposition_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        payload = json.loads(registry.render_json())
        assert payload["version"] == SNAPSHOT_VERSION
        assert registry.render_json() == json.dumps(
            payload, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------

def _span(span_id, parent_id, name, duration, site="main", start=0.0):
    return {"trace_id": "t" * 32, "span_id": span_id,
            "parent_id": parent_id, "name": name, "site": site,
            "start": start, "duration": duration}


class TestReport:
    def test_orphans_become_roots_not_silence(self):
        records = [_span("a", "", "root", 2.0),
                   _span("b", "a", "child", 1.0),
                   _span("c", "missing-parent", "orphan", 0.5)]
        roots, children = build_tree(records)
        assert [r["name"] for r in roots] == ["root", "orphan"]
        assert [r["name"] for r in children["a"]] == ["child"]

    def test_self_seconds_subtracts_children_floored(self):
        records = [_span("a", "", "root", 2.0),
                   _span("b", "a", "child", 1.5),
                   _span("c", "a", "child2", 1.0)]
        _, children = build_tree(records)
        assert self_seconds(records[0], children) == 0.0  # floored
        assert self_seconds(records[1], children) == 1.5

    def test_render_tree_shows_hierarchy(self):
        records = [_span("a", "", "campaign", 2.0),
                   _span("b", "a", "shard.run", 1.0, site="worker-1",
                         start=0.1),
                   _span("c", "a", "merge", 0.5, start=0.2)]
        text = render_tree(records)
        lines = text.splitlines()
        assert lines[0].startswith("campaign [main]")
        assert any("└─" in line or "├─" in line for line in lines[1:])
        assert "shard.run [worker-1]" in text
        assert render_tree([]) == "(no spans)"

    def test_critical_path_follows_longest_chain(self):
        records = [_span("a", "", "campaign", 3.0),
                   _span("b", "a", "dispatch", 2.5),
                   _span("c", "a", "plan", 0.1),
                   _span("d", "b", "shard.run", 2.0)]
        path = critical_path(records, top=10)
        assert {r["name"] for r in path} == \
            {"campaign", "dispatch", "shard.run"}
        # Ranked by self-time: the leaf doing the work leads.
        assert path[0]["name"] == "shard.run"
        assert critical_path([], top=3) == []


# ----------------------------------------------------------------------
# the byte contract: tracing on == tracing off
# ----------------------------------------------------------------------

@pytest.mark.equivalence
class TestTracingByteEquivalence:
    def test_serial_bytes_identical_and_sidecar_published(
            self, world, tmp_path, monkeypatch):
        config = RuntimeConfig(shards=2, backend="serial")
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        baseline = canonical_logbook_bytes(
            *execute_campaign(world, config, **SUBSET))

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        traced = canonical_logbook_bytes(
            *execute_campaign(world, config, **SUBSET))
        assert traced == baseline

        fingerprint = campaign_fingerprint(
            world.config, None, SUBSET["isps"], 2,
            states=SUBSET["states"], q3_states=SUBSET["q3_states"])
        spans = TraceStore(tmp_path, fingerprint).load_spans()
        names = {record["name"] for record in spans}
        assert {"campaign", "campaign.plan", "campaign.dispatch",
                "campaign.merge", "shard.run"} <= names
        assert {record["trace_id"] for record in spans} == \
            {derive_trace_id(fingerprint)}

    def test_all_five_backends_bytes_identical_under_tracing(
            self, world, tmp_path, monkeypatch):
        """The acceptance matrix: every execution mode produces the
        same bytes with REPRO_TRACE=1 as the untraced serial run."""
        from harness.equivalence import backend_matrix

        monkeypatch.delenv("REPRO_TRACE", raising=False)
        baseline = canonical_logbook_bytes(*execute_campaign(
            world, RuntimeConfig(shards=3, backend="serial"), **SUBSET))
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        for config in backend_matrix():
            traced = canonical_logbook_bytes(
                *execute_campaign(world, config, **SUBSET))
            assert traced == baseline, (
                f"backend {config.effective_backend} bytes diverged "
                f"under REPRO_TRACE=1")


# ----------------------------------------------------------------------
# chaos: a killed worker still stitches into ONE tree
# ----------------------------------------------------------------------

@pytest.mark.chaos
class TestChaosTraceStitching:
    def test_worker_kill_yields_single_stitched_tree(
            self, world, tmp_path, monkeypatch):
        """The observability acceptance scenario: kill a worker on its
        first lease. The campaign must finish byte-identical (that
        part the distributed chaos suite already proves) AND the trace
        must stitch into one tree where the ``lease.reassign`` span
        parents the retried shard's worker-side spans."""
        from repro.obs.trace import BUFFER, configure_tracing, \
            drain_spans

        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        config = RuntimeConfig(shards=4, workers=2, backend="distributed")
        specs = plan_shards(world, 4, **SUBSET)
        fingerprint = campaign_fingerprint(
            world.config, None, SUBSET["isps"], 4,
            states=SUBSET["states"], q3_states=SUBSET["q3_states"])
        configure_tracing(fingerprint, site="coordinator")
        drain_spans()  # start from a clean buffer

        completed = {}
        with BUFFER.span("campaign.dispatch", shards=4):
            run_shards_distributed(
                world, specs, None, None, 2, config,
                config.per_shard_isp_cap_for(len(specs)),
                lambda result: completed.__setitem__(result.index,
                                                     result),
                first_worker_extra_args=("--die-after", "0"))
        assert sorted(completed) == [0, 1, 2, 3]

        spans = drain_spans()
        by_id = {record["span_id"]: record for record in spans}

        # ONE trace across coordinator and surviving workers.
        assert {record["trace_id"] for record in spans} == \
            {derive_trace_id(fingerprint)}
        sites = {record["site"] for record in spans}
        assert "coordinator" in sites
        assert any(site.startswith("worker-") for site in sites)

        # The kill produced a reassign span, parented inside the
        # dispatch, and the retried shard's spans hang under IT.
        reassigns = [r for r in spans if r["name"] == "lease.reassign"]
        assert reassigns, "worker kill must record a lease.reassign span"
        reassign_ids = {r["span_id"] for r in reassigns}
        retried = [r for r in spans
                   if r["name"] == "shard.run"
                   and r["parent_id"] in reassign_ids]
        assert retried, ("the reassigned shard's worker spans must "
                         "parent under the lease.reassign span")
        for record in reassigns:
            parent = by_id.get(record["parent_id"])
            assert parent is not None and \
                parent["name"] == "campaign.dispatch"

        # Every span's parent resolves (or is a root): one stitched
        # tree, not a forest of lost parents.
        roots, _ = build_tree(spans)
        assert [r["name"] for r in roots] == ["campaign.dispatch"]

        # And the byte contract held through the chaos.
        serial = canonical_logbook_bytes(*execute_campaign(
            world, RuntimeConfig(shards=4, backend="serial"), **SUBSET))
        collection, q3 = merge_shard_results(
            world, specs, completed, policy=None, **SUBSET)
        assert canonical_logbook_bytes(collection, q3) == serial
