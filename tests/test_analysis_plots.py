"""Unit tests for repro.analysis.plots."""

import numpy as np
import pytest

from repro.analysis.plots import ascii_bars, ascii_cdf
from repro.stats.ecdf import ECDF


class TestAsciiCdf:
    def _series(self):
        return {"speeds": ECDF([1.0, 10.0, 100.0, 1000.0]).series()}

    def test_renders_markers_and_axes(self):
        text = ascii_cdf(self._series())
        assert "1" in text
        assert "1=speeds" in text
        assert "+" in text

    def test_title(self):
        assert ascii_cdf(self._series(), title="Fig").startswith("Fig")

    def test_log_axis(self):
        text = ascii_cdf(self._series(), log_x=True)
        assert "log10(x)" in text

    def test_multiple_series_legend(self):
        series = {
            "caf": ECDF([10.0, 20.0]).series(),
            "monopoly": ECDF([5.0, 15.0]).series(),
        }
        text = ascii_cdf(series)
        assert "1=caf" in text
        assert "2=monopoly" in text

    def test_constant_series_does_not_crash(self):
        text = ascii_cdf({"flat": ECDF([5.0, 5.0, 5.0]).series()})
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_cdf({})
        with pytest.raises(ValueError):
            ascii_cdf(self._series(), width=5)
        too_many = {f"s{i}": ECDF([1.0]).series() for i in range(10)}
        with pytest.raises(ValueError):
            ascii_cdf(too_many)
        with pytest.raises(ValueError):
            ascii_cdf({"neg": (np.array([-1.0]), np.array([1.0]))},
                      log_x=True)


class TestAsciiBars:
    def test_proportional_lengths(self):
        text = ascii_bars({"att": 0.25, "centurylink": 1.0}, width=20,
                          maximum=1.0)
        att_line, cl_line = text.splitlines()
        assert att_line.count("█") < cl_line.count("█")
        assert cl_line.count("█") == 20

    def test_values_printed(self):
        text = ascii_bars({"x": 0.5}, value_format=".0%")
        assert "50%" in text

    def test_clipping_above_maximum(self):
        text = ascii_bars({"x": 5.0}, width=10, maximum=1.0)
        assert text.count("█") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars({})
        with pytest.raises(ValueError):
            ascii_bars({"x": 1.0}, maximum=0.0)
