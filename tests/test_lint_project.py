"""Whole-program analyzer tests: project-context resolution, taint
propagation, the fact cache, SARIF output, and the new CLI flags."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import render_sarif, run_scan, scan_paths
from repro.lint.engine import _scan_module, source_digest
from repro.lint.project import FunctionNode, build_project

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def _project(tmp_path, files: dict[str, str]):
    """Write sources, run phase 1 on each, build the project view."""
    modules = {}
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        scan = _scan_module(path, relpath, source, source_digest(source))
        assert scan.facts is not None, relpath
        modules[relpath] = scan.facts
    return build_project(modules)


# ----------------------------------------------------------------------
# import-graph resolution
# ----------------------------------------------------------------------

def test_resolve_module_by_dotted_suffix(tmp_path):
    # The scan root sits above the package root: "app.io" must still
    # find src/app/io.py even though its dotted path is "src.app.io".
    project = _project(tmp_path, {
        "src/app/io.py": "def save(x):\n    return x\n",
        "src/app/main.py": "import app.io\n",
    })
    assert project.resolve_module("app.io", "src/app/main.py") \
        == "src/app/io.py"
    assert project.resolve_module("src.app.io", "src/app/main.py") \
        == "src/app/io.py"
    assert project.resolve_module("app.nope", "src/app/main.py") is None


def test_resolve_module_relative_import(tmp_path):
    project = _project(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": "from .b import helper\n",
        "pkg/b.py": "def helper():\n    return 1\n",
    })
    assert project.resolve_module(".b", "pkg/a.py") == "pkg/b.py"
    resolved = project.resolve_symbol("pkg/a.py", "helper")
    assert resolved == ("function", "pkg/b.py", "helper")


def test_ambiguous_suffix_resolves_to_nothing(tmp_path):
    # Two scanned modules both end in ".util": refusing to guess beats
    # attributing taint to the wrong file.
    project = _project(tmp_path, {
        "one/util.py": "def f():\n    return 1\n",
        "two/util.py": "def f():\n    return 2\n",
        "main.py": "import util\n",
    })
    assert project.resolve_module("util", "main.py") is None


# ----------------------------------------------------------------------
# call-graph dispatch
# ----------------------------------------------------------------------

def test_resolve_call_self_method_dispatch(tmp_path):
    project = _project(tmp_path, {
        "svc.py": ("class Service:\n"
                   "    def run(self):\n"
                   "        return self.helper()\n"
                   "    def helper(self):\n"
                   "        return 1\n"),
    })
    caller = project.modules["svc.py"].functions["Service.run"]
    node = project.resolve_call("svc.py", caller, "self.helper")
    assert node == FunctionNode("svc.py", "Service.helper")


def test_resolve_call_through_typed_attribute(tmp_path):
    # __init__ types self._journal; self._journal.append then
    # dispatches into Journal.append across the module boundary.
    project = _project(tmp_path, {
        "journal.py": ("class Journal:\n"
                       "    def append(self, entry):\n"
                       "        return entry\n"),
        "svc.py": ("from journal import Journal\n"
                   "class Service:\n"
                   "    def __init__(self):\n"
                   "        self._journal = Journal()\n"
                   "    def record(self, entry):\n"
                   "        return self._journal.append(entry)\n"),
    })
    caller = project.modules["svc.py"].functions["Service.record"]
    node = project.resolve_call("svc.py", caller, "self._journal.append")
    assert node == FunctionNode("journal.py", "Journal.append")


def test_return_taint_propagates_across_modules(tmp_path):
    project = _project(tmp_path, {
        "clock.py": ("import time\n"
                     "def now():\n"
                     "    return time.time()\n"),
        "use.py": ("from clock import now\n"
                   "def stamp():\n"
                   "    return now()\n"
                   "def control_flow_only():\n"
                   "    if now() > 0:\n"
                   "        return 1\n"
                   "    return 0\n"),
    })
    tainted = project.return_taint[
        FunctionNode("use.py", "stamp").key]
    assert "wall_clock" in tainted
    # The witness chain names every hop for the finding message.
    assert tainted["wall_clock"][0] == "stamp"
    assert "now" in tainted["wall_clock"][1]
    # Clock used only for control flow never taints the return value.
    assert FunctionNode("use.py", "control_flow_only").key \
        not in project.return_taint


# ----------------------------------------------------------------------
# fact cache
# ----------------------------------------------------------------------

def _write_tree(tmp_path) -> Path:
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "a.py").write_text("A = 1\n", encoding="utf-8")
    (tree / "b.py").write_text("B = 2\n", encoding="utf-8")
    (tree / "c.py").write_text("C = 3\n", encoding="utf-8")
    return tree


def test_fact_cache_warm_rescan_skips_parsing(tmp_path):
    tree = _write_tree(tmp_path)
    cache = tmp_path / "facts.json"
    cold = run_scan([tree], root=tree, cache_path=cache)
    assert (cold.scanned_modules, cold.cached_modules) == (3, 0)
    warm = run_scan([tree], root=tree, cache_path=cache)
    assert (warm.scanned_modules, warm.cached_modules) == (0, 3)
    assert warm.findings == cold.findings


def test_fact_cache_invalidates_on_edit(tmp_path):
    tree = _write_tree(tmp_path)
    cache = tmp_path / "facts.json"
    run_scan([tree], root=tree, cache_path=cache)
    (tree / "b.py").write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n", encoding="utf-8")
    warm = run_scan([tree], root=tree, cache_path=cache)
    # Only the edited module went cold — and its new finding surfaces.
    assert (warm.scanned_modules, warm.cached_modules) == (1, 2)
    assert [f.rule for f in warm.findings] == ["DET103"]


def test_corrupt_cache_degrades_to_cold_scan(tmp_path):
    tree = _write_tree(tmp_path)
    cache = tmp_path / "facts.json"
    cache.write_text("{not json", encoding="utf-8")
    result = run_scan([tree], root=tree, cache_path=cache)
    assert (result.scanned_modules, result.cached_modules) == (3, 0)


def test_parallel_scan_matches_serial(tmp_path):
    # Findings (and their order) are identical whether phase 1 runs
    # inline or across worker processes.
    tree = tmp_path / "tree"
    tree.mkdir()
    for stem in ("det101", "det103", "obs501"):
        source = (FIXTURES / f"{stem}_pos.py").read_text(encoding="utf-8")
        (tree / f"{stem}.py").write_text(source, encoding="utf-8")
    serial = scan_paths([tree], root=tree, jobs=1)
    parallel = scan_paths([tree], root=tree, jobs=2)
    assert serial == parallel
    assert serial


def test_no_project_skips_project_rules():
    target = FIXTURES / "proto404_pos"
    assert {f.rule for f in scan_paths([target], root=target)} \
        == {"PROTO404"}
    assert scan_paths([target], root=target, project=False) == []


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------

def test_sarif_shape_and_content():
    findings = scan_paths([FIXTURES / "det102_pos.py"])
    assert findings
    payload = json.loads(render_sarif(findings, baselined=2))
    assert payload["version"] == "2.1.0"
    assert payload["$schema"].endswith("sarif-2.1.0.json")
    (run,) = payload["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {entry["id"] for entry in driver["rules"]}
    assert "DET102" in rule_ids
    for entry in driver["rules"]:
        assert entry["shortDescription"]["text"]
        assert entry["fullDescription"]["text"]
    assert run["properties"]["baselined"] == 2
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] == "error"
        assert result["message"]["text"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1
        assert location["physicalLocation"]["artifactLocation"]["uri"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_sarif_format(capsys):
    rc = main(["lint", "--format", "sarif",
               str(FIXTURES / "det102_pos.py")])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    fired = {r["ruleId"] for r in payload["runs"][0]["results"]}
    assert fired == {"DET102"}


def test_cli_fix_suppressions_rewrites_and_rescans(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(
        "X = 1  # repro-lint: disable=DET101\n"
        "Y = 2\n", encoding="utf-8")
    # Without the fixer: the dead suppression is a finding.
    assert main(["lint", str(target)]) == 1
    assert "LINT001" in capsys.readouterr().out
    # With it: the directive is deleted and the rescan comes back clean.
    rc = main(["lint", "--fix-suppressions", str(target)])
    captured = capsys.readouterr()
    assert rc == 0
    assert "removed dead suppressions in 1 file(s)" in captured.err
    assert target.read_text(encoding="utf-8") == "X = 1\nY = 2\n"


def test_cli_fix_suppressions_keeps_live_ids(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import time\n"
        "def stamp():\n"
        "    return time.time()"
        "  # repro-lint: disable=DET103,DET101\n", encoding="utf-8")
    # DET103 is earning its keep; only the dead DET101 goes.
    rc = main(["lint", "--fix-suppressions", str(target)])
    assert rc == 0
    assert "disable=DET103" in target.read_text(encoding="utf-8")
    assert "DET101" not in target.read_text(encoding="utf-8")


def test_cli_no_project_flag(capsys):
    target = str(FIXTURES / "proto404_pos")
    assert main(["lint", target]) == 1
    capsys.readouterr()
    assert main(["lint", "--no-project", target]) == 0


def test_cli_cache_flag_round_trip(tmp_path, capsys):
    tree = _write_tree(tmp_path)
    cache = tmp_path / "facts.json"
    argv = ["lint", "--cache", str(cache), str(tree)]
    assert main(argv) == 0
    assert cache.is_file()
    first = capsys.readouterr().out
    assert main(argv) == 0
    assert capsys.readouterr().out == first


def test_cli_jobs_flag(tmp_path, capsys):
    tree = _write_tree(tmp_path)
    assert main(["lint", "--jobs", "2", str(tree)]) == 0
    assert "0 findings" in capsys.readouterr().out
