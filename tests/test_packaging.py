"""Packaging smoke tests: the public surface a release promises."""

import importlib

import pytest


class TestPublicSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.10.0"

    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module", [
        "repro.addresses", "repro.analysis", "repro.bead", "repro.bqt",
        "repro.core", "repro.fcc", "repro.geo", "repro.isp",
        "repro.lint",
        "repro.longitudinal", "repro.obs", "repro.persist", "repro.stats",
        "repro.synth", "repro.tabular", "repro.usac",
    ])
    def test_subpackage_all_exports_resolve(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} lacks a module docstring"
        for name in getattr(imported, "__all__", []):
            assert getattr(imported, name, None) is not None, \
                f"{module}.{name}"

    def test_cli_entry_point(self):
        from repro.cli import main

        assert callable(main)

    def test_main_module_exists(self):
        assert importlib.util.find_spec("repro.__main__") is not None
