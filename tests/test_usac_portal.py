"""Unit tests for repro.usac.portal."""

import pytest

from repro.usac.portal import OpenDataPortal, PortalQuery


@pytest.fixture(scope="module")
def portal(world) -> OpenDataPortal:
    return OpenDataPortal(world.caf_map)


class TestPortalQuery:
    def test_where_accumulates(self):
        query = PortalQuery().where(isp_id="att").where(
            state_abbreviation="CA")
        assert query.filters == {"isp_id": "att",
                                 "state_abbreviation": "CA"}

    def test_next_page_advances_offset(self):
        query = PortalQuery(limit=100)
        assert query.next_page().offset == 100
        assert query.next_page().next_page().offset == 200

    def test_validation(self):
        with pytest.raises(ValueError, match="filterable"):
            PortalQuery(filters={"latitude": 1.0})
        with pytest.raises(ValueError, match="orderable"):
            PortalQuery(order_by="nope")
        with pytest.raises(ValueError):
            PortalQuery(offset=-1)
        with pytest.raises(ValueError):
            PortalQuery(limit=0)


class TestOpenDataPortal:
    def test_filters_match_dataset_indexes(self, portal, world):
        count = portal.count(isp_id="frontier")
        assert count == len(world.caf_map.for_isp("frontier"))

    def test_combined_filters(self, portal, world):
        count = portal.count(isp_id="att", state_abbreviation="MS")
        assert count == len(world.caf_map.for_isp_state("att", "MS"))
        assert count > 0

    def test_pagination_covers_everything_once(self, portal):
        query = PortalQuery(filters={"isp_id": "consolidated"}, limit=17)
        ids = [record.address_id for record in portal.fetch_all(query)]
        assert len(ids) == len(set(ids))
        assert len(ids) == portal.count(isp_id="consolidated")

    def test_page_metadata(self, portal):
        total = portal.count(isp_id="att")
        page = portal.fetch(PortalQuery(filters={"isp_id": "att"},
                                        limit=min(10, total)))
        assert page.total_matching == total
        assert page.has_more == (total > 10)

    def test_ordering(self, portal):
        query = PortalQuery(filters={"isp_id": "centurylink"},
                            order_by="certified_download_mbps",
                            descending=True, limit=50)
        speeds = [r.certified_download_mbps
                  for r in portal.fetch(query).records]
        assert speeds == sorted(speeds, reverse=True)

    def test_stable_default_order(self, portal):
        query = PortalQuery(filters={"isp_id": "att"}, limit=20)
        first = [r.address_id for r in portal.fetch(query).records]
        second = [r.address_id for r in portal.fetch(query).records]
        assert first == second == sorted(first)

    def test_to_table(self, portal):
        query = PortalQuery(filters={"isp_id": "consolidated"})
        table = portal.to_table(query)
        assert len(table) == portal.count(isp_id="consolidated")
        assert "certified_download_mbps" in table.column_names

    def test_empty_result_table(self, portal):
        table = portal.to_table(PortalQuery(
            filters={"state_abbreviation": "AK"}))
        assert len(table) == 0
