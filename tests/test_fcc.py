"""Unit tests for the repro.fcc package."""

import pytest

from repro.fcc import (
    AvailabilityRecord,
    BroadbandMap,
    CAF_MAX_RATE_USD,
    CafObligations,
    FabricRecord,
    Form477,
    generate_urban_rate_survey,
    plan_is_rate_compliant,
    plan_is_service_compliant,
)
from repro.fcc.urban_rate_survey import SURVEY_TIERS, UrbanRateSurvey
from repro.isp.plans import BroadbandPlan


def plan(download=10.0, upload=1.0, price=50.0, guaranteed=True):
    return BroadbandPlan(
        name="test",
        download_mbps=download,
        upload_mbps=upload,
        monthly_price_usd=price,
        is_speed_guaranteed=guaranteed,
    )


class TestCafObligations:
    def test_compliant_plan(self):
        obligations = CafObligations()
        assert obligations.fully_compliant(plan())

    def test_slow_download_fails(self):
        assert not CafObligations().service_compliant(plan(download=5.0))

    def test_slow_upload_fails(self):
        assert not CafObligations().service_compliant(plan(upload=0.5))

    def test_no_guarantee_fails_regardless_of_speed(self):
        fast_but_unguaranteed = plan(download=100.0, upload=10.0,
                                     guaranteed=False)
        assert not CafObligations().service_compliant(fast_but_unguaranteed)

    def test_rate_cap(self):
        assert CafObligations().rate_compliant(plan(price=89.0))
        assert not CafObligations().rate_compliant(plan(price=89.01))

    def test_module_level_shortcuts(self):
        assert plan_is_service_compliant(plan())
        assert plan_is_rate_compliant(plan(price=CAF_MAX_RATE_USD))

    def test_invalid_obligations_raise(self):
        with pytest.raises(ValueError):
            CafObligations(min_download_mbps=0.0)
        with pytest.raises(ValueError):
            CafObligations(max_rate_usd=-1.0)


class TestUrbanRateSurvey:
    @pytest.fixture(scope="class")
    def survey(self) -> UrbanRateSurvey:
        return generate_urban_rate_survey(seed=0)

    def test_benchmark_matches_fcc_2024_cap(self, survey: UrbanRateSurvey):
        # Calibrated: mean $60 + 2 × $14.5 = $89.
        assert survey.benchmark(10.0) == pytest.approx(89.0, abs=0.5)

    def test_benchmark_is_mean_plus_two_sigma(self, survey: UrbanRateSurvey):
        import numpy as np
        prices = np.asarray(survey.tier_prices(10.0))
        expected = prices.mean() + 2 * prices.std(ddof=0)
        assert survey.benchmark(10.0) == pytest.approx(expected)

    def test_tier_mapping(self):
        assert UrbanRateSurvey.tier_for(10.0) == 10.0
        assert UrbanRateSurvey.tier_for(24.0) == 10.0
        assert UrbanRateSurvey.tier_for(25.0) == 25.0
        assert UrbanRateSurvey.tier_for(5000.0) == 1000.0
        assert UrbanRateSurvey.tier_for(1.0) == 10.0  # clamped to lowest

    def test_tier_for_invalid_raises(self):
        with pytest.raises(ValueError):
            UrbanRateSurvey.tier_for(0.0)

    def test_benchmarks_grow_with_tier(self, survey: UrbanRateSurvey):
        benchmarks = [survey.benchmark(t) for t in SURVEY_TIERS]
        assert benchmarks == sorted(benchmarks)

    def test_average_price_below_benchmark(self, survey: UrbanRateSurvey):
        for tier in SURVEY_TIERS:
            assert survey.average_price(tier) < survey.benchmark(tier)

    def test_deterministic(self):
        a = generate_urban_rate_survey(seed=5)
        b = generate_urban_rate_survey(seed=5)
        assert a.benchmark(100.0) == b.benchmark(100.0)

    def test_too_few_observations_raise(self):
        with pytest.raises(ValueError):
            generate_urban_rate_survey(observations_per_tier=1)


def _availability(isp, block="060371234561001"):
    return AvailabilityRecord(isp_id=isp, block_geoid=block,
                              technology="dsl", max_download_mbps=25.0,
                              max_upload_mbps=3.0)


class TestForm477:
    def test_indexing(self):
        form = Form477([_availability("att"), _availability("frontier"),
                        _availability("att", block="060371234561002")])
        assert len(form) == 3
        assert form.providers_in_block("060371234561001") == {"att", "frontier"}
        assert form.blocks_for_isp("att") == [
            "060371234561001", "060371234561002"]

    def test_exclusivity_filter(self):
        form = Form477([
            _availability("att", "060371234561001"),
            _availability("xfinity", "060371234561001"),
            _availability("att", "060371234561002"),
            _availability("smallisp-001", "060371234561002"),
        ])
        exclusive = form.blocks_served_exclusively_by({"att", "xfinity"})
        assert exclusive == ["060371234561001"]

    def test_exclusivity_empty_set_raises(self):
        with pytest.raises(ValueError):
            Form477().blocks_served_exclusively_by(set())

    def test_record_validation(self):
        with pytest.raises(ValueError):
            _availability("att", block="123")


class TestBroadbandMap:
    def test_provider_rollup(self):
        nbm = BroadbandMap([
            FabricRecord("loc-1", "060371234561001", ("att",)),
            FabricRecord("loc-2", "060371234561001", ("xfinity", "att")),
        ])
        assert nbm.providers_in_block("060371234561001") == {"att", "xfinity"}
        assert len(nbm.locations_in_block("060371234561001")) == 2

    def test_exclusivity_filter(self):
        nbm = BroadbandMap([
            FabricRecord("loc-1", "060371234561001", ("att",)),
            FabricRecord("loc-2", "060371234561002", ("att", "smallisp-002")),
        ])
        assert nbm.blocks_served_exclusively_by({"att"}) == ["060371234561001"]

    def test_consistency_check(self):
        form = Form477([_availability("att")])
        consistent = BroadbandMap(
            [FabricRecord("loc-1", "060371234561001", ("att",))])
        assert consistent.consistent_with_form477(form) == []
        inconsistent = BroadbandMap(
            [FabricRecord("loc-1", "060371234561001", ("frontier",))])
        assert inconsistent.consistent_with_form477(form) == ["060371234561001"]


class TestConsistencyOrderDeterminism:
    """The union-iteration at broadband_map.py must not leak hash
    order: output is identical under different PYTHONHASHSEED values
    (satellite of ISSUE 8)."""

    _SCRIPT = (
        "import json\n"
        "from repro.fcc.broadband_map import BroadbandMap, FabricRecord\n"
        "from repro.fcc.form477 import AvailabilityRecord, Form477\n"
        "blocks = ['0603712345610%02d' % i for i in range(40)]\n"
        "nbm = BroadbandMap([FabricRecord('loc-%d' % i, b, ('att',))\n"
        "                    for i, b in enumerate(blocks[:30])])\n"
        "form = Form477([AvailabilityRecord(isp_id='frontier',\n"
        "                                   block_geoid=b,\n"
        "                                   technology='dsl',\n"
        "                                   max_download_mbps=25.0,\n"
        "                                   max_upload_mbps=3.0)\n"
        "                for b in blocks[10:]])\n"
        "print(json.dumps(nbm.consistent_with_form477(form)))\n"
    )

    def _run(self, hashseed: str) -> str:
        import os
        import pathlib
        import subprocess
        import sys

        src = os.fspath(
            pathlib.Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hashseed
        proc = subprocess.run([sys.executable, "-c", self._SCRIPT],
                              env=env, capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_output_order_stable_across_hash_seeds(self):
        import json

        first = self._run("0")
        second = self._run("1")
        third = self._run("42")
        assert first == second == third
        # Every block disagrees (att-only, att-vs-frontier, or
        # frontier-only), so the result is the full sorted union.
        expected = sorted("0603712345610%02d" % i for i in range(40))
        assert json.loads(first) == expected
