"""Unit tests for repro.core.oversight."""

import pytest

from repro.core.oversight import (
    compare_oversight,
    detection_power,
    required_sample_for_power,
)


class TestDetectionPower:
    def test_zero_sample_never_detects(self):
        assert detection_power(0, 0.5) == 0.0

    def test_zero_violation_never_detected(self):
        assert detection_power(1000, 0.0) == 0.0

    def test_monotone_in_sample_size(self):
        powers = [detection_power(n, 0.05) for n in (1, 10, 50, 200)]
        assert powers == sorted(powers)

    def test_known_value(self):
        # P(at least one bad in 10 draws at 10%) = 1 - 0.9^10.
        assert detection_power(10, 0.1) == pytest.approx(1 - 0.9**10)

    def test_validation(self):
        with pytest.raises(ValueError):
            detection_power(-1, 0.5)
        with pytest.raises(ValueError):
            detection_power(10, 1.5)


class TestRequiredSample:
    def test_round_trip_with_power(self):
        n = required_sample_for_power(0.1, power=0.95)
        assert detection_power(n, 0.1) >= 0.95
        assert detection_power(n - 1, 0.1) < 0.95

    def test_rarer_violations_need_bigger_samples(self):
        assert required_sample_for_power(0.01) > \
            required_sample_for_power(0.30)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_sample_for_power(0.0)
        with pytest.raises(ValueError):
            required_sample_for_power(0.1, power=1.0)


class TestCompareOversight:
    @pytest.fixture(scope="class")
    def comparison(self, world):
        return compare_oversight(world, isp_id="att",
                                 review_fractions=(0.01, 0.05))

    def test_truth_in_plausible_band(self, comparison):
        # AT&T's calibrated unserved fraction sits near 1 - 0.315.
        assert 0.45 < comparison.truth_unserved_fraction < 0.85

    def test_external_audit_close_to_truth(self, comparison):
        assert comparison.audit_error_pp < 12.0

    def test_reviews_have_detection_power_column(self, comparison):
        for row in comparison.review_rows.iter_rows():
            assert 0.0 <= row["detection_power"] <= 1.0
            assert row["sample_size"] > 0

    def test_render(self, comparison):
        text = comparison.render()
        assert "att" in text
        assert "detection power" in text

    def test_empty_fractions_raise(self, world):
        with pytest.raises(ValueError):
            compare_oversight(world, review_fractions=())
