"""Shared fixtures.

World construction and the full audit are the expensive steps, so they
are session-scoped: the whole suite shares one tiny world and one audit
report. Tests that need different scenario parameters build their own
(see the ``build_world`` calls in test_synth_world.py).
"""

from __future__ import annotations

import pytest

from repro.analysis.context import ExperimentContext
from repro.core.pipeline import AuditReport, run_full_audit
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World, build_world
from repro.usac.generator import (
    NationalDataset,
    NationalDatasetConfig,
    generate_national_dataset,
)


@pytest.fixture(scope="session")
def tiny_config() -> ScenarioConfig:
    """The standard tiny scenario."""
    return ScenarioConfig.tiny()


@pytest.fixture(scope="session")
def world(tiny_config: ScenarioConfig) -> World:
    """One tiny world shared across the suite."""
    return build_world(tiny_config)


@pytest.fixture(scope="session")
def report(world: World) -> AuditReport:
    """The full audit over the shared world."""
    return run_full_audit(world=world)


@pytest.fixture(scope="session")
def national() -> NationalDataset:
    """A small national CAF Map dataset."""
    return generate_national_dataset(NationalDatasetConfig(scale=0.002))


@pytest.fixture(scope="session")
def context(world: World, report: AuditReport,
            national: NationalDataset) -> ExperimentContext:
    """An experiment context pre-populated with the shared objects."""
    ctx = ExperimentContext.at_scale("tiny")
    ctx._world = world
    ctx._report = report
    ctx._national = national
    return ctx
