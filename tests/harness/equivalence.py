"""Differential-equivalence harness for the campaign backends.

"Bit-identical under every backend" is a load-bearing invariant: the
analyses trust that sharding, process pools, asyncio interleaving,
and socket-leased distributed workers are pure execution details that
cannot perturb a single record. This
harness makes the invariant checkable as a black box: run the *same*
campaign under several :class:`~repro.runtime.executor.RuntimeConfig`
backends, serialize each run's merged logbooks to canonical bytes, and
assert

* **byte equality** — every backend's merged logbook is byte-for-byte
  the reference (serial) logbook;
* **cell-count conservation** — each run visits exactly the canonical
  cell list, and the per-shard record counts sum to the merged count
  (nothing dropped, nothing duplicated in the merge);
* **politeness** — each shard's per-ISP concurrency high-water mark
  stays within its budget, and the fleet-wide product never exceeds
  ``MAX_POLITE_WORKERS_PER_ISP``.

The longitudinal analogue (:func:`assert_panel_replay_equivalent`)
extends the matrix in the time dimension: a panel wave's merged
logbook — replayed unchanged cells plus freshly queried changed cells
— must be byte-identical to a from-scratch re-collection of the same
evolved world, while actually replaying (the incremental path must
not degenerate into a quiet full re-query).
:func:`assert_panel_backends_equivalent` crosses the two matrices —
the same panel's wave logbooks byte-identical under every backend —
and :func:`assert_incremental_analysis_equivalent` covers the third
layer: each wave's digest-keyed row-fold *analysis* byte-equal to a
full recompute from the merged logbook, while actually reusing rows.

The serialization reuses the checkpoint codec, which round-trips
floats by shortest ``repr`` — so byte equality here really is record
equality, elapsed-seconds included.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.bqt.campaign import MAX_POLITE_WORKERS_PER_ISP
from repro.core.collection import CollectionCampaign, collect_q3_dataset
from repro.longitudinal import PanelCampaign, WaveOutcome
from repro.runtime import RuntimeConfig, execute_campaign, enumerate_q12_cells
from repro.runtime.checkpoint import _record_to_json, _shard_to_json
from repro.runtime.shards import DEFAULT_ISPS
from repro.synth.churn import ChurnModel, churned_world
from repro.synth.world import World

__all__ = [
    "BackendRun",
    "backend_matrix",
    "canonical_analysis_bytes",
    "canonical_logbook_bytes",
    "canonical_shard_state_bytes",
    "run_backend",
    "assert_backends_equivalent",
    "assert_incremental_analysis_equivalent",
    "assert_journal_replay_equivalent",
    "assert_panel_backends_equivalent",
    "assert_panel_replay_equivalent",
    "scratch_wave_bytes",
]


def backend_matrix(
    shards: int = 3,
    workers: int = 2,
    max_inflight: int = 16,
) -> tuple[RuntimeConfig, ...]:
    """One config per execution mode, same shard partition throughout.

    ``max_inflight`` deliberately defaults *above* the politeness cap
    so the async runs only stay polite if the gate actually works.
    The distributed entry runs real worker subprocesses leased over
    local sockets — the reference transport, end to end.
    """
    return (
        RuntimeConfig(shards=shards, backend="serial"),
        RuntimeConfig(shards=shards, workers=workers, backend="process"),
        RuntimeConfig(shards=shards, backend="async",
                      max_inflight=max_inflight),
        RuntimeConfig(shards=shards, workers=workers,
                      backend="process+async", max_inflight=max_inflight),
        RuntimeConfig(shards=shards, workers=workers,
                      backend="distributed"),
    )


def canonical_logbook_bytes(collection, q3) -> bytes:
    """Canonical byte serialization of one campaign's merged output.

    Covers both logbooks in merge order, the Q3 mode map, the analyzed
    blocks, and the CBG weights — everything downstream analyses read.
    """
    payload = {
        "q12": [_record_to_json(r) for r in collection.log],
        "cbg_totals": {f"{isp}:{cbg}": total
                       for (isp, cbg), total in collection.cbg_totals.items()},
        "q3": [_record_to_json(r) for r in q3.log],
        "q3_modes": q3.modes,
        "q3_analyzed_blocks": list(q3.analyzed_blocks),
        "q3_incumbents": q3.incumbents,
    }
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


@dataclass
class BackendRun:
    """One backend's observable outcome, reduced for comparison."""

    config: RuntimeConfig
    logbook: bytes
    q12_cells: int
    q12_records: int
    q3_records: int
    shard_record_total: int
    # ISP → max over shards of the shard's concurrency high-water mark.
    politeness: dict[str, int]

    @property
    def label(self) -> str:
        return self.config.effective_backend


def run_backend(world: World, config: RuntimeConfig, **subset) -> BackendRun:
    """Run the campaign under one backend and capture the evidence."""
    shard_results = []
    collection, q3 = execute_campaign(
        world, config,
        on_progress=lambda done, total, result, restored:
            shard_results.append(result),
        **subset)
    politeness: dict[str, int] = {}
    shard_record_total = 0
    for result in shard_results:
        for isp, peak in result.politeness.items():
            politeness[isp] = max(politeness.get(isp, 0), peak)
        shard_record_total += sum(
            len(records) for records in result.q12_records.values())
        shard_record_total += sum(
            len(outcome.records) for outcome in result.q3_outcomes.values()
            if outcome is not None)
    return BackendRun(
        config=config,
        logbook=canonical_logbook_bytes(collection, q3),
        q12_cells=len(collection.plans),
        q12_records=len(collection.log),
        q3_records=len(q3.log),
        shard_record_total=shard_record_total,
        politeness=politeness,
    )


def assert_backends_equivalent(
    world: World,
    configs=None,
    **subset,
) -> list[BackendRun]:
    """Run every config and assert the differential invariants.

    Returns the runs so callers can make scenario-specific assertions
    on top (e.g. that interleaving actually happened).
    """
    configs = configs if configs is not None else backend_matrix()
    runs = [run_backend(world, config, **subset) for config in configs]
    reference = runs[0]
    expected_cells = len(enumerate_q12_cells(
        world, isps=subset.get("isps", DEFAULT_ISPS),
        states=subset.get("states")))

    for run in runs:
        # Byte-identical merged logbooks against the reference backend.
        assert run.logbook == reference.logbook, (
            f"{run.label} logbook diverged from {reference.label}")
        # Cell-count conservation: canonical cell list, exactly once...
        assert run.q12_cells == expected_cells, (
            f"{run.label} visited {run.q12_cells} cells, "
            f"expected {expected_cells}")
        # ...and shard records are conserved through the merge.
        assert run.shard_record_total == run.q12_records + run.q3_records, (
            f"{run.label} lost records in the merge")
        # Politeness: every shard within its budget, fleet within cap.
        for isp, peak in run.politeness.items():
            assert peak <= run.config.per_shard_isp_cap, (
                f"{run.label} drove {peak} concurrent sessions against "
                f"{isp}, above the shard budget "
                f"{run.config.per_shard_isp_cap}")
            assert (peak * run.config.concurrent_shards
                    <= MAX_POLITE_WORKERS_PER_ISP), (
                f"{run.label} fleet-wide {isp} concurrency could reach "
                f"{peak * run.config.concurrent_shards}")
    return runs


# ----------------------------------------------------------------------
# Service: journal replay == checkpoint-store resume
# ----------------------------------------------------------------------

def canonical_shard_state_bytes(shards: dict) -> bytes:
    """Canonical byte serialization of a completed-shard state — the
    thing a resume (journal replay *or* checkpoint load) reconstructs.

    Uses the checkpoint codec's shortest-repr float round-trip, so
    byte equality is bit equality of every record in every shard.
    """
    payload = {str(index): _shard_to_json(result)
               for index, result in sorted(shards.items())}
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def assert_journal_replay_equivalent(journal, fingerprint: str,
                                     store) -> dict:
    """The service journal's replayed shard state byte-equals a
    :class:`~repro.runtime.checkpoint.CheckpointStore` resume.

    ``journal`` is a :class:`~repro.service.journal.Journal` holding a
    (possibly interrupted) campaign's ``shard-completed`` entries;
    ``store`` is a checkpoint store for the *same* campaign
    fingerprint, interrupted at the same point. The two durability
    designs — state-as-replayable-log and manifest-of-checksums files
    — must reconstruct identical completed-shard maps, byte for byte.
    Returns the journal-side map for further assertions.
    """
    replayed = journal.completed_shard_results(fingerprint)
    resumed = store.load_completed()
    assert set(replayed) == set(resumed), (
        f"journal replay found shards {sorted(replayed)} but the "
        f"checkpoint store resumed {sorted(resumed)}")
    journal_bytes = canonical_shard_state_bytes(replayed)
    store_bytes = canonical_shard_state_bytes(resumed)
    assert journal_bytes == store_bytes, (
        "journal-replayed shard state diverged from the checkpoint "
        "store's resume state for the same campaign prefix")
    return replayed


# ----------------------------------------------------------------------
# Longitudinal: incremental wave == from-scratch re-collection
# ----------------------------------------------------------------------

def scratch_wave_bytes(
    world: World,
    model: ChurnModel,
    horizon_years: int,
    isps: tuple[str, ...] = DEFAULT_ISPS,
    states: tuple[str, ...] | None = None,
    q3_states: tuple[str, ...] | None = None,
) -> bytes:
    """One wave's logbook, re-collected from scratch (the oracle).

    Deliberately bypasses the runtime: the sequential
    :class:`~repro.core.collection.CollectionCampaign` loops over the
    independently evolved world, so the panel's replay merge is tested
    against a path that shares none of its machinery.
    """
    evolved = (world if horizon_years == 0
               else churned_world(world, years=horizon_years, model=model))
    collection = CollectionCampaign(evolved).run(isps=isps, states=states)
    q3 = collect_q3_dataset(evolved, states=q3_states)
    return canonical_logbook_bytes(collection, q3)


def canonical_analysis_bytes(analysis) -> bytes:
    """Canonical byte serialization of one wave's audit aggregations.

    JSON renders floats by shortest round-trip ``repr``, so byte
    equality here is bit equality of every rate — summation order
    included.
    """
    return json.dumps(analysis.to_payload(), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def assert_incremental_analysis_equivalent(
    world: World,
    model: ChurnModel,
    horizons: tuple[int, ...] = (1, 2),
    runtime: RuntimeConfig | None = None,
    expect_reuse: bool = True,
    **subset,
) -> list[WaveOutcome]:
    """Run a panel and prove each wave's incremental analysis against
    the full recompute.

    Per wave: the digest-keyed row fold
    (:func:`repro.analysis.incremental.wave_analysis`, rows cached
    across waves) must serialize byte-identically to the oracle that
    rebuilds an :class:`~repro.core.audit.AuditDataset` from the
    entire merged logbook. For follow-up waves (when ``expect_reuse``)
    the cache must have produced hits — equality of two cold folds
    would prove nothing about incrementality.
    """
    from repro.analysis.incremental import (
        full_wave_analysis,
        row_cache_for,
        wave_analysis,
    )

    campaign = PanelCampaign(world, model=model, horizons=horizons,
                             runtime=runtime, **subset)
    cache = row_cache_for(campaign)
    outcomes = []
    hits_before_followups = None
    for outcome in campaign.waves():
        if outcome.wave == 1:
            hits_before_followups = cache.hits
        incremental = canonical_analysis_bytes(
            wave_analysis(outcome, cache=cache))
        full = canonical_analysis_bytes(full_wave_analysis(outcome))
        assert incremental == full, (
            f"wave {outcome.wave} (+{outcome.horizon_years}y) incremental "
            f"analysis diverged from the full-logbook recompute")
        outcomes.append(outcome)
    if expect_reuse and len(outcomes) > 1:
        assert cache.hits > (hits_before_followups or 0), (
            "no analysis row was ever reused — the incremental fold "
            "degenerated into full recompute and the equivalence is "
            "vacuous")
    return outcomes


def assert_panel_backends_equivalent(
    world: World,
    model: ChurnModel,
    horizons: tuple[int, ...] = (1,),
    configs=None,
    **subset,
) -> None:
    """Every backend's panel produces byte-identical wave logbooks.

    The reference is the in-process panel (``runtime=None`` — the
    plain sequential fold); each config in the matrix (serial /
    process / async / process+async / distributed) re-runs the same
    panel with its delta collections dispatched through that backend.
    """
    reference = [
        canonical_logbook_bytes(outcome.collection, outcome.q3)
        for outcome in PanelCampaign(world, model=model,
                                     horizons=horizons, **subset).run()
    ]
    configs = configs if configs is not None else backend_matrix()
    for config in configs:
        outcomes = PanelCampaign(world, model=model, horizons=horizons,
                                 runtime=config, **subset).run()
        for outcome, expected in zip(outcomes, reference):
            got = canonical_logbook_bytes(outcome.collection, outcome.q3)
            assert got == expected, (
                f"wave {outcome.wave} logbook under "
                f"{config.effective_backend} diverged from the "
                f"in-process panel")


def assert_panel_replay_equivalent(
    world: World,
    model: ChurnModel,
    horizons: tuple[int, ...] = (1, 2, 3),
    runtime: RuntimeConfig | None = None,
    expect_replay: bool = True,
    **subset,
) -> list[WaveOutcome]:
    """Run a panel incrementally and prove each wave against scratch.

    Asserts, per wave: the merged logbook is byte-identical to a
    from-scratch re-collection of that wave's evolved world; the
    fresh/replayed accounting conserves the cell count; and (for
    follow-up waves, when ``expect_replay``) the incremental path
    actually replayed something — equality of two full re-queries
    would prove nothing about delta planning.
    """
    campaign = PanelCampaign(world, model=model, horizons=horizons,
                             runtime=runtime, **subset)
    outcomes = campaign.run()
    replayed_total = 0
    for outcome in outcomes:
        incremental = canonical_logbook_bytes(outcome.collection, outcome.q3)
        scratch = scratch_wave_bytes(world, model, outcome.horizon_years,
                                     **subset)
        assert incremental == scratch, (
            f"wave {outcome.wave} (+{outcome.horizon_years}y) incremental "
            f"logbook diverged from from-scratch re-collection")
        assert (outcome.fresh_q12 + outcome.replayed_q12
                == outcome.delta.total_q12), (
            f"wave {outcome.wave} lost Q1/Q2 cells in the fold")
        assert (outcome.fresh_q3 + outcome.replayed_q3
                == outcome.delta.total_q3), (
            f"wave {outcome.wave} lost Q3 blocks in the fold")
        if outcome.wave > 0:
            replayed_total += outcome.replayed_q12 + outcome.replayed_q3
    assert outcomes[0].replayed_q12 == outcomes[0].replayed_q3 == 0, (
        "the snapshot wave has nothing to replay from")
    if expect_replay and len(outcomes) > 1:
        assert replayed_total > 0, (
            "no cell was ever replayed — the delta planner degenerated "
            "into full re-collection and the equivalence is vacuous")
    return outcomes
