"""Test harnesses shared across test modules (not themselves tests)."""
