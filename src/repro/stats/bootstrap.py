"""Bootstrap confidence intervals for weighted rates.

The paper reports point estimates (55.45% serviceability, 33.03%
compliance) without uncertainty. Because the estimator is a weighted
mean of per-CBG rates, a natural resampling unit is the CBG: resample
block groups with replacement, recompute the weighted rate, and read
percentile intervals off the bootstrap distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.distributions import stable_rng
from repro.stats.weighted import weighted_mean

__all__ = ["BootstrapInterval", "bootstrap_weighted_rate"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A bootstrap percentile interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float
    replicates: int

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValueError(
                f"interval [{self.low}, {self.high}] does not contain "
                f"the estimate {self.estimate}")

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def describe(self) -> str:
        """One-line summary."""
        return (f"{self.estimate:.2%} "
                f"[{self.low:.2%}, {self.high:.2%}] "
                f"({self.confidence:.0%} CI, {self.replicates} replicates)")


def bootstrap_weighted_rate(
    rates: Sequence[float],
    weights: Sequence[float],
    confidence: float = 0.95,
    replicates: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap over (rate, weight) groups.

    Each bootstrap replicate resamples the groups (CBGs) with
    replacement and recomputes the weighted mean; the interval is the
    central ``confidence`` mass of the replicate distribution, clipped
    to contain the point estimate (degenerate single-group inputs).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if replicates < 10:
        raise ValueError("need at least 10 replicates")
    rate_array = np.asarray(rates, dtype=float)
    weight_array = np.asarray(weights, dtype=float)
    if rate_array.size == 0:
        raise ValueError("no groups to bootstrap")
    if rate_array.shape != weight_array.shape:
        raise ValueError("rates and weights must align")
    estimate = weighted_mean(rate_array, weight_array)
    rng = stable_rng(seed, "bootstrap", rate_array.size, replicates)
    n = rate_array.size
    samples = np.empty(replicates)
    for i in range(replicates):
        draw = rng.integers(0, n, size=n)
        samples[i] = weighted_mean(rate_array[draw], weight_array[draw])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.percentile(samples, [100 * alpha, 100 * (1 - alpha)])
    return BootstrapInterval(
        estimate=estimate,
        low=float(min(low, estimate)),
        high=float(max(high, estimate)),
        confidence=confidence,
        replicates=replicates,
    )
