"""Correlation helpers for the population-density analysis.

Section 4.1 of the paper reports "a strong correlation" between AT&T
serviceability rates and population density across CBGs (Figure 3), and
explicitly notes the exception (Mississippi). These wrappers return the
coefficient together with the p-value and sample size so the experiment
harness can report significance the way the paper discusses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["CorrelationResult", "pearson", "spearman"]


@dataclass(frozen=True)
class CorrelationResult:
    """A correlation coefficient with its context."""

    method: str
    coefficient: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """True when the correlation is significant at the 5% level."""
        return self.p_value < 0.05

    def describe(self) -> str:
        """Return a one-line human-readable description."""
        strength = "strong" if abs(self.coefficient) >= 0.5 else (
            "moderate" if abs(self.coefficient) >= 0.3 else "weak")
        direction = "positive" if self.coefficient >= 0 else "negative"
        marker = "significant" if self.significant else "not significant"
        return (f"{self.method} r={self.coefficient:+.3f} (n={self.n}, "
                f"p={self.p_value:.2g}): {strength} {direction}, {marker}")


def _validate(xs: Sequence[float], ys: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"samples must align: {x.shape} vs {y.shape}")
    if x.size < 3:
        raise ValueError("need at least 3 points for a correlation")
    return x, y


def pearson(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Pearson product-moment correlation."""
    x, y = _validate(xs, ys)
    result = _scipy_stats.pearsonr(x, y)
    return CorrelationResult("pearson", float(result.statistic),
                             float(result.pvalue), x.size)


def spearman(xs: Sequence[float], ys: Sequence[float]) -> CorrelationResult:
    """Spearman rank correlation (robust to the heavy density skew)."""
    x, y = _validate(xs, ys)
    result = _scipy_stats.spearmanr(x, y)
    return CorrelationResult("spearman", float(result.statistic),
                             float(result.pvalue), x.size)
