"""Distribution summaries for box-and-whisker style reporting.

Figure 2 of the paper shows serviceability-rate distributions over
census block groups as boxplots. :func:`box_stats` computes the exact
statistics a Tukey boxplot displays so the benchmark harness can print
the same rows the figure encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["BoxStats", "box_stats", "five_number_summary"]


@dataclass(frozen=True)
class BoxStats:
    """Tukey boxplot statistics for one group."""

    n: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float
    outliers: tuple[float, ...]

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    def row(self) -> dict[str, float]:
        """Return the summary as a flat dict for tabular output."""
        return {
            "n": self.n,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "whisker_low": self.whisker_low,
            "whisker_high": self.whisker_high,
            "n_outliers": len(self.outliers),
        }


def five_number_summary(values: Sequence[float]) -> tuple[float, float, float, float, float]:
    """Return ``(min, q1, median, q3, max)``."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("five_number_summary of empty input")
    q1, median, q3 = np.percentile(array, [25, 50, 75])
    return (float(array.min()), float(q1), float(median), float(q3), float(array.max()))


def box_stats(values: Sequence[float], whisker: float = 1.5) -> BoxStats:
    """Return Tukey boxplot statistics with ``whisker``×IQR fences."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("box_stats of empty input")
    if whisker < 0:
        raise ValueError("whisker multiplier must be non-negative")
    minimum, q1, median, q3, maximum = five_number_summary(array)
    iqr = q3 - q1
    low_fence = q1 - whisker * iqr
    high_fence = q3 + whisker * iqr
    inside = array[(array >= low_fence) & (array <= high_fence)]
    outliers = array[(array < low_fence) | (array > high_fence)]
    whisker_low = float(inside.min()) if inside.size else q1
    whisker_high = float(inside.max()) if inside.size else q3
    return BoxStats(
        n=int(array.size),
        minimum=minimum,
        q1=q1,
        median=median,
        q3=q3,
        maximum=maximum,
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=tuple(float(v) for v in np.sort(outliers)),
    )
