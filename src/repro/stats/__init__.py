"""Statistics toolkit used throughout the reproduction.

This package is a small, dependency-light statistics layer built on
numpy/scipy. It provides:

* :mod:`repro.stats.weighted` — weighted means, fractions and quantiles
  (the paper weights census-block-group level rates by CAF address
  counts when aggregating to states or ISPs).
* :mod:`repro.stats.ecdf` — empirical CDFs, which back every CDF figure
  in the paper (Figures 1c, 1f, 4b/c, 5b/c, 6a, 7, 8, 11).
* :mod:`repro.stats.distributions` — deterministic samplers for the
  skewed distributions the synthetic world is calibrated to (Zipf-like
  fund/address concentration, lognormal block sizes, categorical plan
  mixes).
* :mod:`repro.stats.summary` — five-number/boxplot summaries used by the
  box-and-whisker figures (Figure 2).
* :mod:`repro.stats.correlation` — Pearson/Spearman helpers used for the
  population-density analysis (Figure 3).
"""

from repro.stats.bootstrap import BootstrapInterval, bootstrap_weighted_rate
from repro.stats.correlation import CorrelationResult, pearson, spearman
from repro.stats.distributions import (
    bounded_zipf_shares,
    categorical_sample,
    lognormal_sizes,
    stable_rng,
)
from repro.stats.ecdf import ECDF
from repro.stats.summary import BoxStats, box_stats, five_number_summary
from repro.stats.weighted import (
    weighted_fraction,
    weighted_mean,
    weighted_quantile,
)

__all__ = [
    "BootstrapInterval",
    "BoxStats",
    "CorrelationResult",
    "bootstrap_weighted_rate",
    "ECDF",
    "bounded_zipf_shares",
    "box_stats",
    "categorical_sample",
    "five_number_summary",
    "lognormal_sizes",
    "pearson",
    "spearman",
    "stable_rng",
    "weighted_fraction",
    "weighted_mean",
    "weighted_quantile",
]
