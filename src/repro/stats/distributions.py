"""Deterministic samplers for the synthetic world.

The public CAF dataset that the paper characterizes in Figure 1 is
heavily skewed: a handful of states and ISPs hold most addresses and
funds, and addresses-per-census-block spans four orders of magnitude.
These helpers generate samples with those shapes from an explicit
:class:`numpy.random.Generator`, so every dataset in this repository is
reproducible from a scenario seed.
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Sequence, TypeVar

import numpy as np

__all__ = [
    "stable_rng",
    "bounded_zipf_shares",
    "lognormal_sizes",
    "categorical_sample",
    "allocate_counts",
]

T = TypeVar("T")


def stable_rng(*parts: object) -> np.random.Generator:
    """Return a Generator seeded from a stable hash of ``parts``.

    Child components of the world builder derive independent streams by
    mixing the scenario seed with a component label, e.g.
    ``stable_rng(seed, "usac", state_fips)``. Using BLAKE2 rather than
    Python's ``hash`` keeps streams stable across interpreter runs.
    """
    digest = hashlib.blake2b(
        "\x1f".join(str(part) for part in parts).encode("utf-8"), digest_size=8
    ).digest()
    return np.random.default_rng(int.from_bytes(digest, "big"))


def bounded_zipf_shares(n: int, exponent: float = 1.0) -> np.ndarray:
    """Return ``n`` shares following a Zipf law, normalized to sum to 1.

    ``share[k] ∝ 1 / (k+1)**exponent``. With ``exponent≈1`` the top few
    ranks dominate, matching the ISP-level concentration in Figures
    1b/1e (top-4 of 819 ISPs hold 62% of addresses).
    """
    if n <= 0:
        raise ValueError(f"need a positive number of shares, got {n}")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    raw = ranks**-exponent
    return raw / raw.sum()


def lognormal_sizes(
    rng: np.random.Generator,
    n: int,
    median: float,
    sigma: float,
    minimum: int = 1,
    maximum: int | None = None,
) -> np.ndarray:
    """Return ``n`` integer sizes from a clipped lognormal.

    Parameterized by the distribution *median* (``exp(mu)``) because the
    paper reports medians (e.g. 64 CAF addresses per CBG). Values are
    rounded and clipped to ``[minimum, maximum]``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if median <= 0:
        raise ValueError("median must be positive")
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    draws = rng.lognormal(mean=np.log(median), sigma=sigma, size=n)
    sizes = np.rint(draws).astype(np.int64)
    sizes = np.maximum(sizes, minimum)
    if maximum is not None:
        sizes = np.minimum(sizes, maximum)
    return sizes


def categorical_sample(
    rng: np.random.Generator, outcomes: Mapping[T, float], size: int
) -> list[T]:
    """Draw ``size`` outcomes from a categorical distribution.

    ``outcomes`` maps each outcome to a non-negative weight; weights are
    normalized internally. Iteration order of the mapping defines the
    category order, so pass an ordered mapping for reproducibility.
    """
    if size < 0:
        raise ValueError("size must be non-negative")
    if not outcomes:
        raise ValueError("outcomes must be non-empty")
    labels = list(outcomes.keys())
    weights = np.asarray([outcomes[label] for label in labels], dtype=float)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights sum to zero")
    indices = rng.choice(len(labels), size=size, p=weights / total)
    return [labels[i] for i in indices]


def allocate_counts(total: int, shares: Sequence[float]) -> np.ndarray:
    """Split ``total`` integer units across ``shares`` proportionally.

    Uses the largest-remainder method so the result sums exactly to
    ``total`` — the world builder relies on this when distributing a
    national address count across states and then ISPs.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    share_array = np.asarray(shares, dtype=float)
    if share_array.size == 0:
        raise ValueError("shares must be non-empty")
    if np.any(share_array < 0):
        raise ValueError("shares must be non-negative")
    denom = share_array.sum()
    if denom <= 0:
        raise ValueError("shares sum to zero")
    exact = share_array / denom * total
    floors = np.floor(exact).astype(np.int64)
    shortfall = total - int(floors.sum())
    if shortfall:
        remainders = exact - floors
        top_up = np.argsort(-remainders, kind="stable")[:shortfall]
        floors[top_up] += 1
    return floors
