"""Weighted aggregation primitives.

The paper's headline metrics are *weighted* rates: serviceability and
compliance are computed per census block group (CBG) and then weighted
by the number of CAF addresses in that CBG when rolled up to a state,
an ISP, or the full study ("we weight the serviceability rate at the
block group level with the total number of CAF addresses for the CBG",
Section 4.1). These helpers implement that aggregation exactly once so
every analysis shares the same semantics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["weighted_mean", "weighted_fraction", "weighted_quantile"]


def _as_float_array(values: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {array.shape}")
    return array


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Return the weighted arithmetic mean of ``values``.

    Raises ``ValueError`` on empty input, mismatched lengths, negative
    weights, or an all-zero weight vector — every one of those cases is
    a caller bug in this codebase, not a degenerate-but-valid input.
    """
    vals = _as_float_array(values, "values")
    wts = _as_float_array(weights, "weights")
    if vals.size == 0:
        raise ValueError("weighted_mean of empty input")
    if vals.shape != wts.shape:
        raise ValueError(
            f"values and weights differ in length: {vals.size} vs {wts.size}"
        )
    if np.any(wts < 0):
        raise ValueError("weights must be non-negative")
    total = wts.sum()
    if total == 0:
        raise ValueError("weights sum to zero")
    return float(np.dot(vals, wts) / total)


def weighted_fraction(
    numerators: Sequence[float],
    denominators: Sequence[float],
    weights: Sequence[float],
) -> float:
    """Return the weighted mean of per-group fractions.

    Each group contributes ``numerators[i] / denominators[i]`` weighted
    by ``weights[i]``. Groups whose denominator is zero (a CBG where no
    query succeeded) are dropped, mirroring the paper's treatment of
    CBGs with no resolvable addresses.
    """
    nums = _as_float_array(numerators, "numerators")
    dens = _as_float_array(denominators, "denominators")
    wts = _as_float_array(weights, "weights")
    if not (nums.shape == dens.shape == wts.shape):
        raise ValueError("numerators, denominators and weights must align")
    mask = dens > 0
    if not np.any(mask):
        raise ValueError("no group has a positive denominator")
    fractions = nums[mask] / dens[mask]
    return weighted_mean(fractions, wts[mask])


def weighted_quantile(
    values: Sequence[float], weights: Sequence[float], q: float
) -> float:
    """Return the ``q``-quantile of ``values`` under ``weights``.

    Uses the standard inverse-CDF definition over the weighted empirical
    distribution: sort values, accumulate normalized weights, and return
    the first value whose cumulative weight reaches ``q``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    vals = _as_float_array(values, "values")
    wts = _as_float_array(weights, "weights")
    if vals.size == 0:
        raise ValueError("weighted_quantile of empty input")
    if vals.shape != wts.shape:
        raise ValueError("values and weights must align")
    if np.any(wts < 0):
        raise ValueError("weights must be non-negative")
    total = wts.sum()
    if total == 0:
        raise ValueError("weights sum to zero")
    order = np.argsort(vals, kind="stable")
    sorted_vals = vals[order]
    cumulative = np.cumsum(wts[order]) / total
    index = int(np.searchsorted(cumulative, q, side="left"))
    index = min(index, vals.size - 1)
    return float(sorted_vals[index])
