"""Empirical cumulative distribution functions.

Most of the paper's figures are CDFs (download-speed distributions,
addresses per census block, percentage-queried per CBG, query times).
:class:`ECDF` is the single representation those figures are built
from: it evaluates the step function, inverts it for quantiles, and
exports plot-ready ``(x, y)`` series for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["ECDF"]


@dataclass(frozen=True)
class ECDF:
    """Empirical CDF over a fixed sample.

    Construction sorts and retains the sample. Evaluation follows the
    right-continuous convention ``F(x) = P[X <= x]``.
    """

    sorted_values: np.ndarray = field(repr=False)

    def __init__(self, values: Iterable[float]):
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                           dtype=float)
        if array.ndim != 1:
            raise ValueError(f"ECDF sample must be one-dimensional, got {array.shape}")
        if array.size == 0:
            raise ValueError("ECDF of an empty sample")
        if np.any(np.isnan(array)):
            raise ValueError("ECDF sample contains NaN")
        object.__setattr__(self, "sorted_values", np.sort(array))

    @property
    def n(self) -> int:
        """Sample size."""
        return int(self.sorted_values.size)

    def __call__(self, x: float) -> float:
        """Return ``P[X <= x]``."""
        rank = np.searchsorted(self.sorted_values, x, side="right")
        return float(rank) / self.n

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`__call__`."""
        ranks = np.searchsorted(self.sorted_values, np.asarray(xs, dtype=float),
                                side="right")
        return ranks / self.n

    def quantile(self, q: float) -> float:
        """Return the smallest sample value ``v`` with ``F(v) >= q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return float(self.sorted_values[0])
        index = int(np.ceil(q * self.n)) - 1
        return float(self.sorted_values[index])

    def median(self) -> float:
        """Return the 0.5 quantile."""
        return self.quantile(0.5)

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(x, y)`` arrays tracing the CDF steps.

        ``x`` is the sorted sample; ``y[i]`` is the cumulative fraction
        at and below ``x[i]``. This matches how the paper's CDF figures
        are drawn.
        """
        ys = np.arange(1, self.n + 1, dtype=float) / self.n
        return self.sorted_values.copy(), ys

    def fraction_below(self, threshold: float) -> float:
        """Return ``P[X < threshold]`` (strict)."""
        rank = np.searchsorted(self.sorted_values, threshold, side="left")
        return float(rank) / self.n

    def fraction_at_least(self, threshold: float) -> float:
        """Return ``P[X >= threshold]``."""
        return 1.0 - self.fraction_below(threshold)
