"""Figure 1 — attributes of the public CAF program dataset."""

from __future__ import annotations

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.stats.ecdf import ECDF
from repro.tabular import Table

__all__ = ["run"]


def _ranked_table(counts: dict[str, float], key_name: str,
                  value_name: str) -> Table:
    rows = [{key_name: key, value_name: value}
            for key, value in sorted(counts.items(), key=lambda kv: -kv[1])]
    return Table.from_rows(rows)


def run(context: ExperimentContext) -> ExperimentResult:
    """Reproduce Figures 1a–1f from the synthetic national dataset."""
    national = context.national
    caf_map = national.caf_map
    ledger = national.ledger

    by_state = caf_map.count_by_state()
    by_isp = caf_map.count_by_isp()
    state_table = _ranked_table(by_state, "state", "addresses")
    isp_table = _ranked_table(by_isp, "isp", "addresses")

    total = len(caf_map)
    top20_states = sum(sorted(by_state.values(), reverse=True)[:20]) / total
    top4_isps = sum(sorted(by_isp.values(), reverse=True)[:4]) / total

    cb_sizes = list(caf_map.addresses_per_block().values())
    cbg_sizes = list(caf_map.addresses_per_block_group().values())
    cb_cdf = ECDF(cb_sizes)
    cbg_cdf = ECDF(cbg_sizes)

    funds_state = _ranked_table(
        {k: v / 1e6 for k, v in ledger.by_state().items()},
        "state", "disbursed_musd")
    funds_isp = _ranked_table(
        {k: v / 1e6 for k, v in ledger.by_isp().items()},
        "isp", "disbursed_musd")

    certified_cdfs = {}
    for isp in ("att", "centurylink", "consolidated", "frontier"):
        speeds = [r.certified_download_mbps for r in caf_map.for_isp(isp)]
        if speeds:
            certified_cdfs[f"fig1f_certified_{isp}"] = ECDF(speeds).series()

    return ExperimentResult(
        experiment_id="figure1",
        title="Attributes of the existing public CAF program datasets",
        scalars={
            "total_locations": float(total),
            "num_isps": float(len(by_isp)),
            "total_funds_busd": ledger.total_usd() / 1e9,
            "top20_state_address_share": top20_states,
            "paper_top20_state_address_share": 0.73,
            "top4_isp_address_share": top4_isps,
            "paper_top4_isp_address_share": 0.62,
            "top4_isp_fund_share": ledger.share_of_top_isps(4),
            "paper_top4_isp_fund_share": 0.375,
            "cbg_median_addresses": cbg_cdf.median(),
            "paper_cbg_median_addresses": 64.0,
            "cb_max_addresses": float(np.max(cb_sizes)),
            "rural_block_share": national.rural_block_share,
            "paper_rural_block_share": 0.967,
        },
        tables={
            "fig1a_addresses_by_state": state_table.head(10),
            "fig1b_addresses_by_isp": isp_table.head(10),
            "fig1d_disbursements_by_state": funds_state.head(10),
            "fig1e_disbursements_by_isp": funds_isp.head(10),
        },
        series={
            "fig1c_addresses_per_cb": cb_cdf.series(),
            "fig1c_addresses_per_cbg": cbg_cdf.series(),
            **certified_cdfs,
        },
        notes=[
            "scaled national dataset: absolute counts are scale-factor "
            "multiples of the paper's 6.13M locations / $10B",
        ],
    )
