"""Figures 4, 5, 6 and 11 — the Q3 monopoly/competition comparisons."""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.synth.calibration import TYPE_A_SHARES, TYPE_B_SHARES

__all__ = ["run_figure4", "run_figure5", "run_figure6", "run_figure11"]


def _shares_scalars(prefix: str, measured: dict[str, float],
                    paper) -> dict[str, float]:
    paper_map = paper.as_mapping()
    out = {}
    for outcome in ("tie", "caf", "rival"):
        out[f"{prefix}_{outcome}_share"] = measured[outcome]
        out[f"paper_{prefix}_{outcome}_share"] = paper_map[outcome]
    return out


def run_figure4(context: ExperimentContext) -> ExperimentResult:
    """Type A blocks: outcome shares, speed CDFs, pct-increase CDF."""
    monopoly = context.report.monopoly
    shares = monopoly.outcome_shares("A", "monopoly")
    caf_cdf, rival_cdf = monopoly.speed_cdfs("A", "monopoly", winner="caf")
    increase = monopoly.pct_increase_cdf("A", "monopoly", winner="caf")
    return ExperimentResult(
        experiment_id="figure4",
        title="Regulated monopolies (CAF) in Type A blocks",
        scalars={
            **_shares_scalars("type_a", shares, TYPE_A_SHARES),
            "median_pct_increase_caf_wins": increase.median(),
            "paper_median_pct_increase_caf_wins": 75.0,
            "p80_pct_increase_caf_wins": increase.quantile(0.8),
            "paper_p80_pct_increase_caf_wins": 400.0,
            "num_type_a_blocks": float(len(monopoly.of_type("A"))),
        },
        series={
            "fig4b_caf_speeds": caf_cdf.series(),
            "fig4b_monopoly_speeds": rival_cdf.series(),
            "fig4c_pct_increase": increase.series(),
        },
    )


def run_figure5(context: ExperimentContext) -> ExperimentResult:
    """Type B blocks: outcome shares, speed CDFs, pct-increase CDF."""
    monopoly = context.report.monopoly
    shares = monopoly.outcome_shares("B", "competition")
    scalars = {
        **_shares_scalars("type_b", shares, TYPE_B_SHARES),
        "num_type_b_blocks": float(len(monopoly.of_type("B"))),
    }
    series = {}
    try:
        caf_cdf, rival_cdf = monopoly.speed_cdfs("B", "competition", winner="caf")
        increase = monopoly.pct_increase_cdf("B", "competition", winner="caf")
        series = {
            "fig5b_caf_speeds": caf_cdf.series(),
            "fig5b_competition_speeds": rival_cdf.series(),
            "fig5c_pct_increase": increase.series(),
        }
        scalars["median_pct_increase_caf_wins"] = increase.median()
    except ValueError:
        # Tiny worlds can have no Type B block where CAF wins.
        pass
    return ExperimentResult(
        experiment_id="figure5",
        title="Regulated monopolies (CAF) in Type B blocks",
        scalars=scalars,
        series=series,
    )


def run_figure6(context: ExperimentContext) -> ExperimentResult:
    """CAF speeds in Type A vs Type B blocks."""
    monopoly = context.report.monopoly
    cdfs = monopoly.caf_speed_cdf_by_type()
    scalars = {}
    series = {}
    if "A" in cdfs:
        scalars["type_a_caf_median_mbps"] = cdfs["A"].median()
        series["fig6a_type_a_caf_speeds"] = cdfs["A"].series()
    if "B" in cdfs:
        scalars["type_b_caf_median_mbps"] = cdfs["B"].median()
        series["fig6a_type_b_caf_speeds"] = cdfs["B"].series()
    if "A" in cdfs and "B" in cdfs:
        gap = cdfs["B"].quantile(0.8) - cdfs["A"].quantile(0.8)
        scalars["p80_speed_gap_b_minus_a_mbps"] = gap
    return ExperimentResult(
        experiment_id="figure6",
        title="CAF speeds across Type A and Type B blocks",
        scalars=scalars,
        series=series,
        notes=[
            "paper: in 20% of blocks, Type B CAF speeds exceed Type A "
            "by over 90 Mbps (competition spillover)",
        ],
    )


def run_figure11(context: ExperimentContext) -> ExperimentResult:
    """The loser-side CDFs: blocks where CAF performs worse."""
    monopoly = context.report.monopoly
    scalars = {}
    series = {}
    caf_cdf, rival_cdf = monopoly.speed_cdfs("A", "monopoly", winner="rival")
    increase = monopoly.pct_increase_cdf("A", "monopoly", winner="rival")
    series["fig11a_caf_speeds"] = caf_cdf.series()
    series["fig11a_monopoly_speeds"] = rival_cdf.series()
    series["fig11b_pct_increase"] = increase.series()
    scalars["median_pct_increase_monopoly_wins"] = increase.median()
    scalars["paper_median_pct_increase_monopoly_wins"] = 45.0
    scalars["p80_pct_increase_monopoly_wins"] = increase.quantile(0.8)
    scalars["paper_p80_pct_increase_monopoly_wins"] = 130.0
    try:
        caf_b, rival_b = monopoly.speed_cdfs("B", "competition", winner="rival")
        increase_b = monopoly.pct_increase_cdf("B", "competition", winner="rival")
        series["fig11c_caf_speeds"] = caf_b.series()
        series["fig11c_competition_speeds"] = rival_b.series()
        series["fig11d_pct_increase"] = increase_b.series()
        scalars["median_pct_increase_competition_wins"] = increase_b.median()
    except ValueError:
        pass
    return ExperimentResult(
        experiment_id="figure11",
        title="Blocks where CAF performs worse than its counterpart",
        scalars=scalars,
        series=series,
    )
