"""The abstract's headline numbers, end to end."""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.synth.calibration import (
    PAPER_AGGREGATE_COMPLIANCE,
    PAPER_AGGREGATE_SERVICEABILITY,
    TYPE_A_SHARES,
)

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Serviceability 55.45%, compliance 33.03%, Q3 outcome shares —
    with bootstrap confidence intervals the paper does not report."""
    from repro.stats.bootstrap import bootstrap_weighted_rate

    numbers = context.report.headline()
    increase = context.report.monopoly.pct_increase_cdf("A", "monopoly", "caf")
    serviceability_rates = context.report.serviceability.cbg_rates
    serviceability_ci = bootstrap_weighted_rate(
        serviceability_rates["rate"], serviceability_rates["weight"],
        seed=context.scenario.seed)
    compliance_rates = context.report.audit.cbg_rates("compliant")
    compliance_ci = bootstrap_weighted_rate(
        compliance_rates["rate"], compliance_rates["weight"],
        seed=context.scenario.seed)
    return ExperimentResult(
        experiment_id="headline",
        title="Abstract headline numbers",
        scalars={
            "serviceability_rate": numbers["serviceability_rate"],
            "paper_serviceability_rate": PAPER_AGGREGATE_SERVICEABILITY,
            "serviceability_ci_low": serviceability_ci.low,
            "serviceability_ci_high": serviceability_ci.high,
            "compliance_rate": numbers["compliance_rate"],
            "paper_compliance_rate": PAPER_AGGREGATE_COMPLIANCE,
            "compliance_ci_low": compliance_ci.low,
            "compliance_ci_high": compliance_ci.high,
            "type_a_caf_better_share": numbers["type_a_caf_better_share"],
            "paper_type_a_caf_better_share": TYPE_A_SHARES.caf_better,
            "median_caf_improvement_pct": increase.median(),
            "paper_median_caf_improvement_pct": 75.0,
        },
        notes=[
            "'CAF addresses were offered better plans 27% of the time, "
            "with a median improvement in download speeds of 75%'",
            "confidence intervals are 95% CBG-level bootstrap — an "
            "extension; the paper reports point estimates only",
        ],
    )
