"""Figure 9 — sampling-rate sensitivity (Appendix 8.2)."""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.tabular import Table

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Δ serviceability when sampling 5–25% of large CBGs."""
    result = context.sensitivity
    rows = []
    for rate, (aggregate_delta, max_cbg_delta) in sorted(
            result.deltas_by_rate.items()):
        rows.append({
            "min_pct_sampled": 100.0 * rate,
            "aggregate_abs_delta_pp": aggregate_delta,
            "max_cbg_abs_delta_pp": max_cbg_delta,
        })
    return ExperimentResult(
        experiment_id="figure9",
        title="Δ serviceability rate vs CBG sampling percentage",
        scalars={
            "num_cbgs": float(result.num_cbgs),
            "max_error_pct": result.max_error_pct(),
            "paper_max_error_pct": 5.0,
        },
        tables={"fig9_deltas": Table.from_rows(rows)},
        notes=[
            "paper: errors below 5% at every sampling rate — "
            "diminishing returns from querying more addresses per CBG",
        ],
    )
