"""Shared, lazily-built inputs for the experiment registry.

Building a world and running the audit dominates experiment cost, so
the context memoizes them: running all ~20 experiments costs one world
build + one audit + one national-dataset generation.

The scale knob reads ``REPRO_SCALE`` from the environment ("tiny",
"small", "paper") so the same benchmarks run fast in CI and at study
scale on demand. Setting ``REPRO_CACHE_DIR`` (or passing
``cache_dir``) additionally persists the audit in a content-addressed
cache (:mod:`repro.runtime.cache`), so *separate* script invocations
at the same scale — e.g. the 20+ benchmark scripts — share one audit
instead of each rebuilding it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.core.pipeline import AuditReport, run_full_audit
from repro.core.sensitivity import SensitivityResult, run_sensitivity_analysis
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World, build_world
from repro.usac.generator import (
    NationalDataset,
    NationalDatasetConfig,
    generate_national_dataset,
)

__all__ = ["ExperimentContext", "scale_from_environment"]

_SCALES = {
    "tiny": (ScenarioConfig.tiny(), NationalDatasetConfig(scale=0.002)),
    "small": (ScenarioConfig(address_scale=0.01),
              NationalDatasetConfig(scale=0.005)),
    "paper": (ScenarioConfig(address_scale=0.05),
              NationalDatasetConfig(scale=0.02)),
}


def scale_from_environment(default: str = "tiny") -> str:
    """Resolve the experiment scale from ``REPRO_SCALE``."""
    scale = os.environ.get("REPRO_SCALE", default).lower()
    if scale not in _SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALES)}, got {scale!r}")
    return scale


@dataclass
class ExperimentContext:
    """Memoized study inputs at one scale."""

    scenario: ScenarioConfig
    national_config: NationalDatasetConfig
    cache_dir: str | None = None
    _world: World | None = None
    _report: AuditReport | None = None
    _national: NationalDataset | None = None
    _sensitivity: SensitivityResult | None = None

    @classmethod
    def at_scale(
        cls, scale: str | None = None, cache_dir: str | None = None
    ) -> "ExperimentContext":
        """Build a context at a named scale (or the environment's).

        ``cache_dir`` defaults to ``REPRO_CACHE_DIR`` when set.
        """
        from repro.runtime.cache import cache_dir_from_environment

        scenario, national = _SCALES[scale or scale_from_environment()]
        return cls(scenario=scenario, national_config=national,
                   cache_dir=cache_dir or cache_dir_from_environment())

    @property
    def world(self) -> World:
        """The synthetic study universe (built on first use)."""
        if self._world is None:
            self._world = build_world(self.scenario)
        return self._world

    @property
    def report(self) -> AuditReport:
        """The full audit report (run, or loaded from the cache, on
        first use)."""
        if self._report is None:
            if self.cache_dir is not None:
                self._report = self._cached_report()
            else:
                self._report = run_full_audit(world=self.world)
        return self._report

    def _cached_report(self) -> AuditReport:
        from repro.core.pipeline import CAF_STUDY_ISP_IDS
        from repro.runtime.cache import AuditCache, audit_digest

        cache = AuditCache(self.cache_dir)
        digest = audit_digest(self.scenario, None, CAF_STUDY_ISP_IDS)
        report = cache.get(digest)
        if report is None:
            report = run_full_audit(world=self.world)
            cache.put(digest, report)
        else:
            # Reuse the cached world too: analyses compare report and
            # world objects, which must be one coherent universe.
            self._world = report.world
        return report

    @property
    def national(self) -> NationalDataset:
        """The national CAF Map (generated on first use)."""
        if self._national is None:
            self._national = generate_national_dataset(self.national_config)
        return self._national

    @property
    def sensitivity(self) -> SensitivityResult:
        """The Appendix 8.2 sensitivity run (computed on first use)."""
        if self._sensitivity is None:
            self._sensitivity = run_sensitivity_analysis(
                self.world,
                num_cbgs=min(46, 12 if self.scenario.address_scale < 0.01 else 46),
            )
        return self._sensitivity
