"""Staleness experiment (Appendix 8.1's limitation, measured).

The paper queried each address once and argues its non-compliance
findings remain representative because the CAF II deadline had long
passed. This experiment measures the staleness bias directly: evolve
the world by N years of plan churn, re-run the audit, and report how
the headline metrics drift.
"""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.core.audit import AuditDataset, ComplianceStandard
from repro.core.collection import CollectionCampaign
from repro.fcc.urban_rate_survey import generate_urban_rate_survey
from repro.synth.churn import ChurnModel, churned_world
from repro.tabular import Table

__all__ = ["run"]


def _audit_rates(world) -> tuple[float, float]:
    campaign = CollectionCampaign(world)
    collection = campaign.run()
    survey = generate_urban_rate_survey(seed=world.config.seed)
    audit = AuditDataset(collection.log, collection.cbg_totals, world=world,
                         standard=ComplianceStandard(survey=survey))
    return audit.serviceability_rate(), audit.compliance_rate()


def run(context: ExperimentContext,
        years: tuple[int, ...] = (1, 3)) -> ExperimentResult:
    """Audit the same world at snapshot time and after churn."""
    base_serviceability = context.report.serviceability.aggregate_rate()
    base_compliance = context.report.compliance.aggregate_rate()
    rows = [{
        "years_after_snapshot": 0,
        "serviceability": base_serviceability,
        "compliance": base_compliance,
        "serviceability_drift_pp": 0.0,
        "compliance_drift_pp": 0.0,
    }]
    model = ChurnModel()
    for horizon in years:
        evolved = churned_world(context.world, years=horizon, model=model)
        serviceability, compliance = _audit_rates(evolved)
        rows.append({
            "years_after_snapshot": horizon,
            "serviceability": serviceability,
            "compliance": compliance,
            "serviceability_drift_pp":
                (serviceability - base_serviceability) * 100.0,
            "compliance_drift_pp": (compliance - base_compliance) * 100.0,
        })
    last = rows[-1]
    return ExperimentResult(
        experiment_id="staleness",
        title="Staleness of a one-shot audit under plan churn",
        scalars={
            "serviceability_drift_pp_at_max_horizon":
                last["serviceability_drift_pp"],
            "compliance_drift_pp_at_max_horizon":
                last["compliance_drift_pp"],
        },
        tables={"drift_by_horizon": Table.from_rows(rows)},
        notes=[
            "under upgrade-dominated churn the one-shot audit is a "
            "conservative (slightly pessimistic) estimate of later "
            "compliance — consistent with the paper's §8.1 argument "
            "that its non-compliance findings are representative",
        ],
    )
