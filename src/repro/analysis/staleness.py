"""Staleness experiment (Appendix 8.1's limitation, measured).

The paper queried each address once and argues its non-compliance
findings remain representative because the CAF II deadline had long
passed. This experiment measures the staleness bias directly: evolve
the world by N years of plan churn, re-audit, and report how the
headline metrics drift.

Since the longitudinal subsystem landed, the re-audits run as a
:class:`~repro.longitudinal.campaign.PanelCampaign` with waves at the
requested horizons — the same worlds and byte-identical records as the
original two-point implementation (``churned_world`` is a Markov chain
in the year index), but cells whose world digest did not move between
horizons are replayed instead of re-queried. For richer trajectories
(per-ISP churn attribution, reuse accounting, staleness half-life) see
the ``panel`` experiment (:mod:`repro.analysis.panel`).
"""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.incremental import row_cache_for
from repro.analysis.panel import wave_rates
from repro.analysis.result import ExperimentResult
from repro.longitudinal import PanelCampaign
from repro.synth.churn import ChurnModel
from repro.tabular import Table

__all__ = ["run"]


def run(context: ExperimentContext,
        years: tuple[int, ...] = (1, 3)) -> ExperimentResult:
    """Audit the same world at snapshot time and after churn."""
    horizons = tuple(sorted(set(years)))
    if not horizons or any(h < 1 for h in horizons):
        raise ValueError("years must be positive horizons")
    base_serviceability = context.report.serviceability.aggregate_rate()
    base_compliance = context.report.compliance.aggregate_rate()
    rows = [{
        "years_after_snapshot": 0,
        "serviceability": base_serviceability,
        "compliance": base_compliance,
        "serviceability_drift_pp": 0.0,
        "compliance_drift_pp": 0.0,
    }]
    campaign = PanelCampaign(context.world, model=ChurnModel(),
                             horizons=horizons)
    row_cache = row_cache_for(campaign)
    for outcome in campaign.waves():
        if outcome.wave == 0:
            # The snapshot row above came from the report; still fold
            # its rows so later horizons analyze incrementally.
            wave_rates(outcome, cache=row_cache)
            continue
        serviceability, compliance = wave_rates(outcome, cache=row_cache)
        rows.append({
            "years_after_snapshot": outcome.horizon_years,
            "serviceability": serviceability,
            "compliance": compliance,
            "serviceability_drift_pp":
                (serviceability - base_serviceability) * 100.0,
            "compliance_drift_pp": (compliance - base_compliance) * 100.0,
        })
    last = rows[-1]
    return ExperimentResult(
        experiment_id="staleness",
        title="Staleness of a one-shot audit under plan churn",
        scalars={
            "serviceability_drift_pp_at_max_horizon":
                last["serviceability_drift_pp"],
            "compliance_drift_pp_at_max_horizon":
                last["compliance_drift_pp"],
        },
        tables={"drift_by_horizon": Table.from_rows(rows)},
        notes=[
            "under upgrade-dominated churn the one-shot audit is a "
            "conservative (slightly pessimistic) estimate of later "
            "compliance — consistent with the paper's §8.1 argument "
            "that its non-compliance findings are representative",
        ],
    )
