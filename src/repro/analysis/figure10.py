"""Figure 10 — geospatial distribution of AT&T serviceability.

The paper maps CBG serviceability over California and Georgia and
observes rates falling with distance from major city centers. Without
a plotting stack, the reproduction emits the map's underlying rows
(CBG centroid, serviceability, distance to the nearest city) and
quantifies the visual claim as a correlation between distance and rate.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.stats.correlation import spearman
from repro.tabular import Table

__all__ = ["run"]

MAP_STATES = ("CA", "GA")


def run(context: ExperimentContext) -> ExperimentResult:
    """Emit per-CBG map rows and the distance-vs-rate correlation."""
    analysis = context.report.serviceability
    world = context.report.world
    scalars = {}
    tables = {}
    for state in MAP_STATES:
        sub = analysis.cbg_rates.where_equal(isp_id="att", state=state)
        rows = []
        for row in sub.iter_rows():
            block_group = world.block_groups.get(row["cbg"])
            if block_group is None:
                continue
            rows.append({
                "cbg": row["cbg"],
                "longitude": block_group.centroid.longitude,
                "latitude": block_group.centroid.latitude,
                "serviceability": row["rate"],
                "distance_to_city_miles": block_group.distance_to_city_miles,
            })
        if len(rows) < 3:
            continue
        table = Table.from_rows(rows)
        tables[f"fig10_map_{state}"] = table
        correlation = spearman(table["distance_to_city_miles"],
                               table["serviceability"])
        scalars[f"distance_rate_spearman_{state}"] = correlation.coefficient
    return ExperimentResult(
        experiment_id="figure10",
        title="Geospatial distribution of AT&T serviceability (CA, GA)",
        scalars=scalars,
        tables=tables,
        notes=[
            "paper: areas distant from major city centers exhibit lower "
            "rates — expect a negative distance↔rate correlation",
        ],
    )
