"""Experiment registry: one generator per paper table/figure.

Each experiment module exposes a ``run(context) -> ExperimentResult``;
the registry maps experiment ids ("figure1", "table2", …) to those
callables. The benchmark harness and the CLI both drive this registry,
so ``python -m repro figure4`` and ``pytest benchmarks/bench_figure4.py``
print the same rows.
"""

from repro.analysis.context import ExperimentContext
from repro.analysis.registry import EXPERIMENTS, run_experiment
from repro.analysis.result import ExperimentResult

__all__ = ["EXPERIMENTS", "ExperimentContext", "ExperimentResult", "run_experiment"]
