"""The experiment registry."""

from __future__ import annotations

from typing import Callable, Mapping

from repro.analysis import (
    carriage,
    collection_figures,
    equity,
    panel,
    staleness,
    figure1,
    figure2,
    figure3,
    figure9,
    figure10,
    headline,
    monopoly_figures,
    table1,
    tables34,
)
from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: Mapping[str, Callable[[ExperimentContext], ExperimentResult]] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": monopoly_figures.run_figure4,
    "figure5": monopoly_figures.run_figure5,
    "figure6": monopoly_figures.run_figure6,
    "figure7": collection_figures.run_figure7,
    "figure8": collection_figures.run_figure8,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "figure11": monopoly_figures.run_figure11,
    "figure12": collection_figures.run_figure12,
    "table1": table1.run,
    "table2": collection_figures.run_table2,
    "table3": tables34.run_table3,
    "table4": tables34.run_table4,
    "headline": headline.run,
    # Extensions beyond the paper's figures: §4.2's carriage-value
    # argument, §2.4's open equity question, and §8.1's staleness
    # limitation — the latter both as the original two-point drift
    # check and as a full longitudinal panel. Both longitudinal
    # experiments fold digest-keyed per-cell audit rows
    # (repro.analysis.incremental), so follow-up waves re-analyze
    # only the cells whose world actually changed.
    "carriage": carriage.run,
    "equity": equity.run,
    "staleness": staleness.run,
    "panel": panel.run,
}


def run_experiment(
    experiment_id: str, context: ExperimentContext | None = None
) -> ExperimentResult:
    """Run one experiment by id, building a context if not supplied."""
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return runner(context or ExperimentContext.at_scale())
