"""Markdown reproduction report generator.

``caf-audit report --out report.md`` regenerates a paper-vs-measured
record (the hand-curated EXPERIMENTS.md's machine-written sibling) from
a live run: every registered experiment executes, and every scalar that
has a ``paper_``-prefixed twin is emitted as a comparison row with the
relative deviation.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.context import ExperimentContext
from repro.analysis.registry import EXPERIMENTS, run_experiment
from repro.analysis.result import ExperimentResult

__all__ = ["comparison_rows", "generate_report", "write_report"]


def comparison_rows(result: ExperimentResult) -> list[dict[str, float | str]]:
    """Extract (metric, paper, measured, deviation) rows from scalars."""
    rows = []
    for key, paper_value in result.scalars.items():
        if not key.startswith("paper_"):
            continue
        metric = key[len("paper_"):]
        measured = result.scalars.get(metric)
        if measured is None:
            continue
        if paper_value:
            deviation = f"{(measured - paper_value) / abs(paper_value):+.1%}"
        else:
            deviation = "n/a"
        rows.append({
            "metric": metric,
            "paper": paper_value,
            "measured": measured,
            "relative_deviation": deviation,
        })
    return rows


def generate_report(
    context: ExperimentContext,
    experiment_ids: tuple[str, ...] | None = None,
) -> str:
    """Run experiments and render the markdown report."""
    ids = sorted(experiment_ids or EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    lines = [
        "# Reproduction report (auto-generated)",
        "",
        f"Scenario: seed {context.scenario.seed}, "
        f"address_scale {context.scenario.address_scale}, "
        f"{len(context.scenario.states)} states.",
        "",
        "Measured values come from a live pipeline run; `paper` values "
        "are the published numbers carried in the experiment "
        "definitions. Shape, not point equality, is the reproduction "
        "claim (see EXPERIMENTS.md).",
        "",
    ]
    for experiment_id in ids:
        result = run_experiment(experiment_id, context)
        lines.append(f"## {experiment_id} — {result.title}")
        lines.append("")
        rows = comparison_rows(result)
        if rows:
            lines.append("| metric | paper | measured | rel. deviation |")
            lines.append("|---|---|---|---|")
            for row in rows:
                lines.append(
                    f"| {row['metric']} | {row['paper']:.4g} | "
                    f"{row['measured']:.4g} | {row['relative_deviation']} |")
        else:
            interesting = {k: v for k, v in result.scalars.items()
                           if not k.startswith("paper_")}
            if interesting:
                lines.append("| metric | measured |")
                lines.append("|---|---|")
                for key, value in interesting.items():
                    lines.append(f"| {key} | {value:.4g} |")
        for note in result.notes:
            lines.append(f"- note: {note}")
        lines.append("")
    return "\n".join(lines)


def write_report(
    context: ExperimentContext,
    path: str | Path,
    experiment_ids: tuple[str, ...] | None = None,
) -> Path:
    """Generate and write the report; returns the path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(generate_report(context, experiment_ids),
                           encoding="utf-8")
    return destination
