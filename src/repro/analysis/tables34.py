"""Tables 3 and 4 — collected address counts."""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.bqt.responses import QueryStatus
from repro.tabular import Table

__all__ = ["run_table3", "run_table4"]

STUDY_ISPS = ("att", "centurylink", "frontier", "consolidated")


def run_table3(context: ExperimentContext) -> ExperimentResult:
    """CAF addresses collected per ISP per state, with CB/CBG counts."""
    log = context.report.collection.log
    cells: dict[tuple[str, str], dict[str, set | int]] = {}
    for record in log:
        if not record.status.is_conclusive:
            continue
        key = (record.state_abbreviation, record.isp_id)
        cell = cells.setdefault(key, {"addresses": 0, "blocks": set(), "cbgs": set()})
        cell["addresses"] += 1
        cell["blocks"].add(record.block_geoid)
        cell["cbgs"].add(record.block_group_geoid)
    rows = []
    for (state, isp) in sorted(cells):
        cell = cells[(state, isp)]
        rows.append({
            "state": state,
            "isp": isp,
            "street_addresses": cell["addresses"],
            "census_blocks": len(cell["blocks"]),
            "cbgs": len(cell["cbgs"]),
        })
    table = Table.from_rows(rows)
    totals = {
        f"total_addresses_{isp}": float(sum(
            row["street_addresses"] for row in rows if row["isp"] == isp))
        for isp in STUDY_ISPS
    }
    return ExperimentResult(
        experiment_id="table3",
        title="CAF addresses collected per ISP per state",
        scalars=totals,
        tables={"table3": table},
        notes=[
            "the world's footprint is Table 3 scaled by the scenario's "
            "address_scale; shapes (which ISP operates where, relative "
            "sizes) match the paper",
        ],
    )


def run_table4(context: ExperimentContext) -> ExperimentResult:
    """Addresses queried for Q3 per ISP, split CAF / non-CAF."""
    collection = context.report.q3_collection
    cells: dict[tuple[str, str], dict[str, int]] = {}
    for record in collection.log:
        key = (record.state_abbreviation, record.isp_id)
        cell = cells.setdefault(key, {"caf": 0, "non_caf": 0, "served": 0})
        mode = collection.modes.get(record.address_id)
        incumbent = collection.incumbents.get(record.block_geoid)
        is_caf = mode == "caf" and record.isp_id == incumbent
        cell["caf" if is_caf else "non_caf"] += 1
        if record.status is QueryStatus.SERVICEABLE:
            cell["served"] += 1
    rows = []
    for (state, isp) in sorted(cells):
        cell = cells[(state, isp)]
        rows.append({
            "state": state,
            "isp": isp,
            "caf_queried": cell["caf"],
            "non_caf_queried": cell["non_caf"],
            "served": cell["served"],
        })
    total_caf = sum(row["caf_queried"] for row in rows)
    total_non_caf = sum(row["non_caf_queried"] for row in rows)
    return ExperimentResult(
        experiment_id="table4",
        title="Addresses queried for the Q3 analysis",
        scalars={
            "total_caf_queried": float(total_caf),
            "total_non_caf_queried": float(total_non_caf),
            "analyzed_blocks": float(len(collection.analyzed_blocks)),
        },
        tables={"table4": Table.from_rows(rows)},
    )
