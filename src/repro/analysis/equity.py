"""Equity experiment: non-compliance by income and rurality.

An extension answering §2.4's open question ("whether [the compliance
gap] disproportionately affects certain populations") with the audit
framework the paper built.
"""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.core.equity import EquityAnalysis

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Disaggregate the audit by CBG income quartile and rurality."""
    analysis = EquityAnalysis(context.report.audit, context.report.world)
    correlation = analysis.income_serviceability_correlation()
    gap = analysis.rural_urban_gap()
    scalars = {
        "income_serviceability_spearman": correlation.coefficient,
        "disparity_ratio_q4_over_q1": analysis.disparity_ratio(),
    }
    if "rural" in gap:
        scalars["rural_serviceability"] = gap["rural"]
    if "urban" in gap:
        scalars["urban_serviceability"] = gap["urban"]
    return ExperimentResult(
        experiment_id="equity",
        title="Non-compliance by income quartile and rurality",
        scalars=scalars,
        tables={"income_quartiles": analysis.quartile_table()},
        notes=[
            "extension: the paper's §2.4 notes USAC's compliance gap "
            "cannot be disaggregated by population; the audit dataset can",
        ],
    )
