"""The uniform experiment output shape."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tabular import Table, render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """What one table/figure reproduction produced.

    ``scalars`` carries headline numbers (with ``paper_``-prefixed keys
    for the published values where the paper states them), ``tables``
    carries row sets, and ``series`` carries CDF traces as ``(x, y)``
    arrays.
    """

    experiment_id: str
    title: str
    scalars: dict[str, float] = field(default_factory=dict)
    tables: dict[str, Table] = field(default_factory=dict)
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self, max_rows: int = 30) -> str:
        """Human-readable report for the CLI / bench output."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.scalars:
            width = max(len(k) for k in self.scalars)
            for key, value in self.scalars.items():
                parts.append(f"  {key.ljust(width)} = {value:.4g}")
        for name, table in self.tables.items():
            parts.append("")
            parts.append(render_table(table, title=f"-- {name} --",
                                      max_rows=max_rows))
        for name, (xs, ys) in self.series.items():
            quantiles = [0.1, 0.25, 0.5, 0.75, 0.9]
            points = ", ".join(
                f"p{int(q * 100)}={_series_quantile(xs, ys, q):.3g}"
                for q in quantiles
            )
            parts.append(f"  series {name} (n={xs.size}): {points}")
        for note in self.notes:
            parts.append(f"  note: {note}")
        return "\n".join(parts)


def _series_quantile(xs: np.ndarray, ys: np.ndarray, q: float) -> float:
    """Invert a CDF series at ``q``."""
    index = int(np.searchsorted(ys, q, side="left"))
    index = min(index, xs.size - 1)
    return float(xs[index])
