"""Figure 3 — population density vs AT&T serviceability (CA, GA).

Also covers the Section 4.1 claim that the correlation holds in every
AT&T state except Mississippi.
"""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.tabular import Table

__all__ = ["run"]

HIGHLIGHT_STATES = ("CA", "GA")


def run(context: ExperimentContext) -> ExperimentResult:
    """Reproduce the density scatter and per-state correlations."""
    analysis = context.report.serviceability
    att_states = context.report.audit.states_for_isp("att")

    scalars = {}
    rows = []
    for state in att_states:
        if len(analysis.cbg_rates.where_equal(isp_id="att", state=state)) < 3:
            continue  # too few CBGs for a correlation at tiny scales
        correlation = analysis.density_correlation("att", state)
        rows.append({
            "state": state,
            "spearman_r": correlation.coefficient,
            "p_value": correlation.p_value,
            "n_cbgs": correlation.n,
            "significant": correlation.significant,
        })
        if state in HIGHLIGHT_STATES:
            scalars[f"spearman_{state}"] = correlation.coefficient

    tables = {"att_density_correlation_by_state": Table.from_rows(rows)}
    for state in HIGHLIGHT_STATES:
        if state in att_states:
            tables[f"fig3_scatter_{state}"] = analysis.density_scatter(
                "att", state)

    return ExperimentResult(
        experiment_id="figure3",
        title="Population density vs AT&T serviceability rates",
        scalars=scalars,
        tables=tables,
        notes=[
            "paper: strong positive correlation in every AT&T state "
            "except Mississippi (profile encodes MS as density-flat)",
        ],
    )
