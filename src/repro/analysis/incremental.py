"""Incremental per-wave audit analysis: per-cell rows + a pure reduce.

The audit aggregations (:class:`~repro.core.audit.AuditDataset`) are
weighted means of *per-CBG* rates — which makes them expressible as a
fold over independent per-cell contributions:

* every (ISP, CBG) cell reduces to one **row** — its serviceability
  and compliance rates over the cell's conclusive records, its queried
  count, and its CAF-address weight;
* every Q3 block reduces to one row — analyzed flag, record count, and
  per-mode address counts;
* the wave-level metrics are a **pure reduce** of those rows in
  canonical cell order (the same first-seen order ``Table.group_by``
  walks), so the fold reproduces the full-table computation *bitwise*,
  `np.dot` summation order included.

A cell's row is fully determined by its record stream, which the
longitudinal digests (:mod:`repro.longitudinal.digests`) content-
address: digest equal ⟹ records byte-identical ⟹ row byte-identical.
:class:`WaveRowCache` therefore caches rows keyed by those same
digests — a wave at c% churn recomputes c% of the rows and folds the
rest from cache, making per-wave analysis O(churned cells) instead of
O(total records). Equality with the full recompute is enforced by
``assert_incremental_analysis_equivalent`` in
``tests/harness/equivalence.py``.

Rows are plain dicts; on disk each row is one compact binary column
document (:mod:`repro.tabular.colio`, ``CACHE_FILE_FORMAT`` 2) whose
typed buffers restore every float bit-exactly, so a row reloaded from
the disk-backed cache is byte-equal to the row that was stored. The
legacy format-1 JSON-per-cell files are still readable, so caches
persisted before the format change stay warm.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.bqt.responses import QueryStatus
from repro.core.audit import AuditDataset, ComplianceStandard
from repro.fcc.urban_rate_survey import generate_urban_rate_survey
from repro.obs.metrics import REGISTRY as _METRICS
from repro.runtime.atomicio import (atomic_write_bytes,
                                    sweep_stale_tmp_files)
from repro.runtime.cache import content_digest
from repro.stats.weighted import weighted_mean
from repro.tabular.colio import decode_row_document, encode_row_document
from repro.tabular.frame import factorize

if TYPE_CHECKING:  # pragma: no cover
    from repro.longitudinal.campaign import PanelCampaign, WaveOutcome

__all__ = [
    "CACHE_FILE_FORMAT",
    "ROW_FORMAT_VERSION",
    "WaveAnalysis",
    "WaveRowCache",
    "full_wave_analysis",
    "q12_cell_row",
    "q3_block_row",
    "reduce_rows",
    "row_cache_for",
    "standard_for_seed",
    "wave_analysis",
]

# Versions the row *schema* — it keys every cache namespace digest, so
# bumping it orphans all persisted rows. The on-disk file layout is
# versioned separately by CACHE_FILE_FORMAT.
ROW_FORMAT_VERSION = 1
# On-disk layout: 2 = binary column documents (tabular.colio, one .col
# file per row); 1 = the legacy JSON-per-cell files, still readable.
CACHE_FILE_FORMAT = 2
_NAMESPACE_DIGITS = 16

# Sentinel distinguishing "not cached" from a cached None row (a cell
# whose records were all inconclusive contributes no row, and that
# absence is itself worth caching).
_MISS = object()


def standard_for_seed(seed: int) -> ComplianceStandard:
    """The wave compliance standard: the urban-rate-survey benchmark
    generated from the world seed — constant across a panel's waves,
    since churned worlds share the snapshot's scenario."""
    return ComplianceStandard(survey=generate_urban_rate_survey(seed=seed))


# ----------------------------------------------------------------------
# Per-cell rows
# ----------------------------------------------------------------------

def q12_cell_row(cell, records, weight: int,
                 standard: ComplianceStandard) -> dict | None:
    """One (ISP, CBG) cell's audit contribution, or ``None``.

    Mirrors :class:`~repro.core.audit.AuditDataset` exactly: only
    conclusive records count, rates are ``np.mean`` over 0/1 floats in
    record order, and a cell with no conclusive records contributes
    nothing (the dataset's group-by never sees it).
    """
    served = []
    compliant = []
    for record in records:
        if not record.status.is_conclusive:
            continue
        served.append(record.status is QueryStatus.SERVICEABLE)
        compliant.append(standard.record_complies(record))
    if not served:
        return None
    return {
        "isp_id": cell.isp_id,
        "state": cell.state,
        "cbg": cell.cbg,
        "served_rate": float(np.mean(np.asarray(served, dtype=float))),
        "compliant_rate": float(np.mean(np.asarray(compliant, dtype=float))),
        "queried": len(served),
        "weight": int(weight),
    }


def q3_block_row(outcome) -> dict:
    """One Q3 candidate block's contribution (always a row — an
    unanalyzed block contributes explicit zeros, so the reduce can
    still count candidates)."""
    if outcome is None:
        return {"analyzed": False, "records": 0, "modes": {}}
    modes: dict[str, int] = {}
    for mode in outcome.modes.values():
        modes[mode] = modes.get(mode, 0) + 1
    return {
        "analyzed": True,
        "records": len(outcome.records),
        "modes": modes,
    }


# ----------------------------------------------------------------------
# The pure reduce
# ----------------------------------------------------------------------

@dataclass
class WaveAnalysis:
    """One wave's audit aggregations, reduced from per-cell rows."""

    serviceability: float
    compliance: float
    # ISP → {"serviceability": rate, "compliance": rate}, sorted keys.
    by_isp: dict[str, dict[str, float]]
    q12_cells: int
    q12_queried: int
    q3_analyzed_blocks: int
    q3_records: int
    q3_mode_counts: dict[str, int]

    def to_payload(self) -> dict:
        """JSON-serializable form; canonical dumps of two analyses are
        byte-equal iff every float is bit-equal."""
        return {
            "serviceability": self.serviceability,
            "compliance": self.compliance,
            "by_isp": self.by_isp,
            "q12_cells": self.q12_cells,
            "q12_queried": self.q12_queried,
            "q3_analyzed_blocks": self.q3_analyzed_blocks,
            "q3_records": self.q3_records,
            "q3_mode_counts": self.q3_mode_counts,
        }


def reduce_rows(q12_rows: list[dict], q3_rows: list[dict]) -> WaveAnalysis:
    """Fold per-cell rows (canonical cell order, ``None`` rows already
    dropped) into the wave's aggregations.

    The fold is a vectorized pass over column buffers extracted once
    from the row dicts. Per-ISP slices come from a stable argsort of
    the factorized ISP column, which keeps each ISP's rows in original
    row order — the exact operand order the per-row fold used — so
    every ``np.dot`` reproduces the historical result bit for bit.
    """
    if not q12_rows:
        raise ValueError("audit dataset is empty — no conclusive records")
    count = len(q12_rows)
    served = np.fromiter((row["served_rate"] for row in q12_rows),
                         dtype=float, count=count)
    compliant = np.fromiter((row["compliant_rate"] for row in q12_rows),
                            dtype=float, count=count)
    # weighted_mean casts weights to float anyway; extracting them as
    # float up front produces the same operands.
    weights = np.fromiter((row["weight"] for row in q12_rows),
                          dtype=float, count=count)
    queried = np.fromiter((row["queried"] for row in q12_rows),
                          dtype=np.int64, count=count)
    isps = np.fromiter((row["isp_id"] for row in q12_rows),
                       dtype=object, count=count)
    codes, _ = factorize(isps)
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
    starts = np.concatenate((np.zeros(1, dtype=np.intp), boundaries))
    ends = np.concatenate((boundaries,
                           np.asarray([count], dtype=np.intp)))
    segments = {
        isps[order[start]]: order[start:end]
        for start, end in zip(starts.tolist(), ends.tolist())
    }
    by_isp = {
        isp: {
            "serviceability": weighted_mean(served[rows], weights[rows]),
            "compliance": weighted_mean(compliant[rows], weights[rows]),
        }
        for isp, rows in sorted(segments.items())
    }
    mode_counts: dict[str, int] = {}
    for row in q3_rows:
        for mode, mode_count in row["modes"].items():
            mode_counts[mode] = mode_counts.get(mode, 0) + mode_count
    q3_count = len(q3_rows)
    analyzed = np.fromiter((row["analyzed"] for row in q3_rows),
                           dtype=bool, count=q3_count)
    records = np.fromiter((row["records"] for row in q3_rows),
                          dtype=np.int64, count=q3_count)
    return WaveAnalysis(
        serviceability=weighted_mean(served, weights),
        compliance=weighted_mean(compliant, weights),
        by_isp=by_isp,
        q12_cells=count,
        q12_queried=int(queried.sum()),
        q3_analyzed_blocks=int(np.count_nonzero(analyzed)),
        q3_records=int(records.sum()),
        q3_mode_counts=dict(sorted(mode_counts.items())),
    )


# ----------------------------------------------------------------------
# The digest-keyed row cache
# ----------------------------------------------------------------------

class WaveRowCache:
    """Per-cell analysis rows keyed by the cells' world digests.

    In-memory always; give ``directory`` to additionally persist each
    row as one binary column document (``tabular.colio``, format 2)
    under ``directory/<namespace16>/rows/`` (the atomic-publish idiom
    every durable store here shares), so a resumed panel's analysis is
    warm across processes. Format-1 caches — the legacy JSON-per-cell
    files — remain readable: a lookup falls back to the ``.json`` file
    when no ``.col`` exists, and the next ``put`` writes format 2.
    ``namespace`` must digest everything *besides* the cell digest
    that shapes a row — the panel fingerprint (scenario, policy,
    replacement budget) and the compliance standard — or two panels
    could exchange rows.
    """

    def __init__(self, namespace: str, directory: str | Path | None = None):
        self._namespace = namespace
        self._directory = (None if directory is None
                           else Path(directory) / namespace[:_NAMESPACE_DIGITS]
                           / "rows")
        self._rows: dict[tuple[str, str], dict | None] = {}
        self.hits = 0
        self.misses = 0
        # Sidecar telemetry mirrors of the public counters above.
        self._metric_hits = _METRICS.counter("wave_row_cache_hits_total")
        self._metric_misses = _METRICS.counter("wave_row_cache_misses_total")

    @property
    def namespace(self) -> str:
        return self._namespace

    @property
    def directory(self) -> Path | None:
        """The on-disk row directory (None = memory only)."""
        return self._directory

    def _path_for(self, kind: str, digest: str) -> Path:
        """The format-2 binary column document for one row."""
        return self._directory / f"{kind}-{digest}.col"

    def _legacy_path_for(self, kind: str, digest: str) -> Path:
        """The format-1 JSON file (read-only upgrade path)."""
        return self._directory / f"{kind}-{digest}.json"

    def get(self, kind: str, digest: str):
        """A cached row (possibly ``None``), or the module-level miss
        sentinel; use :meth:`lookup` for the tuple form."""
        key = (kind, digest)
        if key in self._rows:
            self.hits += 1
            self._metric_hits.inc()
            return self._rows[key]
        if self._directory is not None:
            row = self._load(kind, digest)
            if row is not _MISS:
                self._rows[key] = row
                self.hits += 1
                self._metric_hits.inc()
                return row
        self.misses += 1
        self._metric_misses.inc()
        return _MISS

    def lookup(self, kind: str, digest: str) -> tuple[bool, dict | None]:
        """``(hit, row)`` — row is meaningful only when ``hit``."""
        row = self.get(kind, digest)
        if row is _MISS:
            return False, None
        return True, row

    def put(self, kind: str, digest: str, row: dict | None) -> None:
        self._rows[(kind, digest)] = row
        if self._directory is not None:
            self._directory.mkdir(parents=True, exist_ok=True)
            payload = encode_row_document(row, {
                "format": CACHE_FILE_FORMAT,
                "namespace": self._namespace,
                "digest": digest,
                # Wrapped so a cached None row checksums cleanly.
                "row_sha256": content_digest({"row": row}),
            })
            atomic_write_bytes(self._path_for(kind, digest), payload)

    def _load(self, kind: str, digest: str):
        """Load one verified persisted row; damage is a miss.

        Tries the format-2 column document first, then the legacy
        format-1 JSON file. Like every durable store here, the payload
        is checksummed — a corrupted-but-parseable row folded into a
        wave's weighted rates would silently break the byte-equality
        contract. A failing file is unlinked so the recompute's re-put
        replaces it.
        """
        row = self._load_col(kind, digest)
        if row is not _MISS:
            return row
        return self._load_legacy_json(kind, digest)

    def _load_col(self, kind: str, digest: str):
        path = self._path_for(kind, digest)
        try:
            payload = path.read_bytes()
        except OSError:
            return _MISS
        try:
            meta, row = decode_row_document(payload)
        except ValueError:
            # Structurally damaged (torn write, truncation): quarantine
            # so the re-put replaces it.
            path.unlink(missing_ok=True)
            return _MISS
        if (not isinstance(meta, dict)
                or meta.get("format") != CACHE_FILE_FORMAT
                or meta.get("namespace") != self._namespace):
            # A newer file format, or another panel sharing the 16-hex
            # directory prefix: not ours to judge, never unlinked.
            return _MISS
        if (meta.get("digest") != digest
                or content_digest({"row": row}) != meta.get("row_sha256")):
            # Claims our format and namespace but fails its checks:
            # damage. Quarantine so the re-put replaces it.
            path.unlink(missing_ok=True)
            return _MISS
        return row

    def _load_legacy_json(self, kind: str, digest: str):
        import json

        path = self._legacy_path_for(kind, digest)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return _MISS
        except json.JSONDecodeError:
            path.unlink(missing_ok=True)
            return _MISS
        if (not isinstance(document, dict)
                or document.get("format") != ROW_FORMAT_VERSION
                or document.get("namespace") != self._namespace):
            return _MISS
        if (document.get("digest") != digest
                or "row" not in document
                or content_digest({"row": document["row"]})
                != document.get("row_sha256")):
            path.unlink(missing_ok=True)
            return _MISS
        return document["row"]

    def sweep_stale_tmp_files(self) -> None:
        if self._directory is not None:
            sweep_stale_tmp_files(self._directory)

    def sweep_unreferenced(self, referenced: set[str]) -> list[str]:
        """Delete persisted rows whose digest is not in ``referenced``.

        The disk store is keyed by cell digest, so churned cells leave
        a stale row file behind each wave; sweeping against the wave
        manifests' referenced digests (``PanelStore
        .referenced_digests()``) bounds the row store to the live
        panel, exactly like the cell CAS sweep. Returns the digests
        removed. In-memory rows are untouched (they die with the
        process).
        """
        if self._directory is None or not self._directory.exists():
            return []
        removed: list[str] = []
        paths = [*self._directory.glob("*.col"),
                 *self._directory.glob("*.json")]
        for path in sorted(paths):
            digest = path.stem.split("-", 1)[-1]
            if digest in referenced:
                continue
            path.unlink(missing_ok=True)
            removed.append(digest)
        sweep_stale_tmp_files(self._directory)
        return removed


def row_cache_for(campaign: "PanelCampaign",
                  directory: str | Path | None = None) -> WaveRowCache:
    """The row cache for one panel campaign.

    The namespace digests the campaign fingerprint (scenario, churn
    model, policy, subsets, replacement budget — everything that
    shapes a cell's records beyond its world digest) plus the
    compliance standard's identifying inputs. ``directory`` defaults
    to memory-only; pass the panel store root to persist rows next to
    the wave CAS.
    """
    return WaveRowCache(
        content_digest({
            "format": ROW_FORMAT_VERSION,
            "kind": "wave-analysis-rows",
            "panel": campaign.fingerprint,
            "survey_seed": campaign.world.config.seed,
        }),
        directory=directory,
    )


# ----------------------------------------------------------------------
# Wave analysis: incremental, and the full-recompute oracle
# ----------------------------------------------------------------------

def wave_analysis(outcome: "WaveOutcome",
                  cache: WaveRowCache | None = None,
                  standard: ComplianceStandard | None = None) -> WaveAnalysis:
    """One wave's audit aggregations, folded from per-cell rows.

    With a ``cache``, rows for cells whose digest is already cached
    (unchanged since a prior wave, or a resumed panel's persisted
    rows) are folded without touching their records; only churned
    cells pay the row computation. Without one, every row is computed
    fresh — same result, full price.

    A custom ``standard`` cannot be combined with a ``cache``: the
    cache namespace (:func:`row_cache_for`) digests only the default
    standard's inputs, so rows computed under a different standard
    would be silently exchanged — wrong compliance rates with no
    error. Analyze custom standards cache-less.
    """
    if standard is not None and cache is not None:
        raise ValueError(
            "a custom compliance standard cannot be combined with a row "
            "cache; the cache namespace is keyed by the default "
            "(survey-seeded) standard only")
    if standard is None:
        standard = standard_for_seed(outcome.world.config.seed)
    q12_rows: list[dict] = []
    for cell, digest in outcome.digests.q12.items():
        hit, row = (cache.lookup("q12", digest) if cache is not None
                    else (False, None))
        if not hit:
            row = q12_cell_row(
                cell, outcome.cells.q12_records[cell],
                outcome.collection.cbg_totals[(cell.isp_id, cell.cbg)],
                standard)
            if cache is not None:
                cache.put("q12", digest, row)
        if row is not None:
            q12_rows.append(row)
    q3_rows: list[dict] = []
    for block, digest in outcome.digests.q3.items():
        hit, row = (cache.lookup("q3", digest) if cache is not None
                    else (False, None))
        if not hit:
            row = q3_block_row(outcome.cells.q3_outcomes[block])
            if cache is not None:
                cache.put("q3", digest, row)
        q3_rows.append(row)
    return reduce_rows(q12_rows, q3_rows)


def full_wave_analysis(outcome: "WaveOutcome",
                       standard: ComplianceStandard | None = None,
                       ) -> WaveAnalysis:
    """The same aggregations recomputed from the entire merged logbook
    through :class:`~repro.core.audit.AuditDataset` — the oracle the
    incremental fold is proven byte-equal against, sharing none of the
    per-cell row machinery."""
    if standard is None:
        standard = standard_for_seed(outcome.world.config.seed)
    dataset = AuditDataset(
        outcome.collection.log, outcome.collection.cbg_totals,
        world=outcome.world, standard=standard)
    by_isp = {
        isp: {
            "serviceability": dataset.serviceability_rate(isp_id=isp),
            "compliance": dataset.compliance_rate(isp_id=isp),
        }
        for isp in sorted(dataset.isps())
    }
    mode_counts: dict[str, int] = {}
    for mode in outcome.q3.modes.values():
        mode_counts[mode] = mode_counts.get(mode, 0) + 1
    return WaveAnalysis(
        serviceability=dataset.serviceability_rate(),
        compliance=dataset.compliance_rate(),
        by_isp=by_isp,
        q12_cells=len(dataset.cbg_rates("served")),
        q12_queried=len(dataset),
        q3_analyzed_blocks=len(outcome.q3.analyzed_blocks),
        q3_records=len(outcome.q3.log),
        q3_mode_counts=dict(sorted(mode_counts.items())),
    )
