"""Ablations over the paper's design choices.

The paper makes four methodological choices it motivates but does not
fully ablate; this module quantifies each on the synthetic world:

* **CBG weighting** (Section 4.1): aggregate rates weight per-CBG rates
  by CAF address counts. The ablation compares weighted, unweighted-
  per-CBG and unweighted-per-address aggregates.
* **Sampling floor** (Section 3.1): at least 30 addresses per CBG. The
  ablation replays the collection with smaller floors and reports the
  estimate drift against a high-coverage reference.
* **Retry budget** (Section 3.2): failed queries are retried with
  rotated IPs. The ablation varies the attempt budget and reports the
  unknown rate vs total (virtual) query time.
* **Q3 neighbor granularity** (Section 4.3): neighbors are compared
  within census *blocks*, not block groups. The ablation re-keys the
  comparison at CBG granularity and reports how outcome shares move.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.bqt.engine import EngineConfig
from repro.bqt.responses import QueryStatus
from repro.core.collection import CollectionCampaign
from repro.core.monopoly import BlockComparison, MonopolyAnalysis
from repro.core.sampling import SamplingPolicy
from repro.tabular import Table

__all__ = [
    "run_weighting_ablation",
    "run_sampling_floor_ablation",
    "run_retry_budget_ablation",
    "run_q3_granularity_ablation",
]


def run_weighting_ablation(context: ExperimentContext) -> ExperimentResult:
    """Weighted vs unweighted serviceability aggregates."""
    audit = context.report.audit
    weighted = audit.serviceability_rate()
    cbg_rates = audit.cbg_rates("served")
    unweighted_cbg = float(np.mean(cbg_rates["rate"]))
    per_address = float(np.mean(audit.table["served"].astype(float)))
    return ExperimentResult(
        experiment_id="ablation_weighting",
        title="CBG weighting of the serviceability rate",
        scalars={
            "weighted_rate": weighted,
            "unweighted_cbg_rate": unweighted_cbg,
            "per_address_rate": per_address,
            "weighting_shift_pp": 100.0 * (weighted - unweighted_cbg),
        },
        notes=[
            "weighting matters because the sampling rate varies with CBG "
            "size: small CBGs are fully queried, large ones at 10%",
        ],
    )


def run_sampling_floor_ablation(
    context: ExperimentContext,
    floors: tuple[int, ...] = (5, 10, 30),
    isp_id: str = "frontier",
    states: tuple[str, ...] = ("OH", "IL"),
) -> ExperimentResult:
    """Serviceability estimate vs per-CBG sampling floor."""
    world = context.world
    reference_policy = SamplingPolicy(min_samples=200, sampling_fraction=0.9)
    reference = _collect_rate(world, isp_id, states, reference_policy)
    rows = []
    for floor in floors:
        policy = SamplingPolicy(min_samples=floor, sampling_fraction=0.10)
        rate = _collect_rate(world, isp_id, states, policy)
        rows.append({
            "floor": floor,
            "estimated_rate": rate,
            "abs_error_pp": abs(rate - reference) * 100.0,
        })
    return ExperimentResult(
        experiment_id="ablation_sampling_floor",
        title="Per-CBG sampling floor vs estimate stability",
        scalars={"reference_rate": reference},
        tables={"floor_sweep": Table.from_rows(rows)},
    )


def _collect_rate(world, isp_id, states, policy) -> float:
    from repro.core.audit import AuditDataset

    campaign = CollectionCampaign(world, policy=policy)
    result = campaign.run(isps=(isp_id,), states=states)
    audit = AuditDataset(result.log, result.cbg_totals, world=world)
    return audit.serviceability_rate()


def run_retry_budget_ablation(
    context: ExperimentContext,
    budgets: tuple[int, ...] = (1, 2, 3, 5),
    isp_id: str = "att",
    states: tuple[str, ...] = ("MS",),
) -> ExperimentResult:
    """Unknown rate and campaign time vs the per-address attempt budget."""
    world = context.world
    rows = []
    for budget in budgets:
        campaign = CollectionCampaign(
            world,
            engine_config=EngineConfig(max_attempts=budget),
            max_replacements=0,
        )
        result = campaign.run(isps=(isp_id,), states=states)
        unknown = sum(1 for r in result.log
                      if r.status is QueryStatus.UNKNOWN)
        rows.append({
            "max_attempts": budget,
            "queried": len(result.log),
            "unknown_fraction": unknown / len(result.log),
            "virtual_hours": result.log.total_virtual_seconds() / 3600.0,
        })
    table = Table.from_rows(rows)
    return ExperimentResult(
        experiment_id="ablation_retry_budget",
        title="Retry budget vs unknown rate vs campaign time",
        tables={"budget_sweep": table},
        notes=[
            "retries only cure transient failures; the persistent "
            "dropdown misses (Table 2) survive any budget — the paper's "
            "replacement sampling is what recovers coverage",
        ],
    )


def run_q3_granularity_ablation(context: ExperimentContext) -> ExperimentResult:
    """Type A outcome shares at block vs block-group granularity."""
    monopoly = context.report.monopoly
    block_shares = monopoly.outcome_shares("A", "monopoly")

    # Re-key the same per-block averages at CBG granularity: pool the
    # block averages inside each CBG (weighted by served counts).
    pooled: dict[str, dict[str, list[tuple[float, int]]]] = {}
    for block in monopoly.blocks:
        if block.block_type != "A":
            continue
        cbg = block.block_geoid[:12]
        entry = pooled.setdefault(cbg, {"caf": [], "monopoly": []})
        entry["caf"].append((block.caf_avg_mbps, block.n_caf_served))
        entry["monopoly"].append(
            (block.monopoly_avg_mbps, block.n_monopoly_served))
    cbg_blocks = []
    for cbg, entry in pooled.items():
        caf_avg = _pooled_mean(entry["caf"])
        monopoly_avg = _pooled_mean(entry["monopoly"])
        cbg_blocks.append(BlockComparison(
            block_geoid=cbg + "000",
            incumbent_isp_id="pooled",
            caf_avg_mbps=caf_avg,
            monopoly_avg_mbps=monopoly_avg,
            competition_avg_mbps=None,
            n_caf_served=sum(n for _, n in entry["caf"]),
            n_monopoly_served=sum(n for _, n in entry["monopoly"]),
            n_competition_served=0,
        ))
    cbg_shares = MonopolyAnalysis(cbg_blocks).outcome_shares("A", "monopoly")
    return ExperimentResult(
        experiment_id="ablation_q3_granularity",
        title="Q3 neighbor granularity: census block vs block group",
        scalars={
            "block_tie_share": block_shares["tie"],
            "cbg_tie_share": cbg_shares["tie"],
            "block_caf_share": block_shares["caf"],
            "cbg_caf_share": cbg_shares["caf"],
            "num_blocks": float(len(monopoly.of_type("A"))),
            "num_cbgs": float(len(cbg_blocks)),
        },
        notes=[
            "pooling across a CBG mixes blocks with different outcomes, "
            "eroding exact ties — the paper's block granularity keeps "
            "neighbors genuinely comparable",
        ],
    )


def _pooled_mean(pairs: list[tuple[float, int]]) -> float:
    total_weight = sum(max(n, 1) for _, n in pairs)
    return sum(value * max(n, 1) for value, n in pairs) / total_weight
