"""Figure 2 — serviceability rates by ISP and state."""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.synth.calibration import (
    PAPER_AGGREGATE_SERVICEABILITY,
    PAPER_SERVICEABILITY_BY_ISP,
)
from repro.tabular import Table

__all__ = ["run"]


def _box_table(stats: dict[str, object]) -> Table:
    rows = []
    for key, box in sorted(stats.items()):
        row = {"group": key}
        row.update(box.row())
        rows.append(row)
    return Table.from_rows(rows)


def run(context: ExperimentContext) -> ExperimentResult:
    """Reproduce Figures 2a/2b/2c from the audit."""
    analysis = context.report.serviceability

    scalars = {
        "aggregate_serviceability": analysis.aggregate_rate(),
        "paper_aggregate_serviceability": PAPER_AGGREGATE_SERVICEABILITY,
    }
    for isp, rate in analysis.rate_by_isp().items():
        scalars[f"serviceability_{isp}"] = rate
        paper = PAPER_SERVICEABILITY_BY_ISP.get(isp)
        if paper is not None:
            scalars[f"paper_serviceability_{isp}"] = paper

    return ExperimentResult(
        experiment_id="figure2",
        title="Serviceability rates by ISP and state",
        scalars=scalars,
        tables={
            "fig2a_cbg_rate_distribution_by_isp": _box_table(
                analysis.cbg_rate_distribution_by_isp()),
            "fig2b_cbg_rate_distribution_by_state": _box_table(
                analysis.cbg_rate_distribution_by_state()),
            "fig2c_att_distribution_by_state": _box_table(
                analysis.isp_state_distribution("att")),
            "state_isp_rates": analysis.rate_by_state_isp(),
        },
    )
