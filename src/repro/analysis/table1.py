"""Table 1 — certified vs advertised maximum download speeds."""

from __future__ import annotations

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.synth.calibration import (
    PAPER_AGGREGATE_COMPLIANCE,
    PAPER_COMPLIANCE_BY_ISP,
)

__all__ = ["run"]


def run(context: ExperimentContext) -> ExperimentResult:
    """Reproduce Table 1 and the Section 4.2 compliance headlines."""
    compliance = context.report.compliance

    scalars = {
        "aggregate_compliance": compliance.aggregate_rate(),
        "paper_aggregate_compliance": PAPER_AGGREGATE_COMPLIANCE,
        "rate_compliance_fraction": compliance.rate_compliance_fraction(),
        "paper_rate_compliance_fraction": 1.0,
    }
    for isp, rate in compliance.rate_by_isp().items():
        scalars[f"compliance_{isp}"] = rate
        paper = PAPER_COMPLIANCE_BY_ISP.get(isp)
        if paper is not None:
            scalars[f"paper_compliance_{isp}"] = paper
    low, high = compliance.price_range_for_tier(10.0)
    scalars["price_10mbps_min_usd"] = low
    scalars["price_10mbps_max_usd"] = high

    return ExperimentResult(
        experiment_id="table1",
        title="Certified (USAC) vs advertised (BQT) download speeds",
        scalars=scalars,
        tables={"table1": compliance.table1()},
        notes=[
            "paper prices for the 10 Mbps tier ranged $30-$55, always "
            "under the $89 benchmark",
        ],
    )
