"""Seed sweep: estimator variance across synthetic worlds.

The paper has one world (reality) and therefore one number per metric.
A simulated reproduction can do better: rebuild the world under
different seeds, re-run the full pipeline, and report the spread of the
headline estimates. This is the repository's answer to "how much of the
measured value is estimator noise?" — and the justification for the
tolerance bands used in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.core.pipeline import run_full_audit
from repro.synth.scenario import ScenarioConfig
from repro.tabular import Table

__all__ = ["run_seed_sweep"]


def run_seed_sweep(
    context: ExperimentContext, seeds: tuple[int, ...] = (0, 1, 2)
) -> ExperimentResult:
    """Re-run the pipeline across seeds and summarize the spread."""
    if not seeds:
        raise ValueError("need at least one seed")
    base = context.scenario
    rows = []
    for seed in seeds:
        scenario = ScenarioConfig(
            seed=seed,
            address_scale=base.address_scale,
            cbg_size_median=base.cbg_size_median,
            cbg_size_sigma=base.cbg_size_sigma,
            max_cbg_size=base.max_cbg_size,
        )
        report = run_full_audit(scenario=scenario)
        numbers = report.headline()
        rows.append({
            "seed": seed,
            "serviceability": numbers["serviceability_rate"],
            "compliance": numbers["compliance_rate"],
            "type_a_caf_share": numbers["type_a_caf_better_share"],
        })
    table = Table.from_rows(rows)
    scalars = {}
    for metric in ("serviceability", "compliance", "type_a_caf_share"):
        values = table[metric]
        scalars[f"{metric}_mean"] = float(np.mean(values))
        scalars[f"{metric}_spread_pp"] = float(
            (np.max(values) - np.min(values)) * 100.0)
    return ExperimentResult(
        experiment_id="seed_sweep",
        title="Estimator spread across synthetic worlds",
        scalars=scalars,
        tables={"per_seed": table},
        notes=[
            f"{len(seeds)} full pipeline runs at address_scale="
            f"{base.address_scale}",
        ],
    )
