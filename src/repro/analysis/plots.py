"""ASCII rendering of CDFs and bars for terminal-first reporting.

The repository has no plotting stack, but the paper's figures are
mostly CDFs and grouped bars — both legible as text. These renderers
back `caf-audit experiment --plot` style output and give the examples
something better than raw quantiles to show.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_cdf", "ascii_bars"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def ascii_cdf(
    series: Mapping[str, tuple[np.ndarray, np.ndarray]],
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    title: str | None = None,
) -> str:
    """Render one or more CDF traces on a shared text canvas.

    Each named series is an ``(x, y)`` pair as produced by
    :meth:`repro.stats.ecdf.ECDF.series`; up to nine series are drawn
    with the markers 1–9 (overlaps show the later series).
    """
    if not series:
        raise ValueError("no series to plot")
    if len(series) > 9:
        raise ValueError("at most 9 series per canvas")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")

    all_x = np.concatenate([xs for xs, _ in series.values()])
    if log_x:
        all_x = all_x[all_x > 0]
        if all_x.size == 0:
            raise ValueError("log_x with no positive values")
    x_low, x_high = float(all_x.min()), float(all_x.max())
    if log_x:
        x_low, x_high = np.log10(x_low), np.log10(x_high)
    if x_high == x_low:
        x_high = x_low + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items(), start=1):
        marker = str(index)
        values = np.log10(np.maximum(xs, 1e-12)) if log_x else xs
        for x, y in zip(values, ys):
            column = int((x - x_low) / (x_high - x_low) * (width - 1))
            row = int((1.0 - y) * (height - 1))
            canvas[row][min(max(column, 0), width - 1)] = marker

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(canvas):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:4.1f} |" + "".join(row))
    axis_label = "log10(x)" if log_x else "x"
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_low:<10.3g}{axis_label:^{width - 20}}{x_high:>10.3g}")
    legend = "  ".join(f"{i}={name}"
                       for i, name in enumerate(series, start=1))
    lines.append(f"      {legend}")
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 40,
    maximum: float | None = None,
    value_format: str = ".2f",
    title: str | None = None,
) -> str:
    """Render a labelled horizontal bar chart."""
    if not values:
        raise ValueError("no bars to plot")
    top = maximum if maximum is not None else max(values.values())
    if top <= 0:
        raise ValueError("maximum must be positive")
    label_width = max(len(label) for label in values)
    lines = [title] if title else []
    for label, value in values.items():
        fraction = min(max(value / top, 0.0), 1.0)
        whole = int(fraction * width)
        remainder = int((fraction * width - whole) * (len(_BLOCKS) - 1))
        bar = "█" * whole
        if whole < width and remainder > 0:
            bar += _BLOCKS[remainder]
        lines.append(f"{label.rjust(label_width)} |{bar.ljust(width)}| "
                     f"{format(value, value_format)}")
    return "\n".join(lines)
