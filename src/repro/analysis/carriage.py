"""Carriage-value analysis (Section 4.2's rate-leniency argument).

The FCC deems a CAF rate compliant when it is within two standard
deviations of the urban average — which for 10/1 Mbps service implies a
*carriage value* (advertised Mbps per dollar per month) of only ~0.1.
Previous work [40] measured median carriage values of 15 in competitive
urban markets and 10 in non-competitive ones. This experiment computes
the carriage values CAF households actually receive and sets them
against those yardsticks.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.isp.plans import carriage_value
from repro.stats.ecdf import ECDF
from repro.tabular import Table

__all__ = ["run"]

# Yardsticks the paper cites (Section 4.2, drawing on [40]).
FCC_IMPLIED_CARRIAGE_10MBPS = 10.0 / 89.0
URBAN_COMPETITIVE_MEDIAN = 15.0
URBAN_NONCOMPETITIVE_MEDIAN = 10.0


def run(context: ExperimentContext) -> ExperimentResult:
    """Carriage values of served CAF addresses, per ISP and overall."""
    audit = context.report.audit
    table = audit.table
    served = table.mask(
        table["served"].astype(bool)
        & (table["advertised_download_mbps"] > 0)
        & ~np.isnan(table["best_price_usd"])
    )
    if len(served) == 0:
        raise ValueError("no served, priced addresses to analyze")
    values = np.array([
        carriage_value(speed, price)
        for speed, price in zip(served["advertised_download_mbps"],
                                served["best_price_usd"])
    ])
    overall = ECDF(values)

    rows = []
    for isp in audit.isps():
        sub = served.where_equal(isp_id=isp)
        if len(sub) == 0:
            continue
        isp_values = [
            carriage_value(speed, price)
            for speed, price in zip(sub["advertised_download_mbps"],
                                    sub["best_price_usd"])
        ]
        cdf = ECDF(isp_values)
        rows.append({
            "isp": isp,
            "n_served": len(sub),
            "median_carriage": cdf.median(),
            "p80_carriage": cdf.quantile(0.8),
            "share_below_urban_noncompetitive": cdf.fraction_below(
                URBAN_NONCOMPETITIVE_MEDIAN),
        })

    return ExperimentResult(
        experiment_id="carriage",
        title="Carriage values at CAF addresses vs urban yardsticks",
        scalars={
            "fcc_implied_carriage_10mbps": FCC_IMPLIED_CARRIAGE_10MBPS,
            "urban_competitive_median": URBAN_COMPETITIVE_MEDIAN,
            "urban_noncompetitive_median": URBAN_NONCOMPETITIVE_MEDIAN,
            "caf_median_carriage": overall.median(),
            "caf_p80_carriage": overall.quantile(0.8),
            "share_below_fcc_floor": overall.fraction_below(
                FCC_IMPLIED_CARRIAGE_10MBPS),
            "share_below_urban_noncompetitive": overall.fraction_below(
                URBAN_NONCOMPETITIVE_MEDIAN),
        },
        tables={"carriage_by_isp": Table.from_rows(rows)},
        series={"carriage_cdf": overall.series()},
        notes=[
            "the FCC's rate test only demands ~0.1 Mbps/$ at 10/1 — most "
            "CAF households sit far below urban value-for-money even "
            "when technically rate-compliant",
        ],
    )
