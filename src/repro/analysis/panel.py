"""Panel drift analytics (the longitudinal successor to `staleness`).

Where the staleness experiment measured a single before/after pair,
this experiment runs a full :class:`~repro.longitudinal.campaign
.PanelCampaign` — N annual waves of spatially correlated churn, each
collected incrementally — and reports the *trajectories*:

* serviceability and compliance per wave, with drift against the
  snapshot;
* per-ISP churn attribution: which ISPs' footprints actually changed
  (re-queried cells), and how much of each wave was replayed;
* a staleness half-life: how long until half the snapshot's cells no
  longer describe the world.
"""

from __future__ import annotations

import math

from repro.analysis.context import ExperimentContext
from repro.analysis.incremental import WaveRowCache, row_cache_for, wave_analysis
from repro.analysis.result import ExperimentResult
from repro.longitudinal import DEFAULT_PANEL_CHURN, PanelCampaign, WaveOutcome
from repro.synth.churn import ChurnModel
from repro.tabular import Table

__all__ = ["run", "wave_rates"]


def wave_rates(outcome: WaveOutcome,
               cache: WaveRowCache | None = None) -> tuple[float, float]:
    """One wave's (serviceability, compliance) rates.

    The same audit the snapshot ran, applied to the wave's merged
    collection — shared by this experiment, ``staleness``, and the
    ``panel`` CLI. Folded from per-cell rows
    (:mod:`repro.analysis.incremental`): with a ``cache`` carried
    across waves, only cells whose world digest moved are recomputed,
    byte-equal to the full-logbook recompute either way.
    """
    analysis = wave_analysis(outcome, cache=cache)
    return analysis.serviceability, analysis.compliance


def _survival_fraction(base: WaveOutcome, outcome: WaveOutcome) -> float:
    """Share of snapshot Q1/Q2 cells still byte-identical at a wave."""
    if not base.digests.q12:
        return 1.0
    unchanged = sum(
        1 for cell, digest in base.digests.q12.items()
        if outcome.digests.q12.get(cell) == digest)
    return unchanged / len(base.digests.q12)


def _half_life_years(horizon: int, survival: float) -> float:
    """Exponential-decay half-life implied by one survival point."""
    if survival >= 1.0:
        return math.inf
    if survival <= 0.0:
        return 0.0
    return horizon * math.log(0.5) / math.log(survival)


def run(context: ExperimentContext,
        waves: int = 3,
        model: ChurnModel | None = None) -> ExperimentResult:
    """Run an annual ``waves``-wave panel and report the trajectories."""
    if waves < 1:
        raise ValueError("need at least one wave")
    model = model or DEFAULT_PANEL_CHURN
    campaign = PanelCampaign(context.world, model=model,
                             horizons=tuple(range(1, waves + 1)))
    # One row cache across the panel: each follow-up wave's analysis
    # recomputes only the cells whose digest moved.
    rows = row_cache_for(campaign)
    outcomes = campaign.run()
    base = outcomes[0]
    base_serviceability, base_compliance = wave_rates(base, cache=rows)

    trajectory = []
    survival = 1.0
    for outcome in outcomes:
        if outcome.wave == 0:
            serviceability, compliance = (base_serviceability,
                                          base_compliance)
        else:
            serviceability, compliance = wave_rates(outcome, cache=rows)
            survival = _survival_fraction(base, outcome)
        trajectory.append({
            "wave": outcome.wave,
            "years_after_snapshot": outcome.horizon_years,
            "serviceability": serviceability,
            "compliance": compliance,
            "serviceability_drift_pp":
                (serviceability - base_serviceability) * 100.0,
            "compliance_drift_pp": (compliance - base_compliance) * 100.0,
            "requeried_cells": outcome.fresh_q12 + outcome.fresh_q3,
            "replayed_cells": outcome.replayed_q12 + outcome.replayed_q3,
            "reuse_fraction": outcome.reuse_fraction,
            "snapshot_cell_survival": survival,
        })

    # Per-ISP churn attribution: whose plant actually moved, and how
    # much of the panel's re-query budget each ISP consumed.
    changed_by_isp: dict[str, int] = {}
    total_by_isp: dict[str, int] = {}
    for outcome in outcomes[1:]:
        for cell in outcome.digests.q12:
            total_by_isp[cell.isp_id] = total_by_isp.get(cell.isp_id, 0) + 1
        for cell in outcome.delta.changed_q12:
            changed_by_isp[cell.isp_id] = (
                changed_by_isp.get(cell.isp_id, 0) + 1)
    attribution = [
        {
            "isp": isp,
            "requeried_cells": changed_by_isp.get(isp, 0),
            "cell_waves": total,
            "churn_rate": changed_by_isp.get(isp, 0) / total if total else 0.0,
        }
        for isp, total in sorted(total_by_isp.items())
    ]

    last = trajectory[-1]
    follow_ups = trajectory[1:]
    mean_reuse = (sum(r["reuse_fraction"] for r in follow_ups)
                  / len(follow_ups)) if follow_ups else 0.0
    half_life = _half_life_years(last["years_after_snapshot"],
                                 last["snapshot_cell_survival"])
    return ExperimentResult(
        experiment_id="panel",
        title=f"{waves}-wave longitudinal panel under "
              f"{model.cell_rate:.0%}/yr cell churn",
        scalars={
            "serviceability_drift_pp_final":
                last["serviceability_drift_pp"],
            "compliance_drift_pp_final": last["compliance_drift_pp"],
            "mean_wave_reuse_fraction": mean_reuse,
            "analysis_row_reuse_fraction":
                rows.hits / max(1, rows.hits + rows.misses),
            "snapshot_cell_survival_final": last["snapshot_cell_survival"],
            "staleness_half_life_years": half_life,
        },
        tables={
            "trajectory": Table.from_rows(trajectory),
            "churn_attribution": Table.from_rows(attribution),
        },
        notes=[
            "each wave's logbook is byte-identical to a from-scratch "
            "re-collection of the evolved world, but only cells whose "
            "world digest moved were re-queried (O(churn) per wave)",
            "wave analyses fold digest-keyed per-cell rows: unchanged "
            "cells reuse their cached audit row, byte-equal to a full "
            "recompute from the merged logbook",
            "the half-life extrapolates the final wave's snapshot-cell "
            "survival as exponential decay — the horizon past which a "
            "one-shot audit describes less than half the world",
        ],
    )
