"""Panel drift analytics (the longitudinal successor to `staleness`).

Where the staleness experiment measured a single before/after pair,
this experiment runs a full :class:`~repro.longitudinal.campaign
.PanelCampaign` — N annual waves of spatially correlated churn, each
collected incrementally — and reports the *trajectories*:

* serviceability and compliance per wave, with drift against the
  snapshot;
* per-ISP churn attribution: which ISPs' footprints actually changed
  (re-queried cells), and how much of each wave was replayed;
* a staleness half-life: how long until half the snapshot's cells no
  longer describe the world.
"""

from __future__ import annotations

import math

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.core.audit import AuditDataset, ComplianceStandard
from repro.fcc.urban_rate_survey import generate_urban_rate_survey
from repro.longitudinal import DEFAULT_PANEL_CHURN, PanelCampaign, WaveOutcome
from repro.synth.churn import ChurnModel
from repro.tabular import Table

__all__ = ["run", "wave_rates"]


def wave_rates(outcome: WaveOutcome) -> tuple[float, float]:
    """One wave's (serviceability, compliance) rates.

    The same audit the snapshot ran, applied to the wave's merged
    collection — shared by this experiment and the ``panel`` CLI.
    """
    survey = generate_urban_rate_survey(
        seed=outcome.world.config.seed)
    audit = AuditDataset(
        outcome.collection.log, outcome.collection.cbg_totals,
        world=outcome.world, standard=ComplianceStandard(survey=survey))
    return audit.serviceability_rate(), audit.compliance_rate()


def _survival_fraction(base: WaveOutcome, outcome: WaveOutcome) -> float:
    """Share of snapshot Q1/Q2 cells still byte-identical at a wave."""
    if not base.digests.q12:
        return 1.0
    unchanged = sum(
        1 for cell, digest in base.digests.q12.items()
        if outcome.digests.q12.get(cell) == digest)
    return unchanged / len(base.digests.q12)


def _half_life_years(horizon: int, survival: float) -> float:
    """Exponential-decay half-life implied by one survival point."""
    if survival >= 1.0:
        return math.inf
    if survival <= 0.0:
        return 0.0
    return horizon * math.log(0.5) / math.log(survival)


def run(context: ExperimentContext,
        waves: int = 3,
        model: ChurnModel | None = None) -> ExperimentResult:
    """Run an annual ``waves``-wave panel and report the trajectories."""
    if waves < 1:
        raise ValueError("need at least one wave")
    model = model or DEFAULT_PANEL_CHURN
    campaign = PanelCampaign(context.world, model=model,
                             horizons=tuple(range(1, waves + 1)))
    outcomes = campaign.run()
    base = outcomes[0]
    base_serviceability, base_compliance = wave_rates(base)

    trajectory = []
    survival = 1.0
    for outcome in outcomes:
        if outcome.wave == 0:
            serviceability, compliance = (base_serviceability,
                                          base_compliance)
        else:
            serviceability, compliance = wave_rates(outcome)
            survival = _survival_fraction(base, outcome)
        trajectory.append({
            "wave": outcome.wave,
            "years_after_snapshot": outcome.horizon_years,
            "serviceability": serviceability,
            "compliance": compliance,
            "serviceability_drift_pp":
                (serviceability - base_serviceability) * 100.0,
            "compliance_drift_pp": (compliance - base_compliance) * 100.0,
            "requeried_cells": outcome.fresh_q12 + outcome.fresh_q3,
            "replayed_cells": outcome.replayed_q12 + outcome.replayed_q3,
            "reuse_fraction": outcome.reuse_fraction,
            "snapshot_cell_survival": survival,
        })

    # Per-ISP churn attribution: whose plant actually moved, and how
    # much of the panel's re-query budget each ISP consumed.
    changed_by_isp: dict[str, int] = {}
    total_by_isp: dict[str, int] = {}
    for outcome in outcomes[1:]:
        for cell in outcome.digests.q12:
            total_by_isp[cell.isp_id] = total_by_isp.get(cell.isp_id, 0) + 1
        for cell in outcome.delta.changed_q12:
            changed_by_isp[cell.isp_id] = (
                changed_by_isp.get(cell.isp_id, 0) + 1)
    attribution = [
        {
            "isp": isp,
            "requeried_cells": changed_by_isp.get(isp, 0),
            "cell_waves": total,
            "churn_rate": changed_by_isp.get(isp, 0) / total if total else 0.0,
        }
        for isp, total in sorted(total_by_isp.items())
    ]

    last = trajectory[-1]
    follow_ups = trajectory[1:]
    mean_reuse = (sum(r["reuse_fraction"] for r in follow_ups)
                  / len(follow_ups)) if follow_ups else 0.0
    half_life = _half_life_years(last["years_after_snapshot"],
                                 last["snapshot_cell_survival"])
    return ExperimentResult(
        experiment_id="panel",
        title=f"{waves}-wave longitudinal panel under "
              f"{model.cell_rate:.0%}/yr cell churn",
        scalars={
            "serviceability_drift_pp_final":
                last["serviceability_drift_pp"],
            "compliance_drift_pp_final": last["compliance_drift_pp"],
            "mean_wave_reuse_fraction": mean_reuse,
            "snapshot_cell_survival_final": last["snapshot_cell_survival"],
            "staleness_half_life_years": half_life,
        },
        tables={
            "trajectory": Table.from_rows(trajectory),
            "churn_attribution": Table.from_rows(attribution),
        },
        notes=[
            "each wave's logbook is byte-identical to a from-scratch "
            "re-collection of the evolved world, but only cells whose "
            "world digest moved were re-queried (O(churn) per wave)",
            "the half-life extrapolates the final wave's snapshot-cell "
            "survival as exponential decay — the horizon past which a "
            "one-shot audit describes less than half the world",
        ],
    )
