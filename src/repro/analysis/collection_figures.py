"""Figures 7, 8, 12 and Table 2 — data-collection behaviour."""

from __future__ import annotations

import numpy as np

from repro.analysis.context import ExperimentContext
from repro.analysis.result import ExperimentResult
from repro.bqt.errors import ErrorCategory
from repro.stats.ecdf import ECDF
from repro.stats.summary import box_stats
from repro.tabular import Table

__all__ = ["run_figure7", "run_figure8", "run_figure12", "run_table2"]

STUDY_ISPS = ("att", "centurylink", "frontier", "consolidated")


def _fraction_cdfs(context: ExperimentContext, kind: str) -> ExperimentResult:
    collection = context.report.collection
    series = {}
    scalars = {}
    for isp in STUDY_ISPS:
        fractions = []
        for (isp_id, cbg) in collection.plans:
            if isp_id != isp:
                continue
            if kind == "queried":
                fractions.append(100.0 * collection.queried_fraction(isp, cbg))
            else:
                fractions.append(100.0 * collection.collected_fraction(isp, cbg))
        if fractions:
            cdf = ECDF(fractions)
            series[f"{kind}_pct_{isp}"] = cdf.series()
            scalars[f"{kind}_pct_median_{isp}"] = cdf.median()
            scalars[f"cbgs_below_10pct_{isp}"] = cdf.fraction_below(10.0)
    figure = "figure7" if kind == "queried" else "figure8"
    return ExperimentResult(
        experiment_id=figure,
        title=f"CDF of the percentage of addresses {kind} per CBG",
        scalars=scalars,
        series=series,
    )


def run_figure7(context: ExperimentContext) -> ExperimentResult:
    """Percentage of addresses queried per CBG per ISP."""
    return _fraction_cdfs(context, "queried")


def run_figure8(context: ExperimentContext) -> ExperimentResult:
    """Percentage of addresses with conclusive results per CBG."""
    return _fraction_cdfs(context, "collected")


def run_figure12(context: ExperimentContext) -> ExperimentResult:
    """Per-address query-time distributions per ISP."""
    logs = [context.report.collection.log, context.report.q3_collection.log]
    rows = []
    scalars = {}
    for isp in (*STUDY_ISPS, "xfinity", "spectrum"):
        times: list[float] = []
        for log in logs:
            times.extend(log.query_times(isp))
        if not times:
            continue
        box = box_stats(times)
        row = {"isp": isp}
        row.update(box.row())
        rows.append(row)
        scalars[f"median_query_seconds_{isp}"] = box.median
    total_seconds = sum(log.total_virtual_seconds() for log in logs)
    scalars["campaign_virtual_days_sequential"] = total_seconds / 86_400.0
    # Wall-clock under the real BQT deployment model: per-ISP Docker
    # fleets at the politeness cap (repro.bqt.scheduler).
    from repro.bqt.scheduler import schedule_campaign

    schedule = schedule_campaign(context.report.collection.log)
    scalars["campaign_wall_clock_days_8_workers"] = schedule.wall_clock_days
    scalars["fleet_utilization"] = schedule.utilization
    return ExperimentResult(
        experiment_id="figure12",
        title="Per-address query times for each ISP",
        scalars=scalars,
        tables={"query_time_boxstats": Table.from_rows(rows)},
        notes=[
            "paper: AT&T is the slowest/widest because of bot detection; "
            "a full 6M-address campaign would take over 6 months",
        ],
    )


def run_table2(context: ExperimentContext) -> ExperimentResult:
    """Errors in traceback per ISP (unknown-address taxonomy)."""
    log = context.report.collection.log
    rows = []
    scalars = {}
    for isp in STUDY_ISPS:
        counts = log.unknown_counts_by_category(isp)
        total = sum(counts.values())
        rows.append({
            "isp": isp,
            "total_unknown": total,
            "select_dropdown": counts.get(ErrorCategory.SELECT_DROPDOWN, 0),
            "analyzing_result": counts.get(ErrorCategory.ANALYZING_RESULT, 0),
            "empty_traceback": counts.get(ErrorCategory.EMPTY_TRACEBACK, 0),
            "clicking_button": counts.get(ErrorCategory.CLICKING_BUTTON, 0),
            "other": counts.get(ErrorCategory.OTHER, 0),
        })
        attempts = len(log.for_isp(isp))
        if attempts:
            scalars[f"unknown_fraction_{isp}"] = total / attempts
    conclusive = len(log.conclusive())
    scalars["overall_unknown_fraction"] = 1.0 - conclusive / max(len(log), 1)
    return ExperimentResult(
        experiment_id="table2",
        title="Errors in traceback (unknown addresses by category)",
        scalars=scalars,
        tables={"table2": Table.from_rows(rows)},
        notes=[
            "paper Table 2 dominant categories — AT&T/Frontier/"
            "Consolidated: select-dropdown; CenturyLink: empty traceback "
            "(human verification); AT&T uniquely shows analyzing-result "
            "(call-to-order)",
        ],
    )
