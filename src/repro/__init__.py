"""repro — reproduction of "The Efficacy of the Connect America Fund in
Addressing US Internet Access Inequities" (ACM SIGCOMM 2024).

The package rebuilds the paper's entire measurement stack in pure
Python: the USAC/HUBB certification substrate, the FCC regulatory
layer, synthetic census geography, calibrated ISP ground-truth models,
a simulated broadband-plan querying tool (BQT) with the paper's
documented per-ISP failure modes, and the audit analyses answering the
paper's three policy questions.

Quickstart::

    from repro import run_full_audit, ScenarioConfig

    report = run_full_audit(scenario=ScenarioConfig.tiny())
    print("\\n".join(report.summary_lines()))

Every table and figure in the paper has a generator::

    from repro.analysis import ExperimentContext, run_experiment

    context = ExperimentContext.at_scale("tiny")
    print(run_experiment("figure4", context).render())
"""

from repro.core.pipeline import AuditReport, run_full_audit
from repro.runtime.executor import RuntimeConfig
from repro.synth.scenario import ScenarioConfig
from repro.synth.world import World, build_world

__version__ = "1.10.0"

__all__ = [
    "AuditReport",
    "RuntimeConfig",
    "ScenarioConfig",
    "World",
    "build_world",
    "run_full_audit",
    "__version__",
]
