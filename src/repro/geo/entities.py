"""Census geography entities.

Plain dataclasses for the hierarchy the pipeline traverses. Each level
carries its GEOID plus the attributes the analyses consume: centroid
coordinates (geospatial figures), population and density (Figure 3),
and the rural/urban flag (CAF targets rural blocks; 96.7% of CAF census
blocks are rural per Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.geometry import Point

__all__ = ["CensusBlock", "BlockGroup", "Tract", "County", "StateGeography"]


@dataclass(frozen=True)
class CensusBlock:
    """A census block — the smallest census unit, keys USAC deployments."""

    geoid: str
    centroid: Point
    is_rural: bool

    def __post_init__(self) -> None:
        if len(self.geoid) != 15:
            raise ValueError(f"block GEOID must be 15 digits, got {self.geoid!r}")

    @property
    def block_group_geoid(self) -> str:
        """GEOID of the containing block group."""
        return self.geoid[:12]

    @property
    def state_fips(self) -> str:
        """FIPS of the containing state."""
        return self.geoid[:2]


@dataclass(frozen=True)
class BlockGroup:
    """A census block group — the paper's sampling/aggregation unit."""

    geoid: str
    centroid: Point
    population: int
    population_density: float
    is_rural: bool
    distance_to_city_miles: float
    blocks: tuple[CensusBlock, ...] = field(repr=False)
    # ACS-style demographics, synthesized by the generator. The paper's
    # §2.4 notes existing oversight cannot say "whether non-compliance
    # disproportionately affects certain populations"; carrying income
    # here lets the equity analysis answer that on synthetic worlds.
    median_income_usd: float = 60_000.0

    def __post_init__(self) -> None:
        if len(self.geoid) != 12:
            raise ValueError(f"block-group GEOID must be 12 digits, got {self.geoid!r}")
        if self.population < 0:
            raise ValueError("population must be non-negative")
        if self.population_density < 0:
            raise ValueError("population density must be non-negative")
        if self.median_income_usd <= 0:
            raise ValueError("median income must be positive")
        for block in self.blocks:
            if block.block_group_geoid != self.geoid:
                raise ValueError(
                    f"block {block.geoid} does not belong to block group {self.geoid}"
                )

    @property
    def tract_geoid(self) -> str:
        """GEOID of the containing tract."""
        return self.geoid[:11]

    @property
    def state_fips(self) -> str:
        """FIPS of the containing state."""
        return self.geoid[:2]

    @property
    def num_blocks(self) -> int:
        """Number of census blocks in the group."""
        return len(self.blocks)


@dataclass(frozen=True)
class Tract:
    """A census tract (container of block groups)."""

    geoid: str
    block_groups: tuple[BlockGroup, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.geoid) != 11:
            raise ValueError(f"tract GEOID must be 11 digits, got {self.geoid!r}")

    @property
    def population(self) -> int:
        """Total tract population."""
        return sum(bg.population for bg in self.block_groups)


@dataclass(frozen=True)
class County:
    """A county (container of tracts)."""

    geoid: str
    name: str
    seat: Point
    tracts: tuple[Tract, ...] = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.geoid) != 5:
            raise ValueError(f"county GEOID must be 5 digits, got {self.geoid!r}")

    @property
    def block_groups(self) -> tuple[BlockGroup, ...]:
        """All block groups in the county."""
        return tuple(bg for tract in self.tracts for bg in tract.block_groups)


@dataclass(frozen=True)
class StateGeography:
    """A full synthetic state: counties, cities, and flattened indexes."""

    state_fips: str
    abbreviation: str
    counties: tuple[County, ...] = field(repr=False)
    city_centers: tuple[Point, ...] = field(repr=False)

    @property
    def block_groups(self) -> tuple[BlockGroup, ...]:
        """All block groups in the state."""
        return tuple(bg for county in self.counties for bg in county.block_groups)

    @property
    def blocks(self) -> tuple[CensusBlock, ...]:
        """All census blocks in the state."""
        return tuple(block for bg in self.block_groups for block in bg.blocks)

    def block_group_index(self) -> dict[str, BlockGroup]:
        """Map block-group GEOID → entity."""
        return {bg.geoid: bg for bg in self.block_groups}

    def block_index(self) -> dict[str, CensusBlock]:
        """Map block GEOID → entity."""
        return {block.geoid: block for block in self.blocks}
