"""FIPS state registry.

Federal Information Processing Standard (FIPS) codes identify states
(2 digits) and nest into the GEOIDs used by every census product. This
module carries the full 50-state + DC registry with the attributes the
reproduction needs: postal abbreviation, name, a coarse geographic
region (the paper's state selection "spans major US geographic
regions"), an approximate relative population scale (California is the
most populous study state, Vermont among the least), and a nominal
bounding box used by the synthetic geography generator to place
plausible coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.geometry import BoundingBox

__all__ = [
    "StateInfo",
    "ALL_STATES",
    "STUDY_STATES",
    "Q3_STATES",
    "state_by_fips",
    "state_by_abbreviation",
]


@dataclass(frozen=True)
class StateInfo:
    """Static facts about one US state."""

    fips: str
    abbreviation: str
    name: str
    region: str
    population_millions: float
    bounds: BoundingBox

    def __post_init__(self) -> None:
        if len(self.fips) != 2 or not self.fips.isdigit():
            raise ValueError(f"state FIPS must be 2 digits, got {self.fips!r}")
        if len(self.abbreviation) != 2:
            raise ValueError(f"bad postal abbreviation {self.abbreviation!r}")


def _state(
    fips: str,
    abbreviation: str,
    name: str,
    region: str,
    population_millions: float,
    west: float,
    south: float,
    east: float,
    north: float,
) -> StateInfo:
    return StateInfo(
        fips=fips,
        abbreviation=abbreviation,
        name=name,
        region=region,
        population_millions=population_millions,
        bounds=BoundingBox(west=west, south=south, east=east, north=north),
    )


# 50 states + DC. Population is the 2020 census in millions (rounded);
# bounding boxes are coarse (they only anchor synthetic coordinates).
ALL_STATES: tuple[StateInfo, ...] = (
    _state("01", "AL", "Alabama", "South", 5.0, -88.5, 30.2, -84.9, 35.0),
    _state("02", "AK", "Alaska", "West", 0.7, -170.0, 54.0, -130.0, 71.0),
    _state("04", "AZ", "Arizona", "West", 7.2, -114.8, 31.3, -109.0, 37.0),
    _state("05", "AR", "Arkansas", "South", 3.0, -94.6, 33.0, -89.6, 36.5),
    _state("06", "CA", "California", "West", 39.5, -124.4, 32.5, -114.1, 42.0),
    _state("08", "CO", "Colorado", "West", 5.8, -109.1, 37.0, -102.0, 41.0),
    _state("09", "CT", "Connecticut", "Northeast", 3.6, -73.7, 41.0, -71.8, 42.1),
    _state("10", "DE", "Delaware", "South", 1.0, -75.8, 38.5, -75.0, 39.8),
    _state("11", "DC", "District of Columbia", "South", 0.7, -77.1, 38.8, -76.9, 39.0),
    _state("12", "FL", "Florida", "South", 21.5, -87.6, 24.5, -80.0, 31.0),
    _state("13", "GA", "Georgia", "South", 10.7, -85.6, 30.4, -80.8, 35.0),
    _state("15", "HI", "Hawaii", "West", 1.5, -160.3, 18.9, -154.8, 22.2),
    _state("16", "ID", "Idaho", "West", 1.8, -117.2, 42.0, -111.0, 49.0),
    _state("17", "IL", "Illinois", "Midwest", 12.8, -91.5, 37.0, -87.5, 42.5),
    _state("18", "IN", "Indiana", "Midwest", 6.8, -88.1, 37.8, -84.8, 41.8),
    _state("19", "IA", "Iowa", "Midwest", 3.2, -96.6, 40.4, -90.1, 43.5),
    _state("20", "KS", "Kansas", "Midwest", 2.9, -102.1, 37.0, -94.6, 40.0),
    _state("21", "KY", "Kentucky", "South", 4.5, -89.6, 36.5, -81.9, 39.1),
    _state("22", "LA", "Louisiana", "South", 4.7, -94.0, 29.0, -89.0, 33.0),
    _state("23", "ME", "Maine", "Northeast", 1.4, -71.1, 43.1, -66.9, 47.5),
    _state("24", "MD", "Maryland", "South", 6.2, -79.5, 37.9, -75.0, 39.7),
    _state("25", "MA", "Massachusetts", "Northeast", 7.0, -73.5, 41.2, -69.9, 42.9),
    _state("26", "MI", "Michigan", "Midwest", 10.1, -90.4, 41.7, -82.4, 48.2),
    _state("27", "MN", "Minnesota", "Midwest", 5.7, -97.2, 43.5, -89.5, 49.4),
    _state("28", "MS", "Mississippi", "South", 3.0, -91.7, 30.2, -88.1, 35.0),
    _state("29", "MO", "Missouri", "Midwest", 6.2, -95.8, 36.0, -89.1, 40.6),
    _state("30", "MT", "Montana", "West", 1.1, -116.1, 44.4, -104.0, 49.0),
    _state("31", "NE", "Nebraska", "Midwest", 2.0, -104.1, 40.0, -95.3, 43.0),
    _state("32", "NV", "Nevada", "West", 3.1, -120.0, 35.0, -114.0, 42.0),
    _state("33", "NH", "New Hampshire", "Northeast", 1.4, -72.6, 42.7, -70.6, 45.3),
    _state("34", "NJ", "New Jersey", "Northeast", 9.3, -75.6, 38.9, -73.9, 41.4),
    _state("35", "NM", "New Mexico", "West", 2.1, -109.1, 31.3, -103.0, 37.0),
    _state("36", "NY", "New York", "Northeast", 20.2, -79.8, 40.5, -71.9, 45.0),
    _state("37", "NC", "North Carolina", "South", 10.4, -84.3, 33.8, -75.5, 36.6),
    _state("38", "ND", "North Dakota", "Midwest", 0.8, -104.1, 45.9, -96.6, 49.0),
    _state("39", "OH", "Ohio", "Midwest", 11.8, -84.8, 38.4, -80.5, 42.0),
    _state("40", "OK", "Oklahoma", "South", 4.0, -103.0, 33.6, -94.4, 37.0),
    _state("41", "OR", "Oregon", "West", 4.2, -124.6, 42.0, -116.5, 46.3),
    _state("42", "PA", "Pennsylvania", "Northeast", 13.0, -80.5, 39.7, -74.7, 42.3),
    _state("44", "RI", "Rhode Island", "Northeast", 1.1, -71.9, 41.1, -71.1, 42.0),
    _state("45", "SC", "South Carolina", "South", 5.1, -83.4, 32.0, -78.5, 35.2),
    _state("46", "SD", "South Dakota", "Midwest", 0.9, -104.1, 42.5, -96.4, 45.9),
    _state("47", "TN", "Tennessee", "South", 6.9, -90.3, 35.0, -81.6, 36.7),
    _state("48", "TX", "Texas", "South", 29.1, -106.6, 25.8, -93.5, 36.5),
    _state("49", "UT", "Utah", "West", 3.3, -114.1, 37.0, -109.0, 42.0),
    _state("50", "VT", "Vermont", "Northeast", 0.6, -73.4, 42.7, -71.5, 45.0),
    _state("51", "VA", "Virginia", "South", 8.6, -83.7, 36.5, -75.2, 39.5),
    _state("53", "WA", "Washington", "West", 7.7, -124.8, 45.5, -116.9, 49.0),
    _state("54", "WV", "West Virginia", "South", 1.8, -82.6, 37.2, -77.7, 40.6),
    _state("55", "WI", "Wisconsin", "Midwest", 5.9, -92.9, 42.5, -86.8, 47.1),
    _state("56", "WY", "Wyoming", "West", 0.6, -111.1, 41.0, -104.1, 45.0),
)

_BY_FIPS = {state.fips: state for state in ALL_STATES}
_BY_ABBREVIATION = {state.abbreviation: state for state in ALL_STATES}

# The 15 states the paper samples for Q1/Q2 (Section 3.1, Table 3).
STUDY_STATES: tuple[str, ...] = (
    "AL", "CA", "FL", "GA", "IA", "IL", "MS", "NC",
    "NE", "NH", "NJ", "OH", "UT", "VT", "WI",
)

# The reduced 7-state subset used for Q3 (Section 4.3, Table 4).
Q3_STATES: tuple[str, ...] = ("CA", "GA", "IL", "NC", "NH", "OH", "UT")


def state_by_fips(fips: str) -> StateInfo:
    """Look up a state by its 2-digit FIPS code."""
    try:
        return _BY_FIPS[fips]
    except KeyError:
        raise KeyError(f"unknown state FIPS {fips!r}") from None


def state_by_abbreviation(abbreviation: str) -> StateInfo:
    """Look up a state by its postal abbreviation (case-insensitive)."""
    try:
        return _BY_ABBREVIATION[abbreviation.upper()]
    except KeyError:
        raise KeyError(f"unknown state abbreviation {abbreviation!r}") from None
