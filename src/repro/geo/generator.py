"""Synthetic state geography generator.

Builds a :class:`~repro.geo.entities.StateGeography` from a state's
static facts (:mod:`repro.geo.fips`) and a :class:`GeographyConfig`.
The construction is deterministic given a seed:

1. Place ``num_cities`` urban kernels inside the state bounding box
   (biased away from the edges), with Zipf-distributed peak densities —
   one dominant metro, smaller secondary cities.
2. Scatter counties; each county seeds tracts near its seat; each tract
   seeds block groups near the tract center; blocks jitter around the
   block-group centroid. The spatial nesting keeps neighbors in the
   same block group genuinely close, which Q3's within-block comparison
   relies on.
3. Sample each block group's density from the surface, classify
   rural/urban, and size its population uniformly in the 600–3000 range
   the census targets (Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.density import DensitySurface, URBAN_DENSITY_THRESHOLD
from repro.geo.entities import BlockGroup, CensusBlock, County, StateGeography, Tract
from repro.geo.fips import StateInfo
from repro.geo.geoid import block_geoid, block_group_geoid, county_geoid, tract_geoid
from repro.geo.geometry import Point
from repro.stats.distributions import bounded_zipf_shares, stable_rng

__all__ = ["GeographyConfig", "generate_state_geography"]


@dataclass(frozen=True)
class GeographyConfig:
    """Knobs controlling the size and texture of a synthetic state."""

    num_counties: int = 8
    tracts_per_county: int = 4
    block_groups_per_tract: int = 3
    blocks_per_block_group: int = 8
    num_cities: int = 3
    peak_density: float = 12_000.0
    decay_scale_miles: float = 18.0
    rural_floor_density: float = 3.0
    min_block_group_population: int = 600
    max_block_group_population: int = 3000

    def __post_init__(self) -> None:
        for name in ("num_counties", "tracts_per_county",
                     "block_groups_per_tract", "blocks_per_block_group",
                     "num_cities"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.min_block_group_population > self.max_block_group_population:
            raise ValueError("population bounds inverted")

    def scaled(self, factor: float) -> "GeographyConfig":
        """Return a config with county count scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return GeographyConfig(
            num_counties=max(1, round(self.num_counties * factor)),
            tracts_per_county=self.tracts_per_county,
            block_groups_per_tract=self.block_groups_per_tract,
            blocks_per_block_group=self.blocks_per_block_group,
            num_cities=self.num_cities,
            peak_density=self.peak_density,
            decay_scale_miles=self.decay_scale_miles,
            rural_floor_density=self.rural_floor_density,
            min_block_group_population=self.min_block_group_population,
            max_block_group_population=self.max_block_group_population,
        )


def _jittered_point(
    rng: np.random.Generator, state: StateInfo, anchor: Point, spread_degrees: float
) -> Point:
    """Sample a point near ``anchor`` clipped into the state box."""
    bounds = state.bounds
    lon = float(np.clip(anchor.longitude + rng.normal(0, spread_degrees),
                        bounds.west, bounds.east))
    lat = float(np.clip(anchor.latitude + rng.normal(0, spread_degrees),
                        bounds.south, bounds.north))
    return Point(lon, lat)


def _place_cities(
    rng: np.random.Generator, state: StateInfo, config: GeographyConfig
) -> tuple[tuple[Point, ...], tuple[float, ...]]:
    centers = []
    for _ in range(config.num_cities):
        fx, fy = rng.uniform(0.15, 0.85, size=2)
        centers.append(state.bounds.interpolate(float(fx), float(fy)))
    shares = bounded_zipf_shares(config.num_cities, exponent=1.0)
    peaks = tuple(float(config.peak_density * share / shares[0]) for share in shares)
    return tuple(centers), peaks


def generate_state_geography(
    state: StateInfo, config: GeographyConfig | None = None, seed: int = 0
) -> StateGeography:
    """Generate a deterministic synthetic geography for ``state``."""
    config = config or GeographyConfig()
    rng = stable_rng(seed, "geo", state.fips)
    city_centers, city_peaks = _place_cities(rng, state, config)
    surface = DensitySurface(
        city_centers=city_centers,
        city_peaks=city_peaks,
        decay_scale_miles=config.decay_scale_miles,
        rural_floor=config.rural_floor_density,
    )

    county_spread = min(state.bounds.width_degrees, state.bounds.height_degrees) / 10
    counties = []
    for county_number in range(1, config.num_counties + 1):
        fx, fy = rng.uniform(0.05, 0.95, size=2)
        seat = state.bounds.interpolate(float(fx), float(fy))
        cgeoid = county_geoid(state.fips, county_number)
        tracts = []
        for tract_number in range(1, config.tracts_per_county + 1):
            tract_center = _jittered_point(rng, state, seat, county_spread)
            tgeoid = tract_geoid(cgeoid, tract_number * 100)
            block_groups = []
            for bg_digit in range(1, config.block_groups_per_tract + 1):
                centroid = _jittered_point(rng, state, tract_center, county_spread / 4)
                bg_geoid = block_group_geoid(tgeoid, bg_digit)
                density = surface.density_at(centroid)
                is_rural = density < URBAN_DENSITY_THRESHOLD
                blocks = tuple(
                    CensusBlock(
                        geoid=block_geoid(bg_geoid, block_number),
                        centroid=_jittered_point(
                            rng, state, centroid, county_spread / 20
                        ),
                        is_rural=is_rural,
                    )
                    for block_number in range(1, config.blocks_per_block_group + 1)
                )
                # Income loosely tracks density (urban cores richer on
                # average) with wide idiosyncratic spread, so income and
                # density are correlated but distinguishable — the
                # structure the equity analysis needs.
                income = float(np.clip(
                    30_000.0
                    + 9_000.0 * np.log10(max(density, 1.0))
                    + rng.normal(0.0, 12_000.0),
                    18_000.0, 180_000.0,
                ))
                block_groups.append(
                    BlockGroup(
                        geoid=bg_geoid,
                        centroid=centroid,
                        population=int(rng.integers(
                            config.min_block_group_population,
                            config.max_block_group_population + 1,
                        )),
                        population_density=density,
                        is_rural=is_rural,
                        distance_to_city_miles=surface.distance_to_nearest_city(centroid),
                        blocks=blocks,
                        median_income_usd=income,
                    )
                )
            tracts.append(Tract(geoid=tgeoid, block_groups=tuple(block_groups)))
        counties.append(
            County(
                geoid=cgeoid,
                name=f"{state.name} County {county_number}",
                seat=seat,
                tracts=tuple(tracts),
            )
        )
    return StateGeography(
        state_fips=state.fips,
        abbreviation=state.abbreviation,
        counties=tuple(counties),
        city_centers=city_centers,
    )
