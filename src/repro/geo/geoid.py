"""GEOID construction and parsing.

Census GEOIDs are fixed-width digit strings that concatenate the FIPS
hierarchy:

* county: ``SSCCC`` (5 digits)
* tract: ``SSCCCTTTTTT`` (11 digits)
* block group: ``SSCCCTTTTTTB`` (12 digits; B is the block-group digit)
* block: ``SSCCCTTTTTTBBBB`` (15 digits; first block digit *is* the
  block-group digit)

The USAC CAF Map keys deployments by census block; the paper aggregates
by block group. Keeping the encoding in one module guarantees the two
join consistently everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GeoidParts",
    "county_geoid",
    "tract_geoid",
    "block_group_geoid",
    "block_geoid",
    "parse_geoid",
]


def _check_digits(value: str, width: int, label: str) -> str:
    if len(value) != width or not value.isdigit():
        raise ValueError(f"{label} must be {width} digits, got {value!r}")
    return value


def county_geoid(state_fips: str, county: int) -> str:
    """Return the 5-digit county GEOID."""
    _check_digits(state_fips, 2, "state FIPS")
    if not 0 <= county <= 999:
        raise ValueError(f"county code out of range: {county}")
    return f"{state_fips}{county:03d}"


def tract_geoid(county_geoid_: str, tract: int) -> str:
    """Return the 11-digit tract GEOID."""
    _check_digits(county_geoid_, 5, "county GEOID")
    if not 0 <= tract <= 999_999:
        raise ValueError(f"tract code out of range: {tract}")
    return f"{county_geoid_}{tract:06d}"


def block_group_geoid(tract_geoid_: str, block_group: int) -> str:
    """Return the 12-digit block-group GEOID."""
    _check_digits(tract_geoid_, 11, "tract GEOID")
    if not 0 <= block_group <= 9:
        raise ValueError(f"block-group digit out of range: {block_group}")
    return f"{tract_geoid_}{block_group:d}"


def block_geoid(block_group_geoid_: str, block: int) -> str:
    """Return the 15-digit block GEOID.

    ``block`` is the 3-digit suffix within the block group; the census
    convention that a block's 4-digit code starts with its block-group
    digit is preserved by construction.
    """
    _check_digits(block_group_geoid_, 12, "block-group GEOID")
    if not 0 <= block <= 999:
        raise ValueError(f"block suffix out of range: {block}")
    return f"{block_group_geoid_}{block:03d}"


@dataclass(frozen=True)
class GeoidParts:
    """The decomposition of a GEOID into hierarchy levels."""

    level: str
    state_fips: str
    county: str | None = None
    tract: str | None = None
    block_group: str | None = None
    block: str | None = None

    @property
    def county_geoid(self) -> str | None:
        """5-digit county GEOID, when present."""
        if self.county is None:
            return None
        return f"{self.state_fips}{self.county}"

    @property
    def tract_geoid(self) -> str | None:
        """11-digit tract GEOID, when present."""
        if self.tract is None:
            return None
        return f"{self.county_geoid}{self.tract}"

    @property
    def block_group_geoid(self) -> str | None:
        """12-digit block-group GEOID, when present."""
        if self.block_group is None:
            return None
        return f"{self.tract_geoid}{self.block_group}"

    @property
    def block_geoid(self) -> str | None:
        """15-digit block GEOID, when present."""
        if self.block is None:
            return None
        return f"{self.block_group_geoid}{self.block}"


_LEVEL_BY_WIDTH = {2: "state", 5: "county", 11: "tract", 12: "block_group", 15: "block"}


def parse_geoid(geoid: str) -> GeoidParts:
    """Parse a GEOID of any supported width into its parts."""
    if not geoid.isdigit():
        raise ValueError(f"GEOID must be all digits, got {geoid!r}")
    level = _LEVEL_BY_WIDTH.get(len(geoid))
    if level is None:
        raise ValueError(
            f"GEOID width {len(geoid)} not one of {sorted(_LEVEL_BY_WIDTH)}: {geoid!r}"
        )
    return GeoidParts(
        level=level,
        state_fips=geoid[:2],
        county=geoid[2:5] if len(geoid) >= 5 else None,
        tract=geoid[5:11] if len(geoid) >= 11 else None,
        block_group=geoid[11:12] if len(geoid) >= 12 else None,
        block=geoid[12:15] if len(geoid) >= 15 else None,
    )
