"""Plane-and-sphere geometry primitives.

The synthetic geography places census entities at lon/lat coordinates
inside coarse state bounding boxes. Distances use the haversine formula
in miles because the paper's density unit is people per square mile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Point", "BoundingBox", "haversine_miles", "EARTH_RADIUS_MILES"]

EARTH_RADIUS_MILES = 3958.8


@dataclass(frozen=True)
class Point:
    """A geographic point (longitude, latitude in degrees)."""

    longitude: float
    latitude: float

    def __post_init__(self) -> None:
        if not -180.0 <= self.longitude <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude}")
        if not -90.0 <= self.latitude <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude}")

    def distance_miles(self, other: "Point") -> float:
        """Great-circle distance to ``other`` in miles."""
        return haversine_miles(self, other)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned lon/lat box (west < east, south < north)."""

    west: float
    south: float
    east: float
    north: float

    def __post_init__(self) -> None:
        if self.west >= self.east:
            raise ValueError(f"west {self.west} must be < east {self.east}")
        if self.south >= self.north:
            raise ValueError(f"south {self.south} must be < north {self.north}")

    @property
    def center(self) -> Point:
        """The box midpoint."""
        return Point((self.west + self.east) / 2, (self.south + self.north) / 2)

    @property
    def width_degrees(self) -> float:
        """Longitudinal extent in degrees."""
        return self.east - self.west

    @property
    def height_degrees(self) -> float:
        """Latitudinal extent in degrees."""
        return self.north - self.south

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        return (self.west <= point.longitude <= self.east
                and self.south <= point.latitude <= self.north)

    def interpolate(self, fx: float, fy: float) -> Point:
        """Return the point at fractional position ``(fx, fy)`` in [0,1]²."""
        if not (0.0 <= fx <= 1.0 and 0.0 <= fy <= 1.0):
            raise ValueError(f"fractions must be in [0, 1], got ({fx}, {fy})")
        return Point(self.west + fx * self.width_degrees,
                     self.south + fy * self.height_degrees)

    def area_square_miles(self) -> float:
        """Approximate area using a spherical rectangle."""
        lat_mid = math.radians((self.south + self.north) / 2)
        miles_per_degree_lat = 2 * math.pi * EARTH_RADIUS_MILES / 360
        miles_per_degree_lon = miles_per_degree_lat * math.cos(lat_mid)
        return (self.height_degrees * miles_per_degree_lat
                * self.width_degrees * miles_per_degree_lon)


def haversine_miles(a: Point, b: Point) -> float:
    """Great-circle distance between two points in miles."""
    lon1, lat1 = math.radians(a.longitude), math.radians(a.latitude)
    lon2, lat2 = math.radians(b.longitude), math.radians(b.latitude)
    dlon, dlat = lon2 - lon1, lat2 - lat1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_MILES * math.asin(math.sqrt(h))
