"""Synthetic population-density surface.

The paper's Figure 3 correlates AT&T serviceability with population
density (people per square mile, log-scaled axis spanning roughly 0.1
to 10,000), and Figure 10 shows serviceability falling with distance
from major city centers. The density surface here produces exactly that
structure: a handful of urban kernels per state whose density decays
exponentially with distance, on top of a rural floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.geometry import Point, haversine_miles

__all__ = ["DensitySurface", "URBAN_DENSITY_THRESHOLD"]

# The census loosely treats ~500 people/sq-mile as an urbanized-area
# cutoff; we use it to classify synthetic block groups as urban/rural.
URBAN_DENSITY_THRESHOLD = 500.0


@dataclass(frozen=True)
class DensitySurface:
    """Sum-of-kernels density field over a state.

    Each city contributes ``peak * exp(-distance / scale)`` people per
    square mile; a rural floor keeps remote areas positive (the paper's
    Figure 3 shows rural CBGs down to ~0.1 people/sq-mile).
    """

    city_centers: tuple[Point, ...]
    city_peaks: tuple[float, ...]
    decay_scale_miles: float
    rural_floor: float

    def __post_init__(self) -> None:
        if len(self.city_centers) != len(self.city_peaks):
            raise ValueError("city_centers and city_peaks must align")
        if not self.city_centers:
            raise ValueError("need at least one city center")
        if self.decay_scale_miles <= 0:
            raise ValueError("decay scale must be positive")
        if self.rural_floor <= 0:
            raise ValueError("rural floor must be positive")

    def density_at(self, point: Point) -> float:
        """Population density (people / sq mile) at ``point``."""
        total = self.rural_floor
        for center, peak in zip(self.city_centers, self.city_peaks):
            distance = haversine_miles(point, center)
            total += peak * np.exp(-distance / self.decay_scale_miles)
        return float(total)

    def distance_to_nearest_city(self, point: Point) -> float:
        """Miles to the closest urban kernel center."""
        return min(haversine_miles(point, center) for center in self.city_centers)

    def is_rural(self, point: Point) -> bool:
        """Classify ``point`` by the urban density threshold."""
        return self.density_at(point) < URBAN_DENSITY_THRESHOLD
