"""Census geography substrate.

The paper's unit of analysis is US census geography: street addresses
live in census *blocks* (CBs), blocks nest in *block groups* (CBGs,
600–3000 people, the paper's sampling and aggregation unit), block
groups nest in *tracts*, tracts in *counties*, counties in *states*.
This package models that hierarchy, the FIPS/GEOID naming scheme, and a
synthetic geography generator that produces states with urban cores and
rural peripheries so that population density — central to the paper's
Figure 3 analysis — is a first-class attribute of every block group.
"""

from repro.geo.entities import BlockGroup, CensusBlock, County, StateGeography, Tract
from repro.geo.fips import (
    ALL_STATES,
    STUDY_STATES,
    StateInfo,
    state_by_abbreviation,
    state_by_fips,
)
from repro.geo.geoid import (
    block_geoid,
    block_group_geoid,
    county_geoid,
    parse_geoid,
    tract_geoid,
)
from repro.geo.geometry import BoundingBox, Point, haversine_miles
from repro.geo.generator import GeographyConfig, generate_state_geography

__all__ = [
    "ALL_STATES",
    "BlockGroup",
    "BoundingBox",
    "CensusBlock",
    "County",
    "GeographyConfig",
    "Point",
    "STUDY_STATES",
    "StateGeography",
    "StateInfo",
    "Tract",
    "block_geoid",
    "block_group_geoid",
    "county_geoid",
    "generate_state_geography",
    "haversine_miles",
    "parse_geoid",
    "state_by_abbreviation",
    "state_by_fips",
    "tract_geoid",
]
