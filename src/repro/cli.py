"""Command-line interface.

Usage::

    caf-audit run [--scale tiny|small|paper] [--seed N]
                  [--shards N] [--workers N] [--backend B]
                  [--max-inflight N] [--target-seconds S] [--resume]
                  [--checkpoint-dir DIR] [--cache-dir DIR]
                  [--pace none|real|X] [--worker-address ADDR]
    caf-audit panel --waves N [--churn-cell-rate P] [--store DIR]
                    [--scale ...] [runtime flags as for run]
    caf-audit worker --connect ADDRESS [--die-after N] [--wedge-after N]
    caf-audit serve --journal DIR [--name NAME] [--address ADDR]
                    [--store DIR]
    caf-audit submit --connect ADDRESS [--kind campaign|panel]
                     [--scale ...] [--shards N] [--waves N] [--pace ...]
                     [--wait]
    caf-audit follow --connect ADDRESS --journal DIR [--name NAME]
    caf-audit query --connect ADDRESS --what WHAT [--job ID] [--wave N]
                    [--panel FP] [--digest D] [--namespace NS]
                    [--row-kind q12|q3]
    caf-audit trace show|tree|critical-path [--dir DIR]
                    [--fingerprint FP] [--connect ADDRESS] [--top K]
    caf-audit metrics [--connect ADDRESS] [--format prom|json]
    caf-audit experiment <id>... [--scale ...]
    caf-audit list
    caf-audit export --out DIR [--scale ...]
    caf-audit --version

``run`` prints the headline audit summary — sharded across worker
processes, resumable from checkpoints, and served from the
content-addressed audit cache when the runtime flags are given
(``--pace real`` rehearses the campaign wall-clock-faithfully;
``--worker-address HOST:PORT`` puts the distributed fleet on TCP);
``panel`` runs a multi-wave longitudinal audit with delta-aware
incremental re-collection (only cells whose world changed are
re-queried); ``worker`` joins a distributed coordinator as one leased
shard worker (the ``--backend distributed`` coordinator spawns these
itself for the local reference transport); ``serve`` runs the
always-on audit service (:mod:`repro.service`) whose hash-chained
journal is its only durable state; ``submit``/``follow``/``query``
are its clients — submit a campaign or panel, replicate the journal,
read served results; ``experiment`` renders one or more paper
tables/figures; ``export`` writes the audit datasets to CSV for
downstream use.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from pathlib import Path

from repro.analysis import EXPERIMENTS, ExperimentContext, run_experiment
from repro.bqt.campaign import estimate_duration, plan_full_census, plan_study
from repro.core.oversight import compare_oversight
from repro.core.pipeline import run_full_audit
from repro.persist import StudyStore
from repro.synth.scenario import ScenarioConfig

__all__ = ["main", "build_parser"]

_SCALE_CHOICES = ("tiny", "small", "paper")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="caf-audit",
        description="Reproduction of the SIGCOMM'24 CAF efficacy study",
    )
    from repro import __version__

    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run the full audit")
    run_parser.add_argument("--scale", choices=_SCALE_CHOICES, default="tiny")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="shard the campaign into N pieces (0 = sequential path)")
    run_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (clamped to the per-ISP politeness cap)")
    run_parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "async", "process+async",
                 "distributed"),
        default="auto",
        help="shard execution backend (auto: process iff workers > 1; "
             "async backends interleave storefront sessions per shard; "
             "distributed leases shards to worker subprocesses over "
             "local sockets)")
    run_parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent sessions per async event loop (default 8; "
             "politeness is still capped per ISP; implies an async "
             "backend when --backend is auto)")
    run_parser.add_argument(
        "--lease-timeout", type=float, default=None, metavar="S",
        help="distributed backend: seconds the coordinator waits for a "
             "worker's result before re-leasing its shard (default "
             "120; must exceed the slowest shard's compute time)")
    run_parser.add_argument(
        "--target-seconds", type=float, default=None, metavar="S",
        help="autotune the distributed fleet (workers, max-inflight, "
             "shards) to meet a virtual campaign wall-clock of S "
             "seconds; implies --backend distributed and overrides "
             "--shards/--workers/--max-inflight")
    run_parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write per-shard checkpoints under DIR")
    run_parser.add_argument(
        "--resume", action="store_true",
        help="reload completed shards from --checkpoint-dir")
    run_parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed audit cache directory")
    run_parser.add_argument(
        "--pace", default="none", metavar="P",
        help="real-time pacing: 'none' (default, purely virtual time), "
             "'real' (1 wall second per virtual second), or a float "
             "factor (0.01 = 100x faster than real time); records are "
             "byte-identical at any pace")
    run_parser.add_argument(
        "--worker-address", default=None, metavar="ADDR",
        help="distributed backend: where the coordinator listens for "
             "workers — HOST:PORT for TCP (port 0 picks a free port) "
             "or a Unix socket path (default: private tempdir socket)")

    panel_parser = subparsers.add_parser(
        "panel", help="run a multi-wave longitudinal audit panel")
    panel_parser.add_argument("--scale", choices=_SCALE_CHOICES,
                              default="tiny")
    panel_parser.add_argument("--seed", type=int, default=0)
    panel_parser.add_argument(
        "--waves", type=int, default=3, metavar="N",
        help="churn waves after the snapshot (default 3)")
    panel_parser.add_argument(
        "--years-per-wave", type=int, default=1, metavar="Y",
        help="years of churn between consecutive waves (default 1)")
    panel_parser.add_argument(
        "--churn-cell-rate", type=float, default=0.10, metavar="P",
        help="probability an (ISP, CBG) cell churns at all in a year "
             "(default 0.10; plant churn is neighborhood-correlated)")
    panel_parser.add_argument(
        "--churn-upgrade-rate", type=float, default=0.10, metavar="P",
        help="per-address annual upgrade probability inside a churning "
             "cell (default 0.10)")
    panel_parser.add_argument(
        "--churn-deployment-rate", type=float, default=0.03, metavar="P",
        help="per-address annual new-deployment probability inside a "
             "churning cell (default 0.03)")
    panel_parser.add_argument(
        "--churn-retirement-rate", type=float, default=0.01, metavar="P",
        help="per-address annual service-retirement probability inside "
             "a churning cell (default 0.01)")
    panel_parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="shard each wave's delta collection into N pieces "
             "(0 = in-process serial)")
    panel_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for changed-cell collection")
    panel_parser.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "async", "process+async",
                 "distributed"),
        default="auto",
        help="delta-collection backend (as for run)")
    panel_parser.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="concurrent sessions per async event loop (as for run)")
    panel_parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="write per-wave delta-shard checkpoints under DIR")
    panel_parser.add_argument(
        "--resume", action="store_true",
        help="reload completed waves from --store and completed delta "
             "shards from --checkpoint-dir")
    panel_parser.add_argument(
        "--store", metavar="DIR",
        help="persist completed wave logbooks under DIR (the panel "
             "store; enables cross-session --resume)")

    experiment_parser = subparsers.add_parser(
        "experiment", help="reproduce paper tables/figures")
    experiment_parser.add_argument("ids", nargs="+", metavar="ID")
    experiment_parser.add_argument("--scale", choices=_SCALE_CHOICES,
                                   default="tiny")
    experiment_parser.add_argument(
        "--plot", action="store_true",
        help="render CDF series as ASCII plots")

    subparsers.add_parser("list", help="list available experiments")

    worker_parser = subparsers.add_parser(
        "worker", help="join a distributed coordinator as a shard worker")
    worker_parser.add_argument(
        "--connect", required=True, metavar="ADDRESS",
        help="coordinator address: a Unix socket path or HOST:PORT")
    worker_parser.add_argument(
        "--die-after", type=int, default=None, metavar="N",
        help="chaos testing: die abruptly (no goodbye frame) when the "
             "next lease arrives after completing N shards")
    worker_parser.add_argument(
        "--wedge-after", type=int, default=None, metavar="N",
        help="chaos testing: wedge (stay alive but go silent — no "
             "heartbeats, no result) on the next lease after "
             "completing N shards")

    serve_parser = subparsers.add_parser(
        "serve", help="run the always-on audit service")
    serve_parser.add_argument(
        "--journal", required=True, metavar="DIR",
        help="journal root directory (the service's only durable "
             "state; a restart replays it)")
    serve_parser.add_argument(
        "--name", default="audit", metavar="NAME",
        help="logical service name (namespaces the journal; "
             "default 'audit')")
    serve_parser.add_argument(
        "--address", default=None, metavar="ADDR",
        help="listen address: a Unix socket path or HOST:PORT "
             "(HOST:0 binds an ephemeral port; default: a fresh Unix "
             "socket in a tempdir, printed on startup)")
    serve_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="panel store root (CAS cells + analysis rows) the read "
             "API serves from; panel jobs persist into it")

    submit_parser = subparsers.add_parser(
        "submit", help="submit a campaign or panel to a running service")
    submit_parser.add_argument(
        "--connect", required=True, metavar="ADDRESS",
        help="service address: a Unix socket path or HOST:PORT")
    submit_parser.add_argument(
        "--kind", choices=("campaign", "panel"), default="campaign")
    submit_parser.add_argument("--scale", choices=_SCALE_CHOICES,
                               default="tiny")
    submit_parser.add_argument("--seed", type=int, default=0)
    submit_parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="shard the campaign into N pieces (journal-checkpointed "
             "per shard)")
    submit_parser.add_argument(
        "--waves", type=int, default=3, metavar="N",
        help="panel jobs: churn waves after the snapshot (default 3)")
    submit_parser.add_argument(
        "--years-per-wave", type=int, default=1, metavar="Y",
        help="panel jobs: years of churn between waves (default 1)")
    submit_parser.add_argument(
        "--pace", default="none", metavar="P",
        help="pacing for the submitted job (as for run)")
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state and report "
             "its result (exit 1 if it failed)")
    submit_parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="S",
        help="--wait limit in seconds (default 600)")

    follow_parser = subparsers.add_parser(
        "follow", help="replicate a service's journal to a local one")
    follow_parser.add_argument(
        "--connect", required=True, metavar="ADDRESS",
        help="service address: a Unix socket path or HOST:PORT")
    follow_parser.add_argument(
        "--journal", required=True, metavar="DIR",
        help="local replica journal root (same namespace as the "
             "primary's, so the trees are interchangeable)")
    follow_parser.add_argument(
        "--name", default="audit", metavar="NAME",
        help="logical service name (must match the primary's)")
    follow_parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="S",
        help="seconds to reach the primary's tip (default 60)")

    query_parser = subparsers.add_parser(
        "query", help="read served results from a running service")
    query_parser.add_argument(
        "--connect", required=True, metavar="ADDRESS",
        help="service address: a Unix socket path or HOST:PORT")
    query_parser.add_argument(
        "--what", required=True,
        choices=("state", "job", "wave-analysis", "wave-digests",
                 "cell", "row"),
        help="what to read: coordinator state, one job, a sealed "
             "wave's analysis, a wave's cell digests, a CAS cell "
             "payload, or a cached analysis row")
    query_parser.add_argument("--job", default=None, metavar="ID")
    query_parser.add_argument("--wave", type=int, default=None, metavar="N")
    query_parser.add_argument("--panel", default=None, metavar="FP",
                              help="panel fingerprint")
    query_parser.add_argument("--digest", default=None, metavar="D")
    query_parser.add_argument("--namespace", default=None, metavar="NS",
                              help="row-cache namespace")
    query_parser.add_argument("--row-kind", choices=("q12", "q3"),
                              default=None)

    trace_parser = subparsers.add_parser(
        "trace", help="render a published campaign trace (repro.obs)")
    trace_parser.add_argument(
        "action", choices=("show", "tree", "critical-path"),
        help="show: flat span listing; tree: the stitched span tree "
             "with per-stage self time; critical-path: top-k spans on "
             "the longest root-to-leaf chain")
    trace_parser.add_argument(
        "--dir", default=None, metavar="DIR",
        help="trace sidecar root (default: $REPRO_TRACE_DIR)")
    trace_parser.add_argument(
        "--fingerprint", default=None, metavar="FP",
        help="campaign/panel fingerprint naming the trace namespace "
             "(default: the root's only namespace)")
    trace_parser.add_argument(
        "--connect", default=None, metavar="ADDRESS",
        help="fetch spans from a running service instead of a "
             "sidecar directory")
    trace_parser.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="critical-path: how many spans to print (default 5)")

    metrics_parser = subparsers.add_parser(
        "metrics", help="expose the metrics registry (repro.obs)")
    metrics_parser.add_argument(
        "--connect", default=None, metavar="ADDRESS",
        help="read a running service's registry instead of this "
             "process's (which is empty unless a run preceded it)")
    metrics_parser.add_argument(
        "--format", choices=("prom", "json"), default="prom",
        dest="output_format",
        help="Prometheus text exposition (default) or canonical JSON")

    export_parser = subparsers.add_parser(
        "export", help="export audit datasets + manifest to a directory")
    export_parser.add_argument("--out", required=True)
    export_parser.add_argument("--scale", choices=_SCALE_CHOICES, default="tiny")
    export_parser.add_argument("--seed", type=int, default=0)

    oversight_parser = subparsers.add_parser(
        "oversight", help="compare USAC-style reviews with an external audit")
    oversight_parser.add_argument("--isp", default="att")
    oversight_parser.add_argument("--scale", choices=_SCALE_CHOICES,
                                  default="tiny")

    campaign_parser = subparsers.add_parser(
        "campaign", help="campaign-duration arithmetic (the §1 claim)")
    campaign_parser.add_argument("--workers", type=int, default=8)

    validate_parser = subparsers.add_parser(
        "validate", help="run the world/report consistency suite")
    validate_parser.add_argument("--scale", choices=_SCALE_CHOICES,
                                 default="tiny")

    report_parser = subparsers.add_parser(
        "report", help="write the auto-generated reproduction report")
    report_parser.add_argument("--out", required=True)
    report_parser.add_argument("--scale", choices=_SCALE_CHOICES,
                               default="tiny")

    lint_parser = subparsers.add_parser(
        "lint", help="statically check the determinism & durability "
                     "contracts (module rule packs plus the "
                     "whole-program FLOW/PROTO/CONC pass)")
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)")
    lint_parser.add_argument("--format",
                             choices=("text", "json", "sarif"),
                             default="text", dest="output_format")
    lint_parser.add_argument(
        "--baseline", metavar="FILE",
        help="subtract the committed exceptions in FILE before failing")
    lint_parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current findings to FILE and exit 0")
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    lint_parser.add_argument(
        "--no-project", action="store_true",
        help="skip the whole-program pass (module rules only)")
    lint_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse cold modules in N worker processes")
    lint_parser.add_argument(
        "--cache", metavar="FILE",
        help="fact-cache file; unchanged modules skip parsing")
    lint_parser.add_argument(
        "--fix-suppressions", action="store_true",
        help="delete suppression comments that silence nothing "
             "(the LINT001 findings) and rescan")
    return parser


def _scenario_at(scale: str, seed: int) -> ScenarioConfig:
    """The named scale's scenario, reseeded when requested."""
    scenario = ExperimentContext.at_scale(scale).scenario
    if seed != scenario.seed:
        scenario = ScenarioConfig(
            seed=seed,
            address_scale=scenario.address_scale,
            cbg_size_median=scenario.cbg_size_median,
            cbg_size_sigma=scenario.cbg_size_sigma,
            max_cbg_size=scenario.max_cbg_size,
        )
    return scenario


def _parse_pace(text: str) -> float:
    """``--pace`` values: ``none``, ``real``, or a float factor."""
    if text in ("none", ""):
        return 0.0
    if text == "real":
        return 1.0
    return float(text)


def _engine_config_for_pace(command: str, pace_text: str):
    """The :class:`~repro.bqt.engine.EngineConfig` a ``--pace`` flag
    asks for (``None`` when unpaced), or an exit code on junk."""
    try:
        pace = _parse_pace(pace_text)
        if pace == 0:
            return None
        from repro.bqt.engine import EngineConfig

        return EngineConfig(pace=pace)
    except ValueError as error:
        print(f"caf-audit {command}: invalid --pace {pace_text!r}: {error}",
              file=sys.stderr)
        return 2


def _command_run(args: argparse.Namespace) -> int:
    scenario = _scenario_at(args.scale, args.seed)
    engine_config = _engine_config_for_pace("run", args.pace)
    if engine_config == 2:
        return 2
    if args.target_seconds is not None:
        return _run_autotuned(args, scenario, engine_config)
    parallel = None
    wants_runtime = (args.shards or args.workers != 1 or args.resume
                     or args.backend != "auto"
                     or args.max_inflight is not None
                     or args.lease_timeout is not None
                     or args.worker_address is not None
                     or args.checkpoint_dir or args.cache_dir)
    if wants_runtime:
        from repro.runtime import RuntimeConfig

        try:
            # RuntimeConfig resolves the backend: an explicit
            # --max-inflight promotes "auto" to an async backend, and
            # async with workers composes to process+async.
            parallel = RuntimeConfig(
                shards=args.shards or max(args.workers, 1),
                workers=args.workers,
                backend=args.backend,
                max_inflight=args.max_inflight,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume,
                cache_dir=args.cache_dir,
                lease_timeout=args.lease_timeout,
                worker_address=args.worker_address,
            )
        except ValueError as error:
            print(f"caf-audit run: {error}", file=sys.stderr)
            return 2
    on_progress = _shard_progress_printer() if parallel is not None else None
    report = run_full_audit(scenario=scenario, parallel=parallel,
                            on_progress=on_progress,
                            engine_config=engine_config)
    print("\n".join(report.summary_lines()))
    return 0


def _run_autotuned(args: argparse.Namespace, scenario,
                   engine_config=None) -> int:
    """``run --target-seconds``: size the distributed fleet, then run."""
    if args.backend not in ("auto", "distributed"):
        print(f"caf-audit run: --target-seconds autotunes the distributed "
              f"backend; it cannot be combined with "
              f"--backend {args.backend}", file=sys.stderr)
        return 2
    if args.target_seconds <= 0:
        print("caf-audit run: --target-seconds must be positive",
              file=sys.stderr)
        return 2
    from repro.runtime.distributed import autotune_runtime_config
    from repro.synth.world import build_world

    if args.cache_dir:
        # The cache short-circuit must come before the pilot shard
        # and world build, or a warm cache still pays minutes of
        # autotuning work it is about to throw away. Both lookups are
        # the exact ones run_full_audit performs (shared helpers).
        # A paced run never takes it: serving a rehearsal from cache
        # would skip the rehearsal (pacing is part of the digest).
        from repro.core.pipeline import cached_audit_report, cached_world

        cached = (cached_audit_report(args.cache_dir, scenario)
                  if engine_config is None else None)
        if cached is not None:
            print("audit served from cache; autotuning skipped",
                  file=sys.stderr)
            print("\n".join(cached.summary_lines()))
            return 0
        # Audit miss: the scenario-keyed world store can still spare
        # the build (and a fresh build warms it for the next run).
        world = cached_world(args.cache_dir, scenario)
    else:
        world = build_world(scenario)
    # Persist the autotune decision next to the checkpoints (or cache):
    # a repeat or --resume run with the same world and target reloads
    # the plan instead of re-running the serial pilot shard.
    plan_dir = args.checkpoint_dir or args.cache_dir
    plan = autotune_runtime_config(world, args.target_seconds,
                                   plan_dir=plan_dir)
    print(plan.render(), file=sys.stderr)
    try:
        parallel = plan.runtime_config(
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            cache_dir=args.cache_dir,
            lease_timeout=args.lease_timeout,
        )
    except ValueError as error:
        print(f"caf-audit run: {error}", file=sys.stderr)
        return 2
    report = run_full_audit(world=world, parallel=parallel,
                            on_progress=_shard_progress_printer(),
                            engine_config=engine_config)
    print("\n".join(report.summary_lines()))
    return 0


def _shard_progress_printer(stream=None):
    """A per-shard progress callback printing status + ETA lines.

    The ETA rate is measured in *cells* (Q1/Q2 records + Q3 outcomes)
    between executed shard completions of this run: the clock starts
    at the first executed shard, and shards restored from a checkpoint
    (``restored=True``) are reported but excluded from the rate
    entirely — a restored shard arrives in microseconds, and counting
    its units would make a resumed run's ETA wildly optimistic. The
    remaining work is projected from the mean executed-shard size, so
    a resume where the restored shards were the big ones no longer
    skews the estimate the way shard-count extrapolation did. The
    first executed line (no rate observed yet) reports the ETA as
    pending. Rough, but it turns a previously silent ``--shards`` run
    into a live progress feed on stderr.
    """
    import time

    stream = stream if stream is not None else sys.stderr
    started = time.monotonic()
    first_done_at: float | None = None
    live_shards = 0       # executed (non-restored) shards seen
    live_units = 0        # their cells, the mean-shard-size basis
    units_since_first = 0  # cells completed inside the rate window

    def on_progress(completed: int, total: int, result,
                    restored: bool = False) -> None:
        nonlocal first_done_at, live_shards, live_units, units_since_first
        now = time.monotonic()
        units = len(result.q12_records) + len(result.q3_outcomes)
        if restored:
            print(
                f"[shard {result.index}] restored from checkpoint "
                f"({units} units) — {completed}/{total} shards",
                file=stream)
            return
        live_shards += 1
        live_units += units
        if first_done_at is None:
            first_done_at = now
        else:
            units_since_first += units
        remaining = total - completed
        window = now - first_done_at
        if units_since_first and window > 0:
            unit_rate = units_since_first / window
            eta = remaining * (live_units / live_shards) / unit_rate
            eta_text = f"ETA {eta:.1f}s"
        else:
            eta_text = "ETA pending"
        print(
            f"[shard {result.index}] done ({units} units) — "
            f"{completed}/{total} shards in {now - started:.1f}s, "
            f"{eta_text}", file=stream)

    return on_progress


def _command_panel(args: argparse.Namespace) -> int:
    from repro.analysis.incremental import row_cache_for
    from repro.analysis.panel import wave_rates
    from repro.longitudinal import PanelCampaign
    from repro.synth.churn import ChurnModel
    from repro.synth.world import build_world

    if args.waves < 1:
        print("caf-audit panel: --waves must be positive", file=sys.stderr)
        return 2
    if args.years_per_wave < 1:
        print("caf-audit panel: --years-per-wave must be positive",
              file=sys.stderr)
        return 2
    try:
        model = ChurnModel(
            cell_rate=args.churn_cell_rate,
            upgrade_rate=args.churn_upgrade_rate,
            new_deployment_rate=args.churn_deployment_rate,
            retirement_rate=args.churn_retirement_rate,
        )
    except ValueError as error:
        print(f"caf-audit panel: {error}", file=sys.stderr)
        return 2
    runtime = None
    wants_runtime = (args.shards or args.workers != 1
                     or args.backend != "auto"
                     or args.max_inflight is not None
                     or args.checkpoint_dir)
    if wants_runtime:
        from repro.runtime import RuntimeConfig

        try:
            runtime = RuntimeConfig(
                shards=args.shards or max(args.workers, 1),
                workers=args.workers,
                backend=args.backend,
                max_inflight=args.max_inflight,
                checkpoint_dir=args.checkpoint_dir,
                resume=args.resume and args.checkpoint_dir is not None,
            )
        except ValueError as error:
            print(f"caf-audit panel: {error}", file=sys.stderr)
            return 2
    if args.resume and not args.store and not args.checkpoint_dir:
        # Fail before the (expensive) world build.
        print("caf-audit panel: --resume requires --store and/or "
              "--checkpoint-dir", file=sys.stderr)
        return 2
    horizons = tuple(args.years_per_wave * wave
                     for wave in range(1, args.waves + 1))
    scenario = _scenario_at(args.scale, args.seed)
    world = build_world(scenario)
    try:
        campaign = PanelCampaign(world, model=model, horizons=horizons,
                                 runtime=runtime, store_dir=args.store,
                                 resume=args.resume)
    except ValueError as error:
        print(f"caf-audit panel: {error}", file=sys.stderr)
        return 2
    # Per-cell audit rows carried across waves (and, with --store, runs):
    # each follow-up wave's analysis recomputes only churned cells.
    rows = row_cache_for(campaign, directory=args.store)
    live_digests: set[str] = set()
    base_serviceability = base_compliance = None
    for outcome in campaign.waves():
        live_digests.update(outcome.digests.q12.values())
        live_digests.update(outcome.digests.q3.values())
        serviceability, compliance = wave_rates(outcome, cache=rows)
        total = (outcome.fresh_q12 + outcome.replayed_q12
                 + outcome.fresh_q3 + outcome.replayed_q3)
        source = ("restored from store" if outcome.restored_from_store
                  else f"queried in {outcome.collect_seconds:.1f}s")
        if outcome.wave == 0:
            base_serviceability, base_compliance = serviceability, compliance
            print(f"[wave 0] snapshot: {len(outcome.collection.log)} Q1/Q2 "
                  f"+ {len(outcome.q3.log)} Q3 records across {total} "
                  f"cells ({source})")
        else:
            fresh = outcome.fresh_q12 + outcome.fresh_q3
            print(f"[wave {outcome.wave}] +{outcome.horizon_years}y: "
                  f"re-queried {fresh}/{total} cells "
                  f"({1 - outcome.reuse_fraction:.0%}), replayed "
                  f"{outcome.replayed_q12 + outcome.replayed_q3} "
                  f"({source})")
        drift = ("" if outcome.wave == 0 else
                 f" ({(serviceability - base_serviceability) * 100:+.2f}pp"
                 f" / {(compliance - base_compliance) * 100:+.2f}pp)")
        print(f"         serviceability {serviceability:.2%}, "
              f"compliance {compliance:.2%}{drift}")
    if args.store:
        # Bound the disk-backed row store to the digests this run
        # actually analyzed — churned cells leave one stale row file
        # per superseded digest behind otherwise. Keyed to the run's
        # live digests (not the store's v2 manifests), so resuming a
        # pre-1.5 panel whose waves are all format-1 documents cannot
        # wipe the rows it just wrote.
        rows.sweep_unreferenced(live_digests)
        print(f"panel store: {campaign.store.panel_directory}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    unknown = [i for i in args.ids if i not in EXPERIMENTS and i != "all"]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2
    ids = sorted(EXPERIMENTS) if "all" in args.ids else args.ids
    context = ExperimentContext.at_scale(args.scale)
    for experiment_id in ids:
        result = run_experiment(experiment_id, context)
        print(result.render())
        if getattr(args, "plot", False) and result.series:
            from repro.analysis.plots import ascii_cdf

            positive = all(
                (xs > 0).all() for xs, _ in result.series.values())
            print()
            print(ascii_cdf(result.series, log_x=positive,
                            title=f"[{experiment_id}] CDFs"))
        print()
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from repro.runtime.distributed import FrameError, run_worker

    if args.die_after is not None and args.die_after < 0:
        print("caf-audit worker: --die-after must be non-negative",
              file=sys.stderr)
        return 2
    if args.wedge_after is not None and args.wedge_after < 0:
        print("caf-audit worker: --wedge-after must be non-negative",
              file=sys.stderr)
        return 2
    try:
        return run_worker(args.connect, die_after=args.die_after,
                          wedge_after=args.wedge_after)
    except (OSError, ValueError, FrameError) as error:
        # OSError covers the whole connect-failure family (refused
        # connections, missing socket paths, DNS failures, timeouts);
        # FrameError is a damaged or unexpected coordinator frame.
        print(f"caf-audit worker: {error}", file=sys.stderr)
        return 1


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import AuditService

    try:
        service = AuditService(args.journal, name=args.name,
                               address=args.address, store_dir=args.store)
        service.start()
    except (OSError, ValueError) as error:
        print(f"caf-audit serve: {error}", file=sys.stderr)
        return 1
    # The bound address on stdout (scripts capture it; TCP port 0 and
    # the default tempdir socket are only known post-bind), status on
    # stderr like the rest of the CLI.
    print(service.address, flush=True)
    print(f"service {args.name!r} listening at {service.address} "
          f"(journal tip seq {service.journal.tip_seq})", file=sys.stderr)
    try:
        service._stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _build_submission_spec(args: argparse.Namespace, engine_config) -> dict:
    from dataclasses import asdict

    scenario = _scenario_at(args.scale, args.seed)
    spec: dict = {"kind": args.kind, "scenario": asdict(scenario),
                  "shards": args.shards}
    if args.kind == "panel":
        if args.waves < 1 or args.years_per_wave < 1:
            raise ValueError("--waves and --years-per-wave must be positive")
        spec["horizons"] = [args.years_per_wave * wave
                            for wave in range(1, args.waves + 1)]
    if engine_config is not None:
        spec["engine_config"] = asdict(engine_config)
    return spec


def _command_submit(args: argparse.Namespace) -> int:
    from repro.runtime.distributed import FrameError
    from repro.service import ServiceClient

    engine_config = _engine_config_for_pace("submit", args.pace)
    if engine_config == 2:
        return 2
    try:
        spec = _build_submission_spec(args, engine_config)
    except ValueError as error:
        print(f"caf-audit submit: {error}", file=sys.stderr)
        return 2
    try:
        with ServiceClient(args.connect) as client:
            response = client.submit(spec)
            print(f"accepted {response['job']} "
                  f"(seq {response['seq']}, "
                  f"digest {response['digest'][:16]}…)")
            if not args.wait:
                return 0
            state = client.wait_for_job(response["job"],
                                        timeout=args.timeout)
    except (OSError, FrameError, RuntimeError, TimeoutError) as error:
        print(f"caf-audit submit: {error}", file=sys.stderr)
        return 1
    if state.get("status") == "completed":
        print(f"completed: {_json.dumps(state.get('result'), sort_keys=True)}")
        return 0
    print(f"failed: {state.get('error')}", file=sys.stderr)
    return 1


def _command_follow(args: argparse.Namespace) -> int:
    from repro.runtime.distributed import FrameError
    from repro.service import JournalError, follow

    follower = follow(args.connect, args.journal, name=args.name)
    try:
        replicated = follower.catch_up(timeout=args.timeout)
        journal = follower.journal
        print(f"replicated {replicated} entries; tip seq "
              f"{journal.tip_seq}, digest {journal.tip_digest[:16]}…")
        return 0
    except (OSError, FrameError, JournalError, TimeoutError) as error:
        print(f"caf-audit follow: {error}", file=sys.stderr)
        return 1
    finally:
        follower.close()
        follower.journal.close()


def _command_query(args: argparse.Namespace) -> int:
    from repro.runtime.distributed import FrameError
    from repro.service import ServiceClient

    message = {"what": args.what}
    for key, value in (("job", args.job), ("wave", args.wave),
                       ("panel", args.panel), ("digest", args.digest),
                       ("namespace", args.namespace),
                       ("row_kind", args.row_kind)):
        if value is not None:
            message[key] = value
    try:
        with ServiceClient(args.connect) as client:
            response = client.query(**message)
    except (OSError, FrameError) as error:
        print(f"caf-audit query: {error}", file=sys.stderr)
        return 1
    if response.get("type") != "result":
        print(f"caf-audit query: {response.get('error', response)}",
              file=sys.stderr)
        return 2
    if not response.get("hit") and response.get("empty"):
        # The typed empty state: nothing sealed yet, not a damaged
        # request — explain instead of dumping a bare null.
        reason = response.get("reason") or "service is empty"
        print(f"caf-audit query: {reason}", file=sys.stderr)
        return 1
    try:
        print(_json.dumps(response.get("payload"), indent=2, sort_keys=True))
    except BrokenPipeError:
        # Downstream (a pager, `head`) closed the pipe after reading
        # what it wanted; swap in devnull so interpreter shutdown
        # doesn't trip over the dead stdout.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0 if response.get("hit") else 1


def _trace_records(args: argparse.Namespace) -> list | int:
    """The spans ``caf-audit trace`` renders, or an exit code."""
    if args.connect:
        from repro.runtime.distributed import FrameError
        from repro.service import ServiceClient

        try:
            with ServiceClient(args.connect) as client:
                response = client.trace(args.fingerprint)
        except (OSError, FrameError) as error:
            print(f"caf-audit trace: {error}", file=sys.stderr)
            return 1
        if response.get("type") != "trace":
            print(f"caf-audit trace: {response.get('error', response)}",
                  file=sys.stderr)
            return 2
        return list(response.get("spans") or [])
    from repro.obs.trace import TraceStore, trace_dir_from_environment

    root = Path(args.dir) if args.dir else trace_dir_from_environment()
    if root is None:
        print("caf-audit trace: give --dir, --connect, or set "
              "REPRO_TRACE_DIR", file=sys.stderr)
        return 2
    fingerprint = args.fingerprint
    if fingerprint is None:
        namespaces = sorted(
            entry.name for entry in root.iterdir()
            if entry.is_dir() and any(entry.glob("trace-*.jsonl"))
        ) if root.is_dir() else []
        if len(namespaces) != 1:
            print(f"caf-audit trace: {root} holds "
                  f"{len(namespaces)} trace namespaces "
                  f"({', '.join(namespaces) or 'none'}); pick one with "
                  "--fingerprint", file=sys.stderr)
            return 2
        fingerprint = namespaces[0]
    return TraceStore(root, fingerprint).load_spans()


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs.report import (build_tree, critical_path,
                                  render_tree, self_seconds)

    records = _trace_records(args)
    if isinstance(records, int):
        return records
    if not records:
        print("caf-audit trace: no spans found", file=sys.stderr)
        return 1
    if args.action == "show":
        for record in sorted(records, key=lambda r: (
                r.get("site", ""), r.get("start", 0.0))):
            print(_json.dumps(record, sort_keys=True))
        return 0
    if args.action == "tree":
        print(render_tree(records))
        return 0
    _roots, children = build_tree(records)
    top = critical_path(records, top=max(1, args.top))
    print(f"critical path (top {len(top)} by self time):")
    for record in top:
        self_ms = self_seconds(record, children) * 1000.0
        total_ms = record.get("duration", 0.0) * 1000.0
        print(f"  {record.get('name')} [{record.get('site', 'main')}]  "
              f"self {self_ms:.1f}ms of {total_ms:.1f}ms")
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    from repro.obs.metrics import REGISTRY, MetricsRegistry

    if args.connect:
        from repro.runtime.distributed import FrameError
        from repro.service import ServiceClient

        try:
            with ServiceClient(args.connect) as client:
                response = client.metrics()
        except (OSError, FrameError) as error:
            print(f"caf-audit metrics: {error}", file=sys.stderr)
            return 1
        if response.get("type") != "metrics":
            print(f"caf-audit metrics: {response.get('error', response)}",
                  file=sys.stderr)
            return 2
        if args.output_format == "prom":
            print(response.get("prometheus", ""), end="")
            return 0
        registry = MetricsRegistry()
        registry.merge(response.get("snapshot"))
        print(registry.render_json())
        return 0
    if args.output_format == "prom":
        print(REGISTRY.render_prometheus(), end="")
    else:
        print(REGISTRY.render_json())
    return 0


def _command_list(_args: argparse.Namespace) -> int:
    for experiment_id in sorted(EXPERIMENTS):
        print(experiment_id)
    return 0


def _command_export(args: argparse.Namespace) -> int:
    context = ExperimentContext.at_scale(args.scale)
    store = StudyStore(Path(args.out))
    manifest = store.save(context.report)
    print(f"wrote {len(manifest.checksums)} datasets + manifest "
          f"under {store.directory}")
    return 0


def _command_oversight(args: argparse.Namespace) -> int:
    context = ExperimentContext.at_scale(args.scale)
    comparison = compare_oversight(context.world, isp_id=args.isp)
    print(comparison.render())
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    census = estimate_duration(plan_full_census(workers_per_isp=args.workers))
    study = estimate_duration(plan_study(
        {"att": 233_000, "centurylink": 112_000,
         "frontier": 170_000, "consolidated": 23_000},
        workers_per_isp=args.workers))
    print(f"full census of the 4 study ISPs ({args.workers} workers/ISP):")
    print(f"  {census.wall_clock_months:.1f} months "
          f"(bottleneck: {census.bottleneck_isp}) — the paper's '>6 months'")
    print("the paper's stratified sample (537k addresses):")
    print(f"  {study.wall_clock_months:.1f} months")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    from repro.core.validation import validate_report

    context = ExperimentContext.at_scale(args.scale)
    findings = validate_report(context.report)
    if findings:
        for finding in findings:
            print(finding, file=sys.stderr)
        print(f"{len(findings)} consistency findings", file=sys.stderr)
        return 1
    print("world and report are consistent (0 findings)")
    return 0


def _command_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_md import write_report

    context = ExperimentContext.at_scale(args.scale)
    path = write_report(context, args.out)
    print(f"wrote reproduction report to {path}")
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (apply_baseline, fix_suppressions,
                            load_baseline, render_json,
                            render_rule_catalog, render_sarif,
                            render_text, run_scan, write_baseline)

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    scan_kwargs = dict(
        project=not args.no_project,
        jobs=max(args.jobs, 1),
        cache_path=Path(args.cache) if args.cache else None,
    )
    try:
        result = run_scan(args.paths, **scan_kwargs)
    except FileNotFoundError as error:
        print(f"caf-audit lint: {error}", file=sys.stderr)
        return 2
    if args.fix_suppressions and result.unused_suppressions:
        rewritten = fix_suppressions(result.unused_suppressions)
        print(f"removed dead suppressions in {len(rewritten)} file(s)",
              file=sys.stderr)
        # The edits invalidate their cache entries; rescan for the
        # report the caller actually asked for.
        result = run_scan(args.paths, **scan_kwargs)
    findings = result.findings
    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} findings to {args.write_baseline}")
        return 0
    baselined = 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"caf-audit lint: bad baseline: {error}", file=sys.stderr)
            return 2
        fresh = apply_baseline(findings, baseline)
        baselined = len(findings) - len(fresh)
        findings = fresh
    renderer = {"json": render_json,
                "sarif": render_sarif}.get(args.output_format,
                                           render_text)
    print(renderer(findings, baselined))
    return 1 if findings else 0


_COMMANDS = {
    "run": _command_run,
    "panel": _command_panel,
    "worker": _command_worker,
    "serve": _command_serve,
    "submit": _command_submit,
    "follow": _command_follow,
    "query": _command_query,
    "trace": _command_trace,
    "metrics": _command_metrics,
    "experiment": _command_experiment,
    "list": _command_list,
    "export": _command_export,
    "oversight": _command_oversight,
    "campaign": _command_campaign,
    "validate": _command_validate,
    "report": _command_report,
    "lint": _command_lint,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    from repro.runtime import cache_dir_from_environment

    if getattr(args, "cache_dir", None) or cache_dir_from_environment():
        # A cache will (or may, via ExperimentContext) be constructed:
        # surface a malformed REPRO_CACHE_MAX_BYTES as a handled
        # config error up front, not a traceback mid-audit.
        try:
            from repro.runtime import cache_max_bytes_from_environment

            cache_max_bytes_from_environment()
        except ValueError as error:
            print(f"caf-audit: {error}", file=sys.stderr)
            return 2
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
