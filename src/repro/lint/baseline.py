"""The committed-exception store.

A baseline is a JSON file enumerating findings the project has decided
to live with. ``repro lint --baseline FILE`` subtracts them from the
scan; anything left fails the run. The workflow is a ratchet: new code
must scan clean, old accepted findings stay documented in one reviewed
file, and deleting the offending code automatically invalidates its
entry (matching keys on the stripped source line, not line numbers).

This project's policy is stricter still: DET and DUR findings are
never baselined — determinism and durability bugs get fixed, and the
acceptance test pins the committed baseline to zero entries from those
packs.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.lint.model import Finding
from repro.runtime.atomicio import atomic_write_text

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

FORMAT = 1


def load_baseline(path: str | Path) -> list[Finding]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path}: unsupported baseline format {payload.get('format')!r}")
    return [Finding.from_json(entry) for entry in payload["findings"]]


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> None:
    payload = {
        "format": FORMAT,
        "findings": [f.to_json() for f in
                     sorted(findings, key=Finding.sort_key)],
    }
    atomic_write_text(
        Path(path),
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(findings: Sequence[Finding],
                   baseline: Sequence[Finding]) -> list[Finding]:
    """Subtract baselined findings, respecting multiplicity.

    Two identical violations on different lines of one file share a
    baseline key; a baseline with one such entry excuses exactly one
    of them, so a copy-pasted second offense still fails the scan.
    """
    budget = Counter(f.baseline_key() for f in baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    return fresh
