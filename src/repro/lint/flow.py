"""FLOW pack — interprocedural determinism taint.

DET103 catches ``time.time()`` *in the file being scanned*; it is
blind the moment the clock read hides behind a helper in another
module. These project-scoped rules close that hole: phase 1 records
which functions return impurity (wall clock, unseeded RNG) locally,
phase 2 propagates that taint along the call graph, and a finding
fires only where a tainted value actually reaches a durable sink —
a frame write, an atomic store publish, or a digest.

The taint is *return-value* taint, deliberately: a function that
consults the clock for control flow (atomicio's stale-tmp sweep ages
files) but never returns a clock-derived value is pure from the
caller's point of view and stays clean here.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.model import Finding, rule
from repro.lint.project import ProjectContext

# Calls that commit their arguments to durable output: the wire, an
# atomically-published store file. (``journal.append`` et al. funnel
# into these.)
DURABLE_SINKS = frozenset({
    "write_frame", "atomic_write_json", "atomic_write_text",
    "atomic_write_bytes", "atomic_write_stream", "append_replicated",
})

# Calls that fold their arguments into a digest.
DIGEST_SINKS = frozenset({
    "content_digest", "audit_digest", "world_digest",
    "sha256", "sha1", "md5", "blake2b", "_sha256", "_digest",
})


def _tainted_sources(project: ProjectContext, relpath: str, fn,
                     call, kind: str) -> list[tuple[str, list[str]]]:
    """(source call name, witness chain) for every tainted value
    feeding one sink call's arguments."""
    sources: list[tuple[str, list[str]]] = []
    seen: set = set()

    def check(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        taint = project.taint_of_call(relpath, fn, name)
        if kind in taint:
            sources.append((name, taint[kind]))

    for callee_name in call.arg_calls:
        check(callee_name)
    for arg_name in call.arg_names_all:
        for callee_name in fn.assigned_calls.get(arg_name, ()):
            check(callee_name)
    return sources


def _flow_findings(project: ProjectContext, sinks: frozenset,
                   kind: str, rule_id: str,
                   verdict: str) -> Iterator[Finding]:
    for relpath, _, fn in project.iter_functions():
        for call in fn.calls:
            if call.name.split(".")[-1] not in sinks:
                continue
            for source, chain in _tainted_sources(
                    project, relpath, fn, call, kind):
                yield Finding(
                    rule=rule_id, path=relpath, line=call.line,
                    col=call.col, context=call.context,
                    message=(f"{source}() feeds "
                             f"{call.name.split('.')[-1]}() but is "
                             f"tainted transitively "
                             f"({' -> '.join(chain)}); {verdict}"))


@rule(
    "FLOW601", "FLOW",
    summary="wall-clock value reaches durable output through calls",
    rationale="a helper wrapping time.time() passes DET103 in every "
              "caller's file; taint propagated over the call graph "
              "catches the clock read no matter how many modules it "
              "hides behind before landing in a frame or store",
    exclude_basenames=("atomicio",),
    exclude_path_tokens=("obs/",),
    scope="project",
)
def flow601_transitive_wall_clock(
        project: ProjectContext) -> Iterator[Finding]:
    yield from _flow_findings(
        project, DURABLE_SINKS, "wall_clock", "FLOW601",
        "durable bytes must not depend on when the run happened")


@rule(
    "FLOW602", "FLOW",
    summary="unseeded-RNG value reaches a digest through calls",
    rationale="a digest over values from an unseeded generator can "
              "never be reproduced; DET101 misses the draw when it "
              "happens in a callee, so the taint has to travel the "
              "call graph to the hashing site",
    scope="project",
)
def flow602_transitive_rng_digest(
        project: ProjectContext) -> Iterator[Finding]:
    yield from _flow_findings(
        project, DIGEST_SINKS, "unseeded_rng", "FLOW602",
        "seed the generator from the spec or drop it from the digest")
