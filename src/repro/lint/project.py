"""Whole-program context: phase 2 of the analyzer.

:class:`ProjectContext` joins every scanned module's
:class:`~repro.lint.facts.ModuleFacts` into the cross-module views the
project-scoped rules consume:

* **import graph** — absolute and ``from`` imports resolved to scanned
  modules by dotted-suffix match (``repro.service.daemon`` finds
  ``src/repro/service/daemon.py`` no matter where the scan root sits);
* **call graph** — module-level functions, class methods, ``self.``
  dispatch, instance attributes typed in ``__init__``
  (``self._journal.append`` resolves into ``Journal.append``), and
  locally-typed variables (``client = ServiceClient(...)``);
* **return taint** — per-function impurity facts propagated along
  in-return call edges to a fixpoint, each tainted node carrying a
  witness chain for the eventual finding message;
* **frame dataflow** — which local names and parameters hold decoded
  frames, propagated through calls and returns;
* **lock graph** — canonical lock identities (``Condition(self._lock)``
  aliases its wrapped lock) with acquisition-order edges from lexical
  nesting and from calls made while holding a lock.

Everything here is derived from facts — no ASTs — so warm scans can
rebuild the project view from cached facts without reparsing a single
unchanged file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.facts import FunctionFacts, ModuleFacts

__all__ = ["ProjectContext", "FunctionNode", "build_project"]


@dataclass(frozen=True)
class FunctionNode:
    """One call-graph node: a function or method in a scanned module."""

    relpath: str
    qualname: str  # "fn" or "Class.method"

    @property
    def key(self) -> str:
        return f"{self.relpath}::{self.qualname}"


@dataclass
class ProjectContext:
    """The cross-module views handed to every project-scoped rule."""

    modules: dict[str, ModuleFacts]  # keyed by relpath
    by_dotted: dict[str, str] = field(default_factory=dict)
    # caller node key -> list of (CallSite, callee FunctionNode)
    call_edges: dict[str, list] = field(default_factory=dict)
    # node key -> {impurity kind: witness chain (list of str)}
    return_taint: dict[str, dict[str, list[str]]] = field(
        default_factory=dict)
    # node key -> True when the function (transitively) returns a
    # decoded frame.
    returns_frame: dict[str, bool] = field(default_factory=dict)
    # node key -> parameter names holding frames (interprocedural).
    frame_params: dict[str, set] = field(default_factory=dict)

    # -- module / symbol resolution ------------------------------------

    def resolve_module(self, name: str, importer: str) -> str | None:
        """Relpath of the scanned module an import names, or None.

        ``name`` may be relative (leading dots); ``importer`` is the
        importing module's relpath. Absolute names match any scanned
        module whose dotted path equals or dotted-suffix-matches them,
        so scan roots never have to line up with package roots.
        """
        if name.startswith("."):
            level = len(name) - len(name.lstrip("."))
            remainder = name.lstrip(".")
            base = self.modules[importer].dotted.split(".")
            base = base[:len(base) - level]  # level 1 = current package
            dotted = ".".join(base + ([remainder] if remainder else []))
            return self.by_dotted.get(dotted)
        hit = self.by_dotted.get(name)
        if hit is not None:
            return hit
        suffix = "." + name
        matches = [relpath for dotted, relpath in self.by_dotted.items()
                   if dotted.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def resolve_symbol(self, relpath: str,
                       name: str) -> tuple[str, str, str] | None:
        """``(kind, relpath, qualname)`` for a name in a module.

        Kind is ``"function"``, ``"class"``, or ``"module"`` (the last
        for ``from package import submodule``). Follows one level of
        from-import re-export.
        """
        facts = self.modules.get(relpath)
        if facts is None:
            return None
        if name in facts.functions and "." not in name:
            return ("function", relpath, name)
        if name in facts.classes:
            return ("class", relpath, name)
        submodule = self.by_dotted.get(f"{facts.dotted}.{name}")
        if submodule is not None:
            return ("module", submodule, "")
        via = facts.from_imports.get(name)
        if via is not None:
            source = self.resolve_module(via[0], relpath)
            if source is not None and source != relpath:
                facts_src = self.modules[source]
                if via[1] in facts_src.functions:
                    return ("function", source, via[1])
                if via[1] in facts_src.classes:
                    return ("class", source, via[1])
        return None

    def resolve_class(self, relpath: str,
                      dotted: str) -> tuple[str, str] | None:
        """``(relpath, class name)`` for a dotted class reference."""
        facts = self.modules[relpath]
        parts = dotted.split(".")
        if len(parts) == 1:
            resolved = self.resolve_symbol(relpath, parts[0])
            if resolved is not None and resolved[0] == "class":
                return (resolved[1], resolved[2])
            return None
        # module_alias.ClassName
        target = facts.module_imports.get(parts[0])
        if target is None:
            via = self.resolve_symbol(relpath, parts[0])
            if via is not None and via[0] == "module":
                target_relpath = via[1]
            else:
                return None
        else:
            target_relpath = self.resolve_module(target, relpath)
        if target_relpath is None:
            return None
        if parts[-1] in self.modules[target_relpath].classes:
            return (target_relpath, parts[-1])
        return None

    def resolve_call(self, relpath: str, caller: FunctionFacts,
                     name: str) -> FunctionNode | None:
        """The scanned function a call-site name dispatches to."""
        facts = self.modules[relpath]
        parts = name.split(".")

        def method_node(owner: tuple[str, str],
                        method: str) -> FunctionNode | None:
            owner_relpath, class_name = owner
            qualname = f"{class_name}.{method}"
            if qualname in self.modules[owner_relpath].functions:
                return FunctionNode(owner_relpath, qualname)
            return None

        if len(parts) == 1:
            if parts[0] in facts.functions:
                return FunctionNode(relpath, parts[0])
            resolved = self.resolve_symbol(relpath, parts[0])
            if resolved is None:
                return None
            kind, target, qualname = resolved
            if kind == "function":
                return FunctionNode(target, qualname)
            if kind == "class":  # ClassName(...) -> __init__
                return method_node((target, qualname), "__init__")
            return None

        if parts[0] == "self" and caller.class_name is not None:
            klass = facts.classes.get(caller.class_name)
            if klass is None:
                return None
            if len(parts) == 2:
                return method_node((relpath, caller.class_name), parts[1])
            if len(parts) == 3:
                attr_type = klass.attr_types.get(parts[1])
                if attr_type is None:
                    return None
                owner = self.resolve_class(relpath, attr_type)
                if owner is None:
                    return None
                return method_node(owner, parts[2])
            return None

        if parts[0] in caller.instance_types and len(parts) == 2:
            owner = self.resolve_class(relpath,
                                       caller.instance_types[parts[0]])
            if owner is None:
                return None
            return method_node(owner, parts[1])

        # module_alias.fn / module_alias.Class / module_alias.Class.method
        target = None
        if parts[0] in facts.module_imports:
            target = self.resolve_module(facts.module_imports[parts[0]],
                                         relpath)
        else:
            via = self.resolve_symbol(relpath, parts[0])
            if via is not None and via[0] == "module":
                target = via[1]
            elif via is not None and via[0] == "class" and len(parts) == 2:
                return method_node((via[1], via[2]), parts[1])
        if target is None:
            return None
        target_facts = self.modules[target]
        if len(parts) == 2:
            if parts[1] in target_facts.functions:
                return FunctionNode(target, parts[1])
            if parts[1] in target_facts.classes:
                return method_node((target, parts[1]), "__init__")
        elif len(parts) == 3 and parts[1] in target_facts.classes:
            return method_node((target, parts[1]), parts[2])
        return None

    # -- convenience iterators -----------------------------------------

    def iter_functions(self):
        """(relpath, qualname, FunctionFacts) over every module."""
        for relpath in sorted(self.modules):
            for qualname, fn in self.modules[relpath].functions.items():
                yield relpath, qualname, fn

    def function(self, node: FunctionNode) -> FunctionFacts:
        return self.modules[node.relpath].functions[node.qualname]

    def taint_of_call(self, relpath: str, caller: FunctionFacts,
                      name: str) -> dict[str, list[str]]:
        """Transitive return-taint of the function a call names."""
        node = self.resolve_call(relpath, caller, name)
        if node is None:
            return {}
        return self.return_taint.get(node.key, {})

    def imported_modules(self, relpath: str) -> list[str]:
        """Relpaths of every scanned module this one imports."""
        facts = self.modules[relpath]
        seen: list[str] = []
        names = list(facts.module_imports.values()) \
            + [source for source, _ in facts.from_imports.values()]
        for name in names:
            resolved = self.resolve_module(name, relpath)
            if resolved is not None and resolved != relpath \
                    and resolved not in seen:
                seen.append(resolved)
        return seen


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------

def _build_call_edges(project: ProjectContext) -> None:
    for relpath, qualname, fn in project.iter_functions():
        edges = []
        for call in fn.calls:
            callee = project.resolve_call(relpath, fn, call.name)
            if callee is not None:
                edges.append((call, callee))
        if edges:
            project.call_edges[FunctionNode(relpath, qualname).key] = edges


def _propagate_return_taint(project: ProjectContext) -> None:
    """Fixpoint: a function is tainted when impurity reaches its return
    value locally, or an in-return call dispatches to a tainted one."""
    taint = project.return_taint
    for relpath, qualname, fn in project.iter_functions():
        if fn.return_impurity:
            taint[FunctionNode(relpath, qualname).key] = {
                kind: [f"{qualname} ({kind.replace('_', ' ')})"]
                for kind in fn.return_impurity}
    changed = True
    while changed:
        changed = False
        for relpath, qualname, fn in project.iter_functions():
            node_key = FunctionNode(relpath, qualname).key
            for call, callee in project.call_edges.get(node_key, ()):
                if not call.in_return:
                    continue
                callee_taint = taint.get(callee.key)
                if not callee_taint:
                    continue
                mine = taint.setdefault(node_key, {})
                for kind, chain in callee_taint.items():
                    if kind not in mine:
                        mine[kind] = [qualname] + chain
                        changed = True


def _propagate_frames(project: ProjectContext) -> None:
    """Which functions return frames; which parameters receive them."""
    returns = project.returns_frame
    params = project.frame_params
    for relpath, qualname, fn in project.iter_functions():
        node_key = FunctionNode(relpath, qualname).key
        returns[node_key] = fn.returns_read_frame
        params[node_key] = set()
    changed = True
    while changed:
        changed = False
        for relpath, qualname, fn in project.iter_functions():
            node_key = FunctionNode(relpath, qualname).key
            frame_locals = frame_local_names(project, relpath, fn)
            for call, callee in project.call_edges.get(node_key, ()):
                # Return propagation: returning a frame-returning call.
                if call.in_return and returns.get(callee.key) \
                        and not returns[node_key]:
                    returns[node_key] = True
                    changed = True
                # Parameter propagation: passing a frame-holding name.
                callee_fn = project.function(callee)
                offset = 1 if callee_fn.params[:1] == ["self"] else 0
                for position, arg_name in call.arg_names:
                    if arg_name not in frame_locals:
                        continue
                    index = position + offset
                    if index < len(callee_fn.params):
                        param = callee_fn.params[index]
                        if param not in params[callee.key]:
                            params[callee.key].add(param)
                            changed = True


def frame_local_names(project: ProjectContext, relpath: str,
                      fn: FunctionFacts) -> set:
    """Names holding decoded frames inside one function body."""
    node_key = FunctionNode(
        relpath, fn.qualname).key
    names = set(fn.frame_names)
    names |= project.frame_params.get(node_key, set())
    for local, callee_names in fn.assigned_calls.items():
        for callee_name in callee_names:
            callee = project.resolve_call(relpath, fn, callee_name)
            if callee is not None \
                    and project.returns_frame.get(callee.key):
                names.add(local)
                break
    return names


def build_project(modules: dict[str, ModuleFacts]) -> ProjectContext:
    """Assemble the whole-program view from per-module facts."""
    project = ProjectContext(modules=dict(modules))
    for relpath, facts in modules.items():
        project.by_dotted[facts.dotted] = relpath
    _build_call_edges(project)
    _propagate_return_taint(project)
    _propagate_frames(project)
    return project


# ----------------------------------------------------------------------
# lock graph (consumed by CONC304)
# ----------------------------------------------------------------------

def canonical_lock(facts: ModuleFacts, class_name: str | None,
                   attr: str) -> str:
    """Stable identity for a lock attribute.

    ``Condition(self._lock)`` wraps and therefore *is* ``_lock`` for
    ordering purposes; the alias map collapses the two.
    """
    if class_name is not None:
        klass = facts.classes.get(class_name)
        if klass is not None:
            attr = klass.lock_aliases.get(attr, attr)
    owner = class_name or "<module>"
    return f"{facts.dotted}:{owner}.{attr}"


def transitive_locks(project: ProjectContext, node_key: str,
                     cache: dict, trail: set) -> set:
    """Every canonical lock a function acquires, directly or through
    its callees (cycle-safe via the visiting trail)."""
    if node_key in cache:
        return cache[node_key]
    if node_key in trail:
        return set()
    trail.add(node_key)
    relpath, qualname = node_key.split("::", 1)
    fn = project.modules[relpath].functions[qualname]
    acquired = {canonical_lock(project.modules[relpath], fn.class_name,
                               attr)
                for attr in fn.locks_acquired}
    for _, callee in project.call_edges.get(node_key, ()):
        acquired |= transitive_locks(project, callee.key, cache, trail)
    trail.discard(node_key)
    cache[node_key] = acquired
    return acquired


def build_lock_graph(project: ProjectContext) -> dict[str, dict]:
    """Acquisition-order edges: ``outer lock -> {inner lock: witness}``.

    Edges come from lexical nesting inside one function and from calls
    made while holding a lock into callees that (transitively) acquire
    their own.
    """
    graph: dict[str, dict] = {}
    cache: dict = {}

    def add_edge(outer: str, inner: str, witness: dict) -> None:
        if outer == inner:
            return
        graph.setdefault(outer, {})
        if inner not in graph[outer]:
            graph[outer][inner] = witness

    for relpath, qualname, fn in project.iter_functions():
        facts = project.modules[relpath]
        node_key = FunctionNode(relpath, qualname).key
        for outer_attr, inner_attr in fn.lock_nestings:
            outer = canonical_lock(facts, fn.class_name, outer_attr)
            inner = canonical_lock(facts, fn.class_name, inner_attr)
            site = fn.locks_acquired.get(inner_attr, [])
            witness = {"relpath": relpath, "qualname": qualname,
                       "line": site[0].line if site else fn.lineno,
                       "context": site[0].context if site else ""}
            add_edge(outer, inner, witness)
        for call, callee in project.call_edges.get(node_key, ()):
            if not call.held_locks:
                continue
            inner_locks = transitive_locks(project, callee.key, cache,
                                           set())
            for held_attr in call.held_locks:
                outer = canonical_lock(facts, fn.class_name, held_attr)
                for inner in sorted(inner_locks):
                    add_edge(outer, inner, {
                        "relpath": relpath, "qualname": qualname,
                        "line": call.line, "context": call.context})
    return graph


def find_lock_cycles(graph: dict[str, dict]) -> list[list[str]]:
    """Deterministic elementary cycles in the lock-order graph.

    DFS from each node in sorted order; a cycle is reported once, from
    its lexicographically smallest member, so findings are stable
    across runs.
    """
    cycles: list[list[str]] = []
    seen_keys: set = set()

    def walk(start: str, node: str, path: list[str],
             on_path: set) -> None:
        for succ in sorted(graph.get(node, ())):
            if succ == start:
                cycle = path[:]
                smallest = min(cycle)
                rotated = cycle[cycle.index(smallest):] \
                    + cycle[:cycle.index(smallest)]
                key = tuple(rotated)
                if key not in seen_keys:
                    seen_keys.add(key)
                    cycles.append(rotated)
            elif succ not in on_path and succ > start:
                # Only explore nodes sorting after the start: each
                # cycle is found exactly once, from its smallest node.
                on_path.add(succ)
                walk(start, succ, path + [succ], on_path)
                on_path.discard(succ)

    for start in sorted(graph):
        walk(start, start, [start], {start})
    return cycles
