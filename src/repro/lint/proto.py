"""PROTO pack — wire/codec contract rules.

Frames on the socket and entries in the journal are covered by
digests, so the encode side and the decode side must agree byte for
byte forever. These rules keep codecs honest: every encoder has a
decoder (and vice versa), frame-speaking modules carry a version
constant, and protocol JSON is canonical (sorted keys) so digests are
reproducible from either end.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.asthelpers import call_name, keyword_value
from repro.lint.model import Finding, ModuleContext, rule
from repro.lint.project import ProjectContext, frame_local_names

_TO_JSON = re.compile(r"^(_?)(?P<stem>\w+)_to_json$")
_FROM_JSON = re.compile(r"^(_?)(?P<stem>\w+)_from_json$")


def _module_codec_names(ctx: ModuleContext) -> tuple[set[str], set[str],
                                                     dict[str, ast.AST]]:
    """(encoder stems, decoder stems, defined name → def node).

    Imported codec halves count toward presence — a module may
    legitimately encode with a helper whose decoder lives next to the
    dataclass — but only locally *defined* halves are flagged.
    """
    encoders: set[str] = set()
    decoders: set[str] = set()
    defined: dict[str, ast.AST] = {}
    for node in ctx.tree.body:
        names: list[tuple[str, ast.AST]] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.append((node.name, node))
            defined[node.name] = node
        elif isinstance(node, ast.ImportFrom):
            names.extend((alias.asname or alias.name, node)
                         for alias in node.names)
        for name, _ in names:
            match = _TO_JSON.match(name)
            if match:
                encoders.add(match.group("stem"))
            match = _FROM_JSON.match(name)
            if match:
                decoders.add(match.group("stem"))
    return encoders, decoders, defined


@rule(
    "PROTO401", "PROTO",
    summary="codec function or method without its inverse",
    rationale="a *_to_json without *_from_json (or vice versa) means "
              "one side of the wire/journal format is unreviewed; "
              "every frame and event type needs a matched pair",
)
def proto401_unpaired_codec(ctx: ModuleContext) -> Iterator[Finding]:
    encoders, decoders, defined = _module_codec_names(ctx)
    for name, node in defined.items():
        match = _TO_JSON.match(name)
        if match and match.group("stem") not in decoders:
            yield ctx.finding(
                "PROTO401", node,
                f"{name}() has no matching "
                f"{match.group('stem')}_from_json; name it after its "
                "purpose if it is not a codec")
        match = _FROM_JSON.match(name)
        if match and match.group("stem") not in encoders:
            yield ctx.finding(
                "PROTO401", node,
                f"{name}() has no matching "
                f"{match.group('stem')}_to_json; decoders without "
                "encoders drift from the real wire bytes")
    # Classes: to_json/from_json must come in pairs too.
    for klass in ast.walk(ctx.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        methods = {node.name: node for node in klass.body
                   if isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))}
        if "to_json" in methods and "from_json" not in methods:
            yield ctx.finding(
                "PROTO401", methods["to_json"],
                f"{klass.name}.to_json has no {klass.name}.from_json")
        if "from_json" in methods and "to_json" not in methods:
            yield ctx.finding(
                "PROTO401", methods["from_json"],
                f"{klass.name}.from_json has no {klass.name}.to_json")


@rule(
    "PROTO402", "PROTO",
    summary="frame-speaking module without a protocol version",
    rationale="a module that emits frames but never references a "
              "*_VERSION constant cannot negotiate or reject "
              "mismatched peers; version every wire format",
)
def proto402_missing_version(ctx: ModuleContext) -> Iterator[Finding]:
    frame_calls = [node for node in ast.walk(ctx.tree)
                   if isinstance(node, ast.Call)
                   and call_name(node).split(".")[-1] == "write_frame"]
    if not frame_calls:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name) and node.id.endswith("_VERSION"):
            return
        if isinstance(node, ast.Attribute) \
                and node.attr.endswith("_VERSION"):
            return
    yield ctx.finding(
        "PROTO402", frame_calls[0],
        "module calls write_frame but never references a *_VERSION "
        "constant; peers cannot detect format skew")


# Modules whose json.dumps output feeds digests, frames, or durable
# documents — canonical (sorted-keys) form is mandatory there. The
# binary column codec (colio) frames its own bytes and is excluded.
_CANONICAL_TOKENS = ("distributed", "journal", "daemon", "follower",
                     "checkpoint", "storebase", "cache", "persist")


@rule(
    "PROTO403", "PROTO",
    summary="json.dumps without sort_keys=True in a protocol module",
    rationale="dict insertion order is an implementation detail; "
              "digests and frame payloads must serialize canonically "
              "(sort_keys=True) or byte-equivalence breaks on "
              "refactors that reorder fields",
    path_tokens=_CANONICAL_TOKENS,
    exclude_basenames=("colio",),
)
def proto403_non_canonical_json(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) \
                or call_name(node) != "json.dumps":
            continue
        sort_keys = keyword_value(node, "sort_keys")
        if not (isinstance(sort_keys, ast.Constant)
                and sort_keys.value is True):
            yield ctx.finding(
                "PROTO403", node,
                "json.dumps without sort_keys=True; protocol and "
                "store JSON must be canonical")


@rule(
    "PROTO404", "PROTO",
    summary="frame key written but never read (or read but never "
            "written) across the whole scan",
    rationale="a key one side of the wire emits and no side decodes "
              "is dead payload at best and a silently-dropped field "
              "at worst; only a scan that sees writer and reader "
              "together can tell, one file at a time both look fine",
    scope="project",
)
def proto404_frame_key_skew(
        project: ProjectContext) -> Iterator[Finding]:
    # Every constant key any module ever reads, off any base — the
    # *broad* read set the write-only direction matches against (a
    # frame hop through an intermediate dict must not cause a lie).
    broad_reads: set[str] = set()
    for relpath, _, fn in project.iter_functions():
        for reads in fn.key_reads.values():
            broad_reads.update(read["key"] for read in reads)

    writes: dict[str, list] = {}
    any_dynamic = False
    for relpath in sorted(project.modules):
        facts = project.modules[relpath]
        any_dynamic = any_dynamic or facts.frame_keys_dynamic
        for key, sites in facts.frame_keys_written.items():
            for site in sites:
                writes.setdefault(key, []).append((relpath, site))

    for key in sorted(writes):
        if key in broad_reads:
            continue
        relpath, site = writes[key][0]
        yield Finding(
            rule="PROTO404", path=relpath, line=site["line"],
            col=site["col"], context=site["context"],
            message=(f"frame key {key!r} is written here but no "
                     "scanned module ever reads it; dead payload or "
                     "a decoder that silently drops the field"))

    # Read-only direction uses the *strict* frame dataflow (names
    # assigned from read_frame, propagated through params and
    # returns) so plain dict lookups don't drown it — and it stands
    # down entirely when any frame write uses ** expansion, because
    # then the written-key universe is open.
    if not any_dynamic:
        for relpath, _, fn in project.iter_functions():
            frame_bases = frame_local_names(project, relpath, fn)
            for base, reads in fn.key_reads.items():
                if base not in frame_bases:
                    continue
                for read in reads:
                    if read["key"] in writes:
                        continue
                    yield Finding(
                        rule="PROTO404", path=relpath,
                        line=read["line"], col=read["col"],
                        context=read["context"],
                        message=(f"frame key {read['key']!r} is read "
                                 "from a decoded frame but no scanned "
                                 "module ever writes it; the lookup "
                                 "can only miss"))

    # Reader-side version check: PROTO402 already polices writers
    # file-locally; a *decoder* module is fine as long as it or a
    # module it imports carries the version constant.
    for relpath in sorted(project.modules):
        facts = project.modules[relpath]
        if not facts.has_read_frame or facts.references_version:
            continue
        if any(project.modules[imported].references_version
               for imported in project.imported_modules(relpath)):
            continue
        reads = [(fn.qualname, read)
                 for fn in facts.functions.values()
                 for base, key_reads in sorted(fn.key_reads.items())
                 if base in frame_local_names(
                     project, relpath, fn)
                 for read in key_reads]
        if not reads:
            continue
        _, first = min(reads, key=lambda pair: (pair[1]["line"],
                                                pair[1]["col"]))
        yield Finding(
            rule="PROTO404", path=relpath, line=first["line"],
            col=first["col"], context=first["context"],
            message=("module decodes frames but neither it nor any "
                     "module it imports references a *_VERSION "
                     "constant; the reader cannot detect format "
                     "skew"))
