"""Scan driver: parse, run module rules, join the project pass,
apply suppressions, report the dead ones.

The engine never imports the code it scans — everything is ``ast``
over source text, so fixture files full of deliberate violations are
safe to keep in the tree and scanning is immune to import-time side
effects.

A scan now has two phases. Phase 1 visits each file once: parse, run
the module-scoped rules, and distill the tree into AST-free
:class:`~repro.lint.facts.ModuleFacts`. Phase 2 builds the
:class:`~repro.lint.project.ProjectContext` over all facts and runs
the project-scoped rules (FLOW/PROTO404/CONC303/CONC304), whose
findings land back in individual modules and obey the same path
scoping and suppressions as everything else.

Because phase 1's output is plain data, two engine features fall out:
``--jobs N`` parses in worker processes, and a fact cache keyed by
source digest lets a warm re-scan skip parsing (and module rules) for
every unchanged file — the project pass then runs over a mix of
cached and fresh facts.

Suppressions come in two shapes, both comment-anchored so they travel
with the code they excuse:

- ``# repro-lint: disable=DET102`` on the flagged line silences the
  named rule(s) for that line only;
- ``# repro-lint: disable-file=DET102,DUR201`` anywhere in the file
  silences them for the whole module.

Multiple rule IDs are comma-separated. Unknown IDs are tolerated in
the sense that they never *error* — but a suppression that matches no
finding (unknown rule or not) is itself a finding now: LINT001, and
``--fix-suppressions`` deletes it.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.facts import (ModuleFacts, extract_facts, facts_from_json,
                              facts_to_json)
from repro.lint.model import Finding, ModuleContext, RULES, rule
from repro.lint.project import build_project

__all__ = ["scan_paths", "scan_file", "iter_python_files", "run_scan",
           "ScanResult", "ModuleScan", "Suppression", "fix_suppressions"]

# Rule id reserved for files the engine itself cannot parse.
SYNTAX_RULE = "LINT000"

_INLINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")
_FILEWIDE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9_,\s]+)")


@rule(
    "LINT001", "LINT",
    summary="suppression comment that silences nothing",
    rationale="a dead `# repro-lint: disable=` outlives the code it "
              "excused and will swallow the next real finding on its "
              "line; the engine tracks which suppressions matched "
              "this scan and reports the rest (`--fix-suppressions` "
              "deletes them)",
)
def lint001_unused_suppression(ctx: ModuleContext):
    # The engine emits LINT001 itself — only it knows which
    # suppressions matched; this registration carries the catalog row.
    return ()


def _split_ids(blob: str) -> list[str]:
    seen: list[str] = []
    for part in blob.split(","):
        part = part.strip()
        if part and part not in seen:
            seen.append(part)
    return seen


@dataclass(frozen=True)
class Suppression:
    """One rule id named by one suppression comment."""

    line: int  # the comment's line, even for file-wide directives
    rule: str
    filewide: bool
    context: str  # the stripped source line holding the comment

    def to_json(self) -> dict:
        return {"line": self.line, "rule": self.rule,
                "filewide": self.filewide, "context": self.context}

    @classmethod
    def from_json(cls, data: dict) -> "Suppression":
        return cls(line=int(data["line"]), rule=data["rule"],
                   filewide=bool(data["filewide"]),
                   context=data.get("context", ""))


def _suppression_records(source: str,
                         lines: Sequence[str]) -> list[Suppression]:
    """Directives found in actual COMMENT tokens.

    Tokenizing (rather than regexing raw lines) keeps a docstring that
    *describes* the suppression syntax from counting as a suppression
    — which LINT001 would then report as dead forever.
    """
    records: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return records
    for token in tokens:
        if token.type != tokenize.COMMENT \
                or "repro-lint" not in token.string:
            continue
        lineno = token.start[0]
        context = lines[lineno - 1].strip() if lineno <= len(lines) \
            else token.string
        for match in _FILEWIDE.finditer(token.string):
            records.extend(
                Suppression(line=lineno, rule=rid, filewide=True,
                            context=context)
                for rid in _split_ids(match.group(1)))
        for match in _INLINE.finditer(token.string):
            records.extend(
                Suppression(line=lineno, rule=rid, filewide=False,
                            context=context)
                for rid in _split_ids(match.group(1)))
    return records


@dataclass
class ModuleScan:
    """Phase-1 output for one file: raw findings, facts, suppressions.

    ``findings`` are *pre-suppression* — suppression matching happens
    at assembly, after the project pass, so the engine can tell which
    suppressions earned their keep.
    """

    path: str  # absolute posix path (the fixer writes here)
    relpath: str
    digest: str
    findings: list[Finding]
    suppressions: list[Suppression]
    facts: ModuleFacts | None  # None when the file does not parse

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "relpath": self.relpath,
            "digest": self.digest,
            "findings": [f.to_json() for f in self.findings],
            "suppressions": [s.to_json() for s in self.suppressions],
            "facts": facts_to_json(self.facts)
                if self.facts is not None else None,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ModuleScan":
        return cls(
            path=data["path"],
            relpath=data["relpath"],
            digest=data["digest"],
            findings=[Finding.from_json(f) for f in data["findings"]],
            suppressions=[Suppression.from_json(s)
                          for s in data["suppressions"]],
            facts=facts_from_json(data["facts"])
                if data["facts"] is not None else None,
        )


@dataclass
class ScanResult:
    """Everything a scan learned, beyond the findings themselves."""

    findings: list[Finding]
    # absolute path -> suppressions that matched nothing there.
    unused_suppressions: dict[str, list[Suppression]]
    scanned_modules: int  # parsed this run
    cached_modules: int  # reused from the fact cache


def _relpath(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _scan_module(path: Path, relpath: str, source: str,
                 digest: str) -> ModuleScan:
    """Phase 1 for one file: parse, module rules, facts."""
    lines = source.splitlines()
    abspath = path.resolve().as_posix()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return ModuleScan(
            path=abspath, relpath=relpath, digest=digest,
            findings=[Finding(rule=SYNTAX_RULE, path=relpath,
                              line=error.lineno or 1,
                              col=error.offset or 0,
                              message=f"file does not parse: {error.msg}",
                              context="")],
            suppressions=[], facts=None)
    ctx = ModuleContext(path=path, relpath=relpath, source=source,
                        tree=tree, lines=lines)
    findings: list[Finding] = []
    for registered in RULES.values():
        if registered.scope != "module" or not registered.applies_to(ctx):
            continue
        findings.extend(registered.check(ctx))
    return ModuleScan(
        path=abspath, relpath=relpath, digest=digest,
        findings=findings,
        suppressions=_suppression_records(source, lines),
        facts=extract_facts(ctx))


def _scan_worker(payload: tuple[str, str]) -> dict:
    """Process-pool entry point: scan one file, return plain JSON."""
    path_str, relpath = payload
    path = Path(path_str)
    source = path.read_text(encoding="utf-8")
    return _scan_module(path, relpath, source,
                        source_digest(source)).to_json()


def _project_findings(scans: Sequence[ModuleScan]) -> list[Finding]:
    """Phase 2: the project pass over every module that parsed."""
    facts = {scan.relpath: scan.facts for scan in scans
             if scan.facts is not None}
    if not facts:
        return []
    project = build_project(facts)
    findings: list[Finding] = []
    for registered in RULES.values():
        if registered.scope != "project":
            continue
        findings.extend(
            found for found in registered.check(project)
            if registered.applies_to_path(found.path))
    return findings


def _apply_suppressions(
    scan: ModuleScan, raw: list[Finding],
) -> tuple[list[Finding], list[Suppression]]:
    """(surviving findings incl. LINT001, unused suppressions)."""
    filewide: dict[str, list[Suppression]] = {}
    inline: dict[tuple[int, str], list[Suppression]] = {}
    for record in scan.suppressions:
        if record.filewide:
            filewide.setdefault(record.rule, []).append(record)
        else:
            inline.setdefault((record.line, record.rule),
                              []).append(record)
    used: set[Suppression] = set()
    kept: list[Finding] = []
    for finding in raw:
        if finding.rule in filewide:
            used.update(filewide[finding.rule])
            continue
        matches = inline.get((finding.line, finding.rule))
        if matches:
            used.update(matches)
            continue
        kept.append(finding)
    # Dead suppressions become LINT001 findings — themselves
    # suppressible, and a suppression that suppresses a LINT001 counts
    # as used (so `disable=LINT001` never reports itself).
    lint001_filewide = filewide.get("LINT001", [])
    unused: list[Suppression] = []
    for record in scan.suppressions:
        if record in used or record.rule == "LINT001":
            continue
        if lint001_filewide:
            used.update(lint001_filewide)
            continue
        shields = inline.get((record.line, "LINT001"))
        if shields:
            # Explicitly acknowledged dead suppression: not reported,
            # and the fixer leaves it alone.
            used.update(shields)
            continue
        unused.append(record)
        where = "file-wide suppression" if record.filewide \
            else "suppression"
        kept.append(Finding(
            rule="LINT001", path=scan.relpath, line=record.line, col=0,
            message=f"{where} of {record.rule} matches no finding; "
                    "delete it (or run lint --fix-suppressions)",
            context=record.context))
    return kept, unused


def _assemble(scans: Sequence[ModuleScan],
              project: bool = True) -> ScanResult:
    raw_by_module: dict[str, list[Finding]] = {
        scan.relpath: list(scan.findings) for scan in scans}
    if project:
        for finding in _project_findings(scans):
            raw_by_module.setdefault(finding.path, []).append(finding)
    findings: list[Finding] = []
    unused_suppressions: dict[str, list[Suppression]] = {}
    for scan in scans:
        kept, unused = _apply_suppressions(
            scan, sorted(raw_by_module.get(scan.relpath, []),
                         key=Finding.sort_key))
        findings.extend(kept)
        if unused:
            unused_suppressions[scan.path] = unused
    findings.sort(key=Finding.sort_key)
    return ScanResult(findings=findings,
                      unused_suppressions=unused_suppressions,
                      scanned_modules=0, cached_modules=0)


def iter_python_files(targets: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for target in targets:
        if target.is_dir():
            seen.update(p for p in target.rglob("*.py")
                        if "__pycache__" not in p.parts)
        elif target.suffix == ".py":
            seen.add(target)
        else:
            raise FileNotFoundError(f"not a python file or directory: {target}")
    return sorted(seen, key=lambda p: p.as_posix())


def run_scan(targets: Iterable[str | Path],
             root: Path | None = None,
             *,
             project: bool = True,
             jobs: int = 1,
             cache_path: Path | None = None) -> ScanResult:
    """The full two-phase scan with caching and parallel parsing.

    ``root`` (default: the current directory) anchors the relative
    paths recorded in findings, keeping baselines machine-portable.
    ``cache_path`` names the fact-cache file; unchanged modules (by
    source digest) skip phase 1 entirely. ``jobs`` > 1 parses cold
    modules in worker processes.
    """
    if root is None:
        root = Path.cwd()
    files = iter_python_files(Path(t) for t in targets)

    cache = None
    if cache_path is not None:
        from repro.lint.cache import FactCache
        cache = FactCache(cache_path)

    scans: dict[str, ModuleScan] = {}
    cold: list[tuple[Path, str, str, str]] = []
    cached = 0
    for path in files:
        relpath = _relpath(path, root)
        source = path.read_text(encoding="utf-8")
        digest = source_digest(source)
        hit = cache.get(relpath, digest) if cache is not None else None
        if hit is not None:
            scans[relpath] = ModuleScan.from_json(hit)
            cached += 1
        else:
            cold.append((path, relpath, source, digest))

    if jobs > 1 and len(cold) > 1:
        payloads = [(str(path), relpath) for path, relpath, _, _ in cold]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for data in pool.map(_scan_worker, payloads):
                scans[data["relpath"]] = ModuleScan.from_json(data)
    else:
        for path, relpath, source, digest in cold:
            scans[relpath] = _scan_module(path, relpath, source, digest)

    if cache is not None:
        for _, relpath, _, _ in cold:
            scan = scans[relpath]
            cache.put(relpath, scan.digest, scan.to_json())
        cache.save()

    ordered = [scans[relpath] for relpath in sorted(scans)]
    result = _assemble(ordered, project=project)
    result.scanned_modules = len(cold)
    result.cached_modules = cached
    return result


def scan_paths(targets: Iterable[str | Path],
               root: Path | None = None,
               *,
               project: bool = True,
               jobs: int = 1,
               cache_path: Path | None = None) -> list[Finding]:
    """Scan files and directory trees; findings come back path-sorted."""
    return run_scan(targets, root, project=project, jobs=jobs,
                    cache_path=cache_path).findings


def scan_file(path: Path, root: Path | None = None) -> list[Finding]:
    """Run every applicable rule over one module.

    The project pass runs too, with a one-module project — so the
    class-level CONC rules and frame-key analysis still work on a
    single file, they just cannot see across it.
    """
    return scan_paths([path], root=root)


# ----------------------------------------------------------------------
# the suppression fixer
# ----------------------------------------------------------------------

def _rewrite_directive(line: str, dead: set[str],
                       pattern: re.Pattern, prefix: str) -> str:
    def replace(match: re.Match) -> str:
        kept = [rid for rid in _split_ids(match.group(1))
                if rid not in dead]
        if kept:
            return f"# repro-lint: {prefix}={','.join(kept)}"
        return ""

    return pattern.sub(replace, line)


def fix_suppressions(
        unused: dict[str, list[Suppression]]) -> list[str]:
    """Delete dead suppressions in place; returns rewritten paths.

    A directive naming several rules keeps its live ids; one whose ids
    are all dead vanishes, and a line left holding only whitespace
    goes with it.
    """
    rewritten: list[str] = []
    for path_str in sorted(unused):
        dead_inline: dict[int, set] = {}
        dead_filewide: dict[int, set] = {}
        for record in unused[path_str]:
            bucket = dead_filewide if record.filewide else dead_inline
            bucket.setdefault(record.line, set()).add(record.rule)
        path = Path(path_str)
        lines = path.read_text(encoding="utf-8").split("\n")
        out: list[str] = []
        for lineno, line in enumerate(lines, start=1):
            before = line
            if lineno in dead_inline:
                line = _rewrite_directive(line, dead_inline[lineno],
                                          _INLINE, "disable")
            if lineno in dead_filewide:
                line = _rewrite_directive(line, dead_filewide[lineno],
                                          _FILEWIDE, "disable-file")
            if line != before:
                line = line.rstrip()
                if not line:
                    continue  # the directive was the whole line
            out.append(line)
        path.write_text("\n".join(out), encoding="utf-8")
        rewritten.append(path_str)
    return rewritten
