"""Scan driver: walk paths, parse modules, run rules, apply suppressions.

The engine never imports the code it scans — everything is ``ast``
over source text, so fixture files full of deliberate violations are
safe to keep in the tree and scanning is immune to import-time side
effects.

Suppressions come in two shapes, both comment-anchored so they travel
with the code they excuse:

- ``# repro-lint: disable=DET102`` on the flagged line silences the
  named rule(s) for that line only;
- ``# repro-lint: disable-file=DET102,DUR201`` anywhere in the file
  silences them for the whole module.

Multiple rule IDs are comma-separated. Unknown IDs are tolerated (a
suppression must not start failing when the rule it names is retired).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.model import Finding, ModuleContext, RULES

__all__ = ["scan_paths", "scan_file", "iter_python_files"]

# Rule id reserved for files the engine itself cannot parse.
SYNTAX_RULE = "LINT000"

_INLINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9_,\s]+)")
_FILEWIDE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9_,\s]+)")


def _split_ids(blob: str) -> set[str]:
    return {part.strip() for part in blob.split(",") if part.strip()}


def _suppressions(lines: Sequence[str]) -> tuple[set[str], dict[int, set[str]]]:
    """Return (file-wide rule ids, per-line rule ids keyed by lineno)."""
    filewide: set[str] = set()
    per_line: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        if "repro-lint" not in line:
            continue
        for match in _FILEWIDE.finditer(line):
            filewide |= _split_ids(match.group(1))
        for match in _INLINE.finditer(line):
            per_line.setdefault(lineno, set()).update(
                _split_ids(match.group(1)))
    return filewide, per_line


def _relpath(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def scan_file(path: Path, root: Path | None = None) -> list[Finding]:
    """Run every applicable rule over one module."""
    relpath = _relpath(path, root)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return [Finding(rule=SYNTAX_RULE, path=relpath,
                        line=error.lineno or 1, col=error.offset or 0,
                        message=f"file does not parse: {error.msg}",
                        context="")]
    ctx = ModuleContext(path=path, relpath=relpath, source=source,
                        tree=tree, lines=lines)
    filewide, per_line = _suppressions(lines)
    findings: list[Finding] = []
    for registered in RULES.values():
        if registered.id in filewide or not registered.applies_to(ctx):
            continue
        for found in registered.check(ctx):
            if found.rule in per_line.get(found.line, ()):  # inline
                continue
            findings.append(found)
    findings.sort(key=Finding.sort_key)
    return findings


def iter_python_files(targets: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for target in targets:
        if target.is_dir():
            seen.update(p for p in target.rglob("*.py")
                        if "__pycache__" not in p.parts)
        elif target.suffix == ".py":
            seen.add(target)
        else:
            raise FileNotFoundError(f"not a python file or directory: {target}")
    return sorted(seen, key=lambda p: p.as_posix())


def scan_paths(targets: Iterable[str | Path],
               root: Path | None = None) -> list[Finding]:
    """Scan files and directory trees; findings come back path-sorted.

    ``root`` (default: the current directory) anchors the relative
    paths recorded in findings, keeping baselines machine-portable.
    """
    if root is None:
        root = Path.cwd()
    files = iter_python_files(Path(t) for t in targets)
    findings: list[Finding] = []
    for path in files:
        findings.extend(scan_file(path, root=root))
    return findings
