"""DET pack — determinism rules.

The byte-equivalence contract demands that every backend, every
resume, and every re-run of the same campaign produce bit-identical
logbooks and digests. These rules flag the three classic ways Python
programs silently break that: ambient randomness, hash-randomized
iteration order, and wall-clock reads leaking into outputs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import call_name, is_unordered
from repro.lint.model import Finding, ModuleContext, rule

# random-module functions that consume the hidden global RNG. Calling
# any of these makes output depend on interpreter-wide state no seed
# in our code controls.
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "random_sample",
})
# numpy.random legacy global-state functions (np.random.<fn>). The
# seedable object API (default_rng / Generator / SeedSequence /
# Random) is handled separately.
_NP_OBJECT_API = frozenset({"default_rng", "Generator", "SeedSequence",
                            "RandomState", "bit_generator"})


@rule(
    "DET101", "DET",
    summary="unseeded or global-state RNG",
    rationale="an RNG without an explicit digest-derived seed makes "
              "every sampled world unreproducible across runs and "
              "backends",
)
def det101_unseeded_rng(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if not name:
            continue
        parts = name.split(".")
        # random.Random() / np.random.default_rng() with no seed.
        if parts[-1] in ("Random", "default_rng", "RandomState") \
                and not node.args and not node.keywords:
            yield ctx.finding(
                "DET101", node,
                f"{name}() constructed without a seed; derive one from "
                "a content digest instead")
        # random.shuffle(...) etc: the module-level global RNG.
        elif (len(parts) == 2 and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_FNS):
            yield ctx.finding(
                "DET101", node,
                f"{name}() uses the process-global RNG; use a seeded "
                "random.Random instance")
        # np.random.rand(...) etc: numpy's legacy global state.
        elif (len(parts) >= 3 and parts[-2] == "random"
                and parts[0] in ("np", "numpy")
                and parts[-1] not in _NP_OBJECT_API):
            yield ctx.finding(
                "DET101", node,
                f"{name}() uses numpy's legacy global RNG; use a "
                "seeded np.random.default_rng(seed)")


# Consumers that materialize their operand *in iteration order*:
# feeding them a set bakes PYTHONHASHSEED into the output.
_ORDER_SENSITIVE_CALLEES = frozenset({"list", "tuple", "enumerate"})


def _iter_order_sinks(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.expr]]:
    """Yield (report node, iterated expr) pairs where order escapes."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                yield node, comp.iter
        elif isinstance(node, ast.Call):
            callee = node.func
            if (isinstance(callee, ast.Name)
                    and callee.id in _ORDER_SENSITIVE_CALLEES
                    and node.args):
                yield node, node.args[0]
            elif (isinstance(callee, ast.Attribute)
                    and callee.attr == "join" and node.args):
                yield node, node.args[0]


@rule(
    "DET102", "DET",
    summary="iteration over a set or set expression",
    rationale="set iteration order depends on PYTHONHASHSEED, so any "
              "ordered output derived from it differs run to run; "
              "wrap the set in sorted(...)",
)
def det102_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    for report_node, iterated in _iter_order_sinks(ctx.tree):
        if is_unordered(iterated):
            yield ctx.finding(
                "DET102", report_node,
                "iterating a set expression in an order-sensitive "
                "position; use sorted(...) to fix the order")


_WALL_CLOCK = {
    ("time", "time"): "time.time()",
    ("time", "time_ns"): "time.time_ns()",
    ("datetime", "now"): "datetime.now()",
    ("datetime", "utcnow"): "datetime.utcnow()",
    ("date", "today"): "date.today()",
}


@rule(
    "DET103", "DET",
    summary="wall-clock read outside allowlisted modules",
    rationale="timestamps flowing into logbooks or digests make "
              "byte-equivalence across runs impossible; only pacing/"
              "timeout/eviction code (monotonic clocks, atomicio's "
              "stale-tmp sweep) may consult the clock",
    exclude_basenames=("atomicio",),
    # The observability sidecar timestamps its published trace files;
    # those bytes never reach a logbook, journal, or digest.
    exclude_path_tokens=("obs/",),
)
def det103_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        parts = name.split(".")
        if len(parts) < 2:
            continue
        spelled = _WALL_CLOCK.get((parts[-2], parts[-1]))
        if spelled is not None:
            yield ctx.finding(
                "DET103", node,
                f"{spelled} reads the wall clock; use time.monotonic() "
                "for pacing or pass timestamps in explicitly")


@rule(
    "DET104", "DET",
    summary="float sum over an unordered operand in analysis code",
    rationale="float addition is not associative, so summing a set "
              "(or anything hash-ordered) changes low-order bits with "
              "PYTHONHASHSEED; sum sorted or ordered sequences only",
    path_tokens=("analysis",),
)
def det104_unordered_float_sum(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum" and node.args):
            continue
        operand = node.args[0]
        hazardous = is_unordered(operand)
        if isinstance(operand, ast.GeneratorExp):
            hazardous = any(is_unordered(comp.iter)
                            for comp in operand.generators)
        if hazardous:
            yield ctx.finding(
                "DET104", node,
                "sum() over an unordered operand: float summation "
                "order is part of the byte contract; sort first")
