"""repro.lint — the determinism & durability static analyzer.

Statically enforces the byte-equivalence contract the equivalence and
chaos harnesses check dynamically: no ambient randomness, no
hash-ordered iteration into ordered outputs, no wall-clock leaks, no
non-atomic writes in durable stores, no unjoinable threads, and
matched, versioned, canonical codecs.

The scan runs in two phases: module rules over each file, then the
whole-program pass — taint propagated along the call graph (FLOW),
frame keys matched writer-against-reader across modules (PROTO404),
class-level lock discipline and lock-order cycles (CONC303/304).

Usage::

    PYTHONPATH=src python -m repro lint [--format text|json|sarif]
        [--baseline lint.baseline.json] [--jobs N] [--cache PATH]
        [--fix-suppressions] [--no-project] [paths...]

Suppress one site with ``# repro-lint: disable=RULE`` on the flagged
line, or a whole file with ``# repro-lint: disable-file=RULE``; a
suppression that matches nothing is itself reported (LINT001).
"""

from repro.lint.model import Finding, Rule, RULES, rules_by_pack
from repro.lint.engine import (ModuleScan, ScanResult, Suppression,
                               fix_suppressions, run_scan, scan_file,
                               scan_paths)
from repro.lint.baseline import (apply_baseline, load_baseline,
                                 write_baseline)
from repro.lint.report import (render_json, render_rule_catalog,
                               render_sarif, render_text)

# Importing the packs registers their rules.
from repro.lint import conc, det, dur, flow, obs, proto  # noqa: F401  (registration)

__all__ = [
    "Finding", "Rule", "RULES", "rules_by_pack",
    "ModuleScan", "ScanResult", "Suppression",
    "scan_paths", "scan_file", "run_scan", "fix_suppressions",
    "apply_baseline", "load_baseline", "write_baseline",
    "render_json", "render_rule_catalog", "render_sarif", "render_text",
]
