"""repro.lint — the determinism & durability static analyzer.

Statically enforces the byte-equivalence contract the equivalence and
chaos harnesses check dynamically: no ambient randomness, no
hash-ordered iteration into ordered outputs, no wall-clock leaks, no
non-atomic writes in durable stores, no unjoinable threads, and
matched, versioned, canonical codecs.

Usage::

    PYTHONPATH=src python -m repro lint [--format text|json]
        [--baseline lint.baseline.json] [paths...]

Suppress one site with ``# repro-lint: disable=RULE`` on the flagged
line, or a whole file with ``# repro-lint: disable-file=RULE``.
"""

from repro.lint.model import Finding, Rule, RULES, rules_by_pack
from repro.lint.engine import scan_paths, scan_file
from repro.lint.baseline import (apply_baseline, load_baseline,
                                 write_baseline)
from repro.lint.report import (render_json, render_rule_catalog,
                               render_text)

# Importing the packs registers their rules.
from repro.lint import conc, det, dur, obs, proto  # noqa: F401  (registration)

__all__ = [
    "Finding", "Rule", "RULES", "rules_by_pack",
    "scan_paths", "scan_file",
    "apply_baseline", "load_baseline", "write_baseline",
    "render_json", "render_rule_catalog", "render_text",
]
