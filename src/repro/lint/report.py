"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.model import Finding, rules_by_pack

__all__ = ["render_text", "render_json", "render_rule_catalog"]


def render_text(findings: Sequence[Finding],
                baselined: int = 0) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        + (f"\n    {f.context}" if f.context else "")
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    summary = f"{len(findings)} {noun}"
    if baselined:
        summary += f" ({baselined} baselined, not shown)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    payload = {
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The rule table for ``--list-rules`` (and the README)."""
    lines = []
    for pack, rules in rules_by_pack().items():
        lines.append(f"{pack}:")
        for registered in rules:
            lines.append(f"  {registered.id}  {registered.summary}")
            lines.append(f"      {registered.rationale}")
    return "\n".join(lines)
