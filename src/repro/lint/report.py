"""Finding reporters: human text, machine JSON, and SARIF for CI."""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.model import Finding, RULES, rules_by_pack

__all__ = ["render_text", "render_json", "render_sarif",
           "render_rule_catalog"]


def render_text(findings: Sequence[Finding],
                baselined: int = 0) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        + (f"\n    {f.context}" if f.context else "")
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    summary = f"{len(findings)} {noun}"
    if baselined:
        summary += f" ({baselined} baselined, not shown)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], baselined: int = 0) -> str:
    payload = {
        "findings": [f.to_json() for f in findings],
        "count": len(findings),
        "baselined": baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: Sequence[Finding], baselined: int = 0) -> str:
    """SARIF 2.1.0 — the format CI annotation surfaces ingest.

    The driver advertises every registered rule (plus LINT000, the
    engine's own parse-failure id) so viewers can show summaries and
    rationales next to each result.
    """
    rule_ids = list(RULES)
    for finding in findings:
        if finding.rule not in rule_ids:
            rule_ids.append(finding.rule)
    rules = []
    for rule_id in rule_ids:
        registered = RULES.get(rule_id)
        rules.append({
            "id": rule_id,
            "shortDescription": {
                "text": registered.summary if registered
                else "file does not parse"},
            "fullDescription": {
                "text": registered.rationale if registered
                else "the engine could not build an AST for this file"},
        })
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(f.line, 1),
                               "startColumn": f.col + 1},
                },
            }],
        }
        for f in findings
    ]
    payload = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro-lint",
                "rules": rules,
            }},
            "results": results,
            "properties": {"baselined": baselined},
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """The rule table for ``--list-rules`` (and the README)."""
    lines = []
    for pack, rules in rules_by_pack().items():
        lines.append(f"{pack}:")
        for registered in rules:
            lines.append(f"  {registered.id}  {registered.summary}")
            lines.append(f"      {registered.rationale}")
    return "\n".join(lines)
