"""OBS pack — observability-contract rules.

The tracing layer (:mod:`repro.obs.trace`) hands out spans as context
managers: a span's record is only emitted when its ``with`` block
exits, and the per-thread span stack only pops there. These rules
keep instrumentation honest — a span that is constructed but never
entered silently drops its timing *and* corrupts nothing, which is
exactly why it would survive review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import call_name
from repro.lint.model import Finding, ModuleContext, rule


def _with_managed_calls(tree: ast.Module) -> set[int]:
    """Identities of every Call node used as a ``with`` context."""
    managed: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.context_expr, ast.Call):
                    managed.add(id(item.context_expr))
    return managed


@rule(
    "OBS501", "OBS",
    summary="span constructed outside a with statement",
    rationale="a span context manager that is never entered never "
              "closes: its record is silently dropped and the "
              "thread-local span stack no longer matches the code — "
              "always write `with span(...)`",
    # trace.py is the defining module: its convenience wrappers
    # construct and return spans for callers to enter.
    exclude_basenames=("trace",),
)
def obs501_unentered_span(ctx: ModuleContext) -> Iterator[Finding]:
    managed = _with_managed_calls(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or id(node) in managed:
            continue
        name = call_name(node)
        if not name or name.split(".")[-1] != "span":
            continue
        yield ctx.finding(
            "OBS501", node,
            f"{name}(...) builds a span context manager but never "
            "enters it; wrap the call in a `with` statement")
