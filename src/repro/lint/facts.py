"""Per-module facts: the unit the whole-program pass is built from.

Phase 1 of the analyzer distills every parsed module into a
:class:`ModuleFacts` value — imports, per-function call sites and
impurity sites, per-class attribute-access maps, frame-key literals —
that is **AST-free and JSON-serializable**. That one design decision
buys three engine features at once:

* the project pass (:mod:`repro.lint.project`) consumes facts, never
  trees, so cross-module reasoning works over a flat data model;
* the fact cache keys ``{relpath: (source digest, facts, findings)}``
  and a warm re-scan of an unchanged file skips parse *and* rules;
* ``--jobs N`` can parse in worker processes and ship facts back as
  plain dicts.

Locality rule: everything here is inferred from one module in one
pass. Anything that needs another module's facts (resolving an import,
propagating taint along the call graph, matching a frame key to its
reader) belongs in :mod:`repro.lint.project`.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass, field

from repro.lint.asthelpers import dotted_name, is_unordered
from repro.lint.model import ModuleContext

__all__ = [
    "CallSite", "SiteList", "FunctionFacts", "AttributeWrite",
    "ClassFacts", "ModuleFacts", "extract_facts",
    "facts_to_json", "facts_from_json",
    "WALL_CLOCK_CALLS", "UNSEEDED_RNG_SUFFIXES", "ENV_READ_CALLS",
    "LOCK_TYPES",
]

# (penultimate, final) dotted-name parts that read the wall clock —
# shared vocabulary with DET103.
WALL_CLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("date", "today"),
})

# Call-name suffixes that consume ambient/unseeded randomness when the
# call has no arguments — shared vocabulary with DET101.
UNSEEDED_RNG_SUFFIXES = frozenset({"Random", "default_rng", "RandomState"})
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "getrandbits",
})

# Process-environment reads: ambient configuration leaking into
# output makes a run unreproducible on another host.
ENV_READ_CALLS = frozenset({("os", "getenv"), ("environ", "get")})

# threading constructors whose instances guard critical sections. A
# Condition *wraps* a lock, so ``Condition(self._lock)`` aliases it.
LOCK_TYPES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                        "BoundedSemaphore"})

# Impurity kinds a function can exhibit (and propagate).
IMPURITY_KINDS = ("wall_clock", "unseeded_rng", "env_read",
                  "set_iteration")


@dataclass
class SiteList:
    """One source position a fact anchors to."""

    line: int
    col: int
    context: str


@dataclass
class CallSite:
    """One call expression inside a function body.

    ``name`` is the dotted callee (``"helper"``, ``"self._run"``,
    ``"mod.fn"``); computed callees are absent (the resolver cannot do
    anything with them). ``in_return`` marks calls whose result feeds a
    ``return`` expression — value taint travels through those.
    ``arg_names``: for each positional argument that is a plain local
    name, its (position, name) — the frame-dict propagation follows
    these. ``arg_names_all`` / ``arg_calls``: every name and every
    dotted callee appearing anywhere inside the argument expressions —
    the FLOW sink rules match taint against these. ``held_locks``:
    self-attribute lock names held lexically at the call site.
    """

    name: str
    line: int
    col: int
    context: str
    in_return: bool = False
    arg_names: list[list] = field(default_factory=list)
    arg_names_all: list[str] = field(default_factory=list)
    arg_calls: list[str] = field(default_factory=list)
    held_locks: list[str] = field(default_factory=list)


@dataclass
class FunctionFacts:
    """Locally-inferred facts about one function or method."""

    qualname: str  # "fn" or "Class.method"
    class_name: str | None
    lineno: int
    params: list[str]
    calls: list[CallSite]
    # kind -> sites where the impurity occurs anywhere in the body.
    impurity_sites: dict[str, list[SiteList]]
    # Impurity kinds occurring in return-feeding expressions (the
    # value-taint base case for FLOW propagation).
    return_impurity: list[str]
    # lock attr -> acquisition sites; ``with self.<attr>`` where the
    # attr is a known lock (typed in __init__ or named like one).
    locks_acquired: dict[str, list[SiteList]]
    # (outer lock, inner lock) pairs from lexically nested ``with``s.
    lock_nestings: list[list]
    # base name -> key sites for ``base.get("k")`` / ``base["k"]``.
    key_reads: dict[str, list[dict]]
    # Local names assigned from ``read_frame(...)``.
    frame_names: list[str]
    # local name -> dotted callee names ever assigned to it; the FLOW
    # rules look these up when a sink argument is a plain name.
    assigned_calls: dict[str, list[str]]
    # True when a return expression contains a read_frame(...) call.
    returns_read_frame: bool
    # local var -> dotted constructor name (``client = ServiceClient(a)``).
    instance_types: dict[str, str]


@dataclass
class AttributeWrite:
    """One ``self.<attr> = ...`` (or augmented/subscript) store."""

    attr: str
    method: str
    line: int
    col: int
    context: str
    locked: bool


@dataclass
class ClassFacts:
    """Cross-method view of one class body."""

    name: str
    lineno: int
    methods: list[str]
    # Method names handed to ``Thread(target=self.X)`` anywhere in the
    # class: entry points of other threads.
    thread_targets: list[str]
    # attr -> constructor type name for lock-like attrs built in
    # __init__ (``self._lock = threading.RLock()``).
    lock_attrs: dict[str, str]
    # attr -> canonical lock attr (``Condition(self._lock)`` wraps and
    # therefore aliases ``_lock``).
    lock_aliases: dict[str, str]
    # attr -> dotted class name for ``self.X = ClassName(...)`` in
    # __init__ (instance-attribute dispatch for the call graph).
    attr_types: dict[str, str]
    # Every self-attribute store outside __init__.
    writes: list[AttributeWrite]


@dataclass
class ModuleFacts:
    """Everything the project pass needs to know about one module."""

    relpath: str
    dotted: str  # relpath as a dotted module path ("a/b/c.py" -> "a.b.c")
    # local alias -> imported module ("np" -> "numpy").
    module_imports: dict[str, str]
    # local name -> (source module, original name) for from-imports.
    from_imports: dict[str, list]
    functions: dict[str, FunctionFacts]
    classes: dict[str, ClassFacts]
    has_write_frame: bool
    has_read_frame: bool
    references_version: bool  # any *_VERSION name or attribute
    # Constant string keys of frame dict literals (dicts carrying a
    # "type" key in a frame-speaking module), plus ``frame["k"] = v``
    # extensions of those dicts: key -> sites.
    frame_keys_written: dict[str, list[dict]]
    # True when any frame dict uses ** expansion or computed keys: the
    # write-side key universe is open and read-only findings would lie.
    frame_keys_dynamic: bool


# ----------------------------------------------------------------------
# codecs (the fact cache's wire format)
# ----------------------------------------------------------------------

def facts_to_json(facts: ModuleFacts) -> dict:
    return asdict(facts)


def facts_from_json(data: dict) -> ModuleFacts:
    functions = {
        qualname: FunctionFacts(
            **{**fn, "calls": [CallSite(**c) for c in fn["calls"]],
               "impurity_sites": {
                   kind: [SiteList(**s) for s in sites]
                   for kind, sites in fn["impurity_sites"].items()},
               "locks_acquired": {
                   lock: [SiteList(**s) for s in sites]
                   for lock, sites in fn["locks_acquired"].items()}})
        for qualname, fn in data["functions"].items()
    }
    classes = {
        name: ClassFacts(
            **{**kls,
               "writes": [AttributeWrite(**w) for w in kls["writes"]]})
        for name, kls in data["classes"].items()
    }
    return ModuleFacts(
        **{**data, "functions": functions, "classes": classes})


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------

def _dotted_module(relpath: str) -> str:
    parts = relpath.removesuffix(".py").split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_wall_clock(parts: tuple[str, ...]) -> bool:
    return len(parts) >= 2 and (parts[-2], parts[-1]) in WALL_CLOCK_CALLS


def _is_unseeded_rng(call: ast.Call, parts: tuple[str, ...]) -> bool:
    if (parts[-1] in UNSEEDED_RNG_SUFFIXES and not call.args
            and not call.keywords):
        return True
    if (len(parts) == 2 and parts[0] == "random"
            and parts[1] in _GLOBAL_RANDOM_FNS):
        return True
    return (len(parts) >= 3 and parts[-2] == "random"
            and parts[0] in ("np", "numpy")
            and parts[-1] in _GLOBAL_RANDOM_FNS | {"rand", "randn"})


def _is_env_read(node: ast.AST, parts: tuple[str, ...]) -> bool:
    if isinstance(node, ast.Call):
        return len(parts) >= 2 and (parts[-2], parts[-1]) in ENV_READ_CALLS
    if isinstance(node, ast.Subscript):
        return dotted_name(node.value).endswith("environ")
    return False


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class _FunctionVisitor(ast.NodeVisitor):
    """One pass over a function body (never descending into nested
    function definitions — those get their own facts)."""

    def __init__(self, ctx: ModuleContext, qualname: str,
                 node: ast.FunctionDef | ast.AsyncFunctionDef,
                 lock_names: set[str]) -> None:
        self._ctx = ctx
        self._lock_names = lock_names
        self._held: list[str] = []  # lock-attr stack, lexical
        self._root = node
        self.facts = FunctionFacts(
            qualname=qualname,
            class_name=(qualname.rsplit(".", 1)[0]
                        if "." in qualname else None),
            lineno=node.lineno,
            params=[arg.arg for arg in node.args.args],
            calls=[],
            impurity_sites={},
            return_impurity=[],
            locks_acquired={},
            lock_nestings=[],
            key_reads={},
            frame_names=[],
            assigned_calls={},
            returns_read_frame=False,
            instance_types={},
        )
        self._return_nodes: list[ast.expr] = []
        self._assigned: dict[str, list[ast.expr]] = {}

    def run(self) -> FunctionFacts:
        for statement in self._root.body:
            self.visit(statement)
        self._finish_return_taint()
        return self.facts

    # -- helpers -------------------------------------------------------

    def _site(self, node: ast.AST) -> SiteList:
        lineno = getattr(node, "lineno", 1)
        return SiteList(line=lineno, col=getattr(node, "col_offset", 0),
                        context=self._ctx.line_text(lineno))

    def _impurity(self, kind: str, node: ast.AST) -> None:
        self.facts.impurity_sites.setdefault(kind, []).append(
            self._site(node))

    def _lock_name(self, expr: ast.expr) -> str | None:
        """The self-attribute lock a with-item acquires, if any."""
        if isinstance(expr, ast.Call):
            expr = expr.func  # with self._lock.acquire_timeout(...) etc.
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self":
            attr = expr.attr
            if attr in self._lock_names or "lock" in attr.lower():
                return attr
        return None

    # -- scope boundaries ----------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scope: separate facts

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- with/lock tracking --------------------------------------------

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)  # calls inside the item
            lock = self._lock_name(item.context_expr)
            if lock is not None:
                for outer in self._held:
                    if outer != lock:
                        self.facts.lock_nestings.append([outer, lock])
                self.facts.locks_acquired.setdefault(lock, []).append(
                    self._site(item.context_expr))
                self._held.append(lock)
                acquired.append(lock)
        for statement in node.body:
            self.visit(statement)
        for _ in acquired:
            self._held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # -- returns and assignments ---------------------------------------

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._return_nodes.append(node.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        value_dotted = dotted_name(node.value.func) \
            if isinstance(node.value, ast.Call) else None
        value_name = value_dotted.split(".")[-1] if value_dotted else None
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._assigned.setdefault(target.id, []).append(node.value)
                if value_dotted and not value_dotted.startswith("?"):
                    self.facts.assigned_calls.setdefault(
                        target.id, []).append(value_dotted)
                if value_name == "read_frame" \
                        and target.id not in self.facts.frame_names:
                    self.facts.frame_names.append(target.id)
                elif value_name and value_name[:1].isupper() \
                        and isinstance(node.value, ast.Call):
                    self.facts.instance_types[target.id] = dotted_name(
                        node.value.func)
        self.generic_visit(node)

    # -- the expression-level facts ------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        parts = tuple(name.split("."))
        if not name.startswith("?"):
            if _is_wall_clock(parts):
                self._impurity("wall_clock", node)
            if _is_unseeded_rng(node, parts):
                self._impurity("unseeded_rng", node)
            if _is_env_read(node, parts):
                self._impurity("env_read", node)
            arg_names = [[position, arg.id]
                         for position, arg in enumerate(node.args)
                         if isinstance(arg, ast.Name)]
            arg_names_all: list[str] = []
            arg_calls: list[str] = []
            for arg_root in list(node.args) + [kw.value
                                               for kw in node.keywords]:
                for sub in ast.walk(arg_root):
                    if isinstance(sub, ast.Call):
                        sub_name = dotted_name(sub.func)
                        if not sub_name.startswith("?") \
                                and sub_name not in arg_calls:
                            arg_calls.append(sub_name)
                    elif isinstance(sub, ast.Name) \
                            and sub.id not in arg_names_all:
                        arg_names_all.append(sub.id)
            self.facts.calls.append(CallSite(
                name=name, line=node.lineno, col=node.col_offset,
                context=self._ctx.line_text(node.lineno),
                arg_names=arg_names, arg_names_all=arg_names_all,
                arg_calls=arg_calls, held_locks=list(self._held)))
        # base.get("key") reads — recorded even when the base is a
        # computed expression (``request(...).get("jobs")``); those
        # land under base "?" and only feed the broad read set.
        if (parts[-1] == "get" and len(parts) >= 2 and node.args):
            key = _const_str(node.args[0])
            if key is not None:
                base = parts[0] if len(parts) == 2 else "?"
                self.facts.key_reads.setdefault(base, []).append(
                    {"key": key, "line": node.lineno,
                     "col": node.col_offset,
                     "context": self._ctx.line_text(node.lineno)})
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.value, ast.Name):
            key = _const_str(node.slice)
            if key is not None:
                self.facts.key_reads.setdefault(node.value.id, []).append(
                    {"key": key, "line": node.lineno,
                     "col": node.col_offset,
                     "context": self._ctx.line_text(node.lineno)})
        if _is_env_read(node, ()):
            self._impurity("env_read", node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if is_unordered(node.iter):
            self._impurity("set_iteration", node)
        self.generic_visit(node)

    # -- return-taint closure ------------------------------------------

    def _finish_return_taint(self) -> None:
        """Mark impurity kinds and calls feeding any return expression.

        Follows one hop of local assignment per iteration until the
        feeding-name set is stable: ``x = time.time(); y = x;
        return y`` taints the return.
        """
        feeding: set[str] = set()
        exprs = list(self._return_nodes)
        changed = True
        while changed:
            changed = False
            for expr in exprs:
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Name) \
                            and sub.id in self._assigned \
                            and sub.id not in feeding:
                        feeding.add(sub.id)
                        exprs.extend(self._assigned[sub.id])
                        changed = True
        kinds: set[str] = set()
        call_nodes: set[int] = set()
        for expr in exprs:
            for sub in ast.walk(expr):
                if not isinstance(sub, (ast.Call, ast.Subscript)):
                    continue
                parts = tuple(dotted_name(
                    sub.func if isinstance(sub, ast.Call) else sub.value
                ).split("."))
                if isinstance(sub, ast.Call):
                    call_nodes.add(id(sub))
                    if _is_wall_clock(parts):
                        kinds.add("wall_clock")
                    if _is_unseeded_rng(sub, parts):
                        kinds.add("unseeded_rng")
                if _is_env_read(sub, parts):
                    kinds.add("env_read")
        self.facts.return_impurity = sorted(kinds)
        # Re-walk return-feeding exprs and tag matching recorded calls
        # (matching by position, the stable identity we kept).
        positions = set()
        for expr in exprs:
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and id(sub) in call_nodes:
                    positions.add((sub.lineno, sub.col_offset))
        for call in self.facts.calls:
            if (call.line, call.col) in positions:
                call.in_return = True
            if call.name.split(".")[-1] == "read_frame" and call.in_return:
                self.facts.returns_read_frame = True


# ----------------------------------------------------------------------
# class-level extraction
# ----------------------------------------------------------------------

def _thread_target(call: ast.Call) -> str | None:
    """``"_serve"`` for ``Thread(target=self._serve, ...)``."""
    if dotted_name(call.func).split(".")[-1] != "Thread":
        return None
    for kw in call.keywords:
        if kw.arg == "target" and isinstance(kw.value, ast.Attribute) \
                and isinstance(kw.value.value, ast.Name) \
                and kw.value.value.id == "self":
            return kw.value.attr
    return None


def _init_attr_bindings(klass: ast.ClassDef) -> tuple[dict[str, str],
                                                      dict[str, str],
                                                      dict[str, str]]:
    """(lock attrs, lock aliases, instance-typed attrs) from __init__."""
    lock_attrs: dict[str, str] = {}
    lock_aliases: dict[str, str] = {}
    attr_types: dict[str, str] = {}
    init = next((node for node in klass.body
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))
                 and node.name == "__init__"), None)
    if init is None:
        return lock_attrs, lock_aliases, attr_types
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) \
                or not isinstance(node.value, ast.Call):
            continue
        ctor = dotted_name(node.value.func)
        ctor_name = ctor.split(".")[-1]
        for target in node.targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if ctor_name in LOCK_TYPES:
                lock_attrs[target.attr] = ctor_name
                # Condition(self._lock) shares the wrapped lock.
                if node.value.args:
                    wrapped = node.value.args[0]
                    if isinstance(wrapped, ast.Attribute) \
                            and isinstance(wrapped.value, ast.Name) \
                            and wrapped.value.id == "self":
                        lock_aliases[target.attr] = wrapped.attr
            elif ctor_name[:1].isupper():
                attr_types[target.attr] = ctor
    return lock_attrs, lock_aliases, attr_types


class _AttributeWriteCollector(ast.NodeVisitor):
    """Self-attribute stores in one method, with held-lock tracking.

    The collector that CONC301 and the class-level CONC303 facts
    share. Unlike its PR 8 ancestor it keeps a *stack* of held locks
    (so nested ``with`` exits restore the right state), understands
    ``async with``, and recognizes locks by their ``__init__``
    construction type (``RLock``, ``Condition``, semaphores) rather
    than only by "lock" appearing in the attribute name.
    """

    def __init__(self, lock_names: set[str]) -> None:
        self._lock_names = lock_names
        self._held: list[str] = []
        self.writes: list[tuple[str, ast.AST, bool]] = []

    def _lock_name(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Attribute) \
                and isinstance(expr.value, ast.Name) \
                and expr.value.id == "self":
            attr = expr.attr
            if attr in self._lock_names or "lock" in attr.lower():
                return attr
        return None

    def _record(self, target: ast.expr, node: ast.AST) -> None:
        # self.x = ... and self.x[...] = ... both mutate shared state.
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.writes.append((target.attr, node, bool(self._held)))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node)
        self.generic_visit(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        acquired = []
        for item in node.items:
            self.visit(item.context_expr)
            lock = self._lock_name(item.context_expr)
            if lock is not None:
                self._held.append(lock)
                acquired.append(lock)
        for statement in node.body:
            self.visit(statement)
        for _ in acquired:
            self._held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    # Nested defs are their own scope.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def method_attribute_writes(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
    lock_names: set[str] = frozenset(),
) -> list[tuple[str, ast.AST, bool]]:
    """(attr, node, under-lock) for every self-attribute store."""
    collector = _AttributeWriteCollector(set(lock_names))
    for statement in method.body:
        collector.visit(statement)
    return collector.writes


def class_lock_names(klass: ast.ClassDef) -> set[str]:
    """Lock-like attrs: typed in __init__ plus name-matched ones."""
    lock_attrs, _, _ = _init_attr_bindings(klass)
    return set(lock_attrs)


def thread_target_names(klass: ast.ClassDef) -> set[str]:
    """Methods handed to ``Thread(target=self.X)`` anywhere in a class."""
    return {target for node in ast.walk(klass)
            if isinstance(node, ast.Call)
            for target in [_thread_target(node)]
            if target is not None}


def _extract_class(ctx: ModuleContext, klass: ast.ClassDef) -> ClassFacts:
    lock_attrs, lock_aliases, attr_types = _init_attr_bindings(klass)
    methods = [node for node in klass.body
               if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]
    targets = []
    for node in ast.walk(klass):
        if isinstance(node, ast.Call):
            target = _thread_target(node)
            if target is not None and target not in targets:
                targets.append(target)
    writes: list[AttributeWrite] = []
    for method in methods:
        if method.name == "__init__":
            continue  # construction precedes concurrency
        for attr, node, locked in method_attribute_writes(
                method, set(lock_attrs)):
            lineno = getattr(node, "lineno", method.lineno)
            writes.append(AttributeWrite(
                attr=attr, method=method.name, line=lineno,
                col=getattr(node, "col_offset", 0),
                context=ctx.line_text(lineno), locked=locked))
    return ClassFacts(
        name=klass.name, lineno=klass.lineno,
        methods=[m.name for m in methods],
        thread_targets=targets,
        lock_attrs=lock_attrs, lock_aliases=lock_aliases,
        attr_types=attr_types, writes=writes)


# ----------------------------------------------------------------------
# module-level extraction
# ----------------------------------------------------------------------

def _frame_key_writes(ctx: ModuleContext) -> tuple[dict[str, list[dict]],
                                                   bool]:
    """Constant keys of frame dict literals (dicts with a "type" key),
    plus ``frame["k"] = ...`` stores on names bound to one."""
    written: dict[str, list[dict]] = {}
    dynamic = False
    frame_bound: set[str] = set()

    def record(key: str, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", 1)
        written.setdefault(key, []).append(
            {"line": lineno, "col": getattr(node, "col_offset", 0),
             "context": ctx.line_text(lineno)})

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Dict):
            keys = [_const_str(k) if k is not None else None
                    for k in node.keys]
            if "type" not in keys:
                continue
            if any(k is None for k in keys):
                dynamic = True  # ** expansion or computed key
            for key, key_node in zip(keys, node.keys):
                if key is not None:
                    record(key, key_node or node)
        elif isinstance(node, ast.Call):
            # dict(message, extra=1) in a frame-speaking module: the
            # keywords extend an existing frame.
            if dotted_name(node.func) == "dict" and node.args:
                for kw in node.keywords:
                    if kw.arg is not None:
                        record(kw.arg, node)
                    else:
                        dynamic = True
    # frame["k"] = v on names assigned a "type" dict literal.
    for scope in ast.walk(ctx.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                if (isinstance(node.value, ast.Dict)
                        and any(_const_str(k) == "type"
                                for k in node.value.keys if k is not None)):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            frame_bound.add(target.id)
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in frame_bound):
                        key = _const_str(target.slice)
                        if key is not None:
                            record(key, target)
                        else:
                            dynamic = True
    return written, dynamic


def extract_facts(ctx: ModuleContext) -> ModuleFacts:
    """Distill one parsed module into its AST-free fact record."""
    module_imports: dict[str, str] = {}
    from_imports: dict[str, list] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_imports[alias.asname or alias.name.split(".")[0]] \
                    = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            prefix = "." * node.level
            for alias in node.names:
                from_imports[alias.asname or alias.name] = [
                    prefix + node.module, alias.name]

    referenced = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Name):
            referenced.add(node.id)
        elif isinstance(node, ast.Attribute):
            referenced.add(node.attr)
    has_write_frame = "write_frame" in referenced
    has_read_frame = "read_frame" in referenced
    references_version = any(name.endswith("_VERSION")
                             for name in referenced)

    functions: dict[str, FunctionFacts] = {}
    classes: dict[str, ClassFacts] = {}

    def walk_functions(body, prefix: str, lock_names: set[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                functions[qualname] = _FunctionVisitor(
                    ctx, qualname, node, lock_names).run()
            elif isinstance(node, ast.ClassDef):
                classes[node.name] = _extract_class(ctx, node)
                walk_functions(node.body, f"{node.name}.",
                               set(classes[node.name].lock_attrs))

    walk_functions(ctx.tree.body, "", set())

    frame_keys_written: dict[str, list[dict]] = {}
    frame_keys_dynamic = False
    if has_write_frame or has_read_frame:
        frame_keys_written, frame_keys_dynamic = _frame_key_writes(ctx)

    return ModuleFacts(
        relpath=ctx.relpath,
        dotted=_dotted_module(ctx.relpath),
        module_imports=module_imports,
        from_imports=from_imports,
        functions=functions,
        classes=classes,
        has_write_frame=has_write_frame,
        has_read_frame=has_read_frame,
        references_version=references_version,
        frame_keys_written=frame_keys_written,
        frame_keys_dynamic=frame_keys_dynamic,
    )
