"""DUR pack — durability rules.

Crash-safety here means one thing: at every instruction boundary the
durable state on disk is either the old bytes or the new bytes. The
atomic publish helpers in :mod:`repro.runtime.atomicio` provide that;
these rules catch code in the durable-store modules that bypasses
them, and journal writes that are not fsynced before the append is
acknowledged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import call_name, iter_scopes, keyword_value
from repro.lint.model import Finding, ModuleContext, rule

# Modules that own durable state. Anything else may write scratch
# files however it likes.
_DURABLE_TOKENS = ("checkpoint", "store", "journal", "cache",
                   "tableio", "colio", "persist")


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of an open()/Path.open() call, if spelled."""
    mode = keyword_value(call, "mode")
    if mode is None and len(call.args) >= 2 \
            and isinstance(call.func, ast.Name):
        mode = call.args[1]  # open(path, "w")
    if mode is None and len(call.args) >= 1 \
            and isinstance(call.func, ast.Attribute):
        mode = call.args[0]  # path.open("w")
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule(
    "DUR201", "DUR",
    summary="non-atomic write in a durable-store module",
    rationale="a truncating write (open 'w', write_text, json.dump) "
              "killed mid-flight leaves a torn file; durable stores "
              "must publish through runtime/atomicio.py "
              "(tmp + fsync + rename)",
    path_tokens=_DURABLE_TOKENS,
    exclude_basenames=("atomicio",),
)
def dur201_raw_write(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open" \
                or isinstance(func, ast.Attribute) and func.attr == "open":
            mode = _open_mode(node)
            if mode and mode[0] in ("w", "x"):
                yield ctx.finding(
                    "DUR201", node,
                    f"open(mode={mode!r}) truncates in place; use "
                    "atomic_write_bytes/text/stream from "
                    "runtime/atomicio.py")
        elif isinstance(func, ast.Attribute) \
                and func.attr in ("write_text", "write_bytes"):
            yield ctx.finding(
                "DUR201", node,
                f".{func.attr}() truncates in place; use "
                "atomic_write_text/bytes from runtime/atomicio.py")
        elif call_name(node) == "json.dump":
            yield ctx.finding(
                "DUR201", node,
                "json.dump() streams into a live file; use "
                "atomic_write_json from runtime/atomicio.py")


def _calls_in(scope: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            yield node


@rule(
    "DUR202", "DUR",
    summary="journal append without fsync in the same function",
    rationale="an acked journal append that is not fsynced can vanish "
              "on power loss, splitting the hash chain between "
              "primary and followers",
    path_tokens=("journal",),
)
def dur202_append_without_fsync(ctx: ModuleContext) -> Iterator[Finding]:
    for scope in iter_scopes(ctx.tree):
        if isinstance(scope, ast.Module):
            continue
        writes = [call for call in _calls_in(scope)
                  if isinstance(call.func, ast.Attribute)
                  and call.func.attr == "write"]
        if not writes:
            continue
        fsynced = any(call_name(call) == "os.fsync"
                      for call in _calls_in(scope))
        if not fsynced:
            yield ctx.finding(
                "DUR202", writes[0],
                f"{scope.name}() writes to a handle but never calls "
                "os.fsync; a crash can lose the acked append")
