"""CONC pack — concurrency rules.

The daemon and the distributed coordinator are the only places this
codebase spawns threads, and both have to shut down cleanly for the
chaos tests' crash/resume equivalence to mean anything. The module
rules flag unlocked cross-thread attribute mutation (CONC301) and
threads that nobody can join (CONC302); the project rules add the
class-level view — inconsistent lock discipline across *all* of a
class's methods (CONC303) and lock-acquisition-order cycles across
modules (CONC304).

Lock recognition is shared with the fact extractor: an attribute is a
lock if ``__init__`` assigns it a ``threading`` lock type (``Lock``,
``RLock``, ``Condition``, semaphores) *or* its name contains "lock",
and the held set is tracked as a stack so nested ``with`` blocks
(sync or async) release in the right order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import call_name, iter_scopes, keyword_value
from repro.lint.facts import (class_lock_names, method_attribute_writes,
                              thread_target_names)
from repro.lint.model import Finding, ModuleContext, rule
from repro.lint.project import (ProjectContext, build_lock_graph,
                                find_lock_cycles)


def _is_thread_call(call: ast.Call) -> bool:
    return call_name(call).split(".")[-1] == "Thread"


@rule(
    "CONC301", "CONC",
    summary="attribute mutated across threads without a lock",
    rationale="an attribute written both inside a Thread target and "
              "from other methods races unless every write holds "
              "`with self._lock`; torn state corrupts shutdown and "
              "journal ordering",
)
def conc301_unlocked_shared_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    for klass in ast.walk(ctx.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        target_names = thread_target_names(klass)
        if not target_names:
            continue
        lock_names = class_lock_names(klass)
        methods = [node for node in klass.body
                   if isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        inside: dict[str, list[tuple[ast.AST, bool]]] = {}
        outside: dict[str, list[tuple[ast.AST, bool]]] = {}
        for method in methods:
            if method.name == "__init__":
                continue  # construction happens before any thread runs
            bucket = inside if method.name in target_names else outside
            for attr, node, locked in method_attribute_writes(
                    method, lock_names):
                bucket.setdefault(attr, []).append((node, locked))
        for attr in sorted(set(inside) & set(outside)):
            for node, locked in inside[attr] + outside[attr]:
                if not locked:
                    yield ctx.finding(
                        "CONC301", node,
                        f"self.{attr} is written both in thread target"
                        f"(s) {sorted(target_names)} and outside; this "
                        "write does not hold self._lock")


def _registered(scope: ast.AST, name: str) -> bool:
    """True if thread ``name`` is appended, joined, or stored."""
    for node in _scope_walk(scope):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            if node.func.attr == "append" and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in node.args):
                return True
            if node.func.attr == "join" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                return True
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == name \
                and any(isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in node.targets):
            return True
    return False


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function defs."""
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # its own scope; visited by iter_scopes
            stack.append(child)


def _binding_name(scope: ast.AST, call: ast.Call) -> str | None:
    """The simple name a thread call is assigned to, if any."""
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign) and node.value is call:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    return target.id
    return None


@rule(
    "CONC302", "CONC",
    summary="daemon thread spawned without registration",
    rationale="a daemon thread nobody tracks cannot be joined at "
              "shutdown, so it can die mid-write after the main "
              "thread thinks the process quiesced",
)
def conc302_unregistered_daemon(ctx: ModuleContext) -> Iterator[Finding]:
    for scope in iter_scopes(ctx.tree):
        for node in _scope_walk(scope):
            if not isinstance(node, ast.Call) or not _is_thread_call(node):
                continue
            daemon = keyword_value(node, "daemon")
            if not (isinstance(daemon, ast.Constant)
                    and daemon.value is True):
                continue
            bound = _binding_name(scope, node)
            if bound is None or not _registered(scope, bound):
                yield ctx.finding(
                    "CONC302", node,
                    "daemon thread is never appended to a joinable "
                    "list (or joined); register it so shutdown can "
                    "wait for it")


@rule(
    "CONC303", "CONC",
    summary="attribute locked in one method, bare in another",
    rationale="taking the lock for *some* writes documents that the "
              "attribute is shared; the writes that skip it race "
              "anyway — CONC301 only sees thread-target-vs-rest, "
              "this sees inconsistent discipline across the whole "
              "class (e.g. two methods both called from serve "
              "threads)",
    scope="project",
)
def conc303_inconsistent_lock_discipline(
        project: ProjectContext) -> Iterator[Finding]:
    for relpath in sorted(project.modules):
        facts = project.modules[relpath]
        for klass in facts.classes.values():
            if not klass.thread_targets:
                continue  # no concurrency inside the class at all
            by_attr: dict[str, list] = {}
            for write in klass.writes:
                by_attr.setdefault(write.attr, []).append(write)
            for attr in sorted(by_attr):
                writes = by_attr[attr]
                if attr in klass.lock_attrs:
                    continue  # (re)binding the lock itself: CONC's
                    # shutdown idiom, not data it guards
                locked = [w for w in writes if w.locked]
                bare = [w for w in writes if not w.locked]
                if not locked or not bare:
                    continue
                methods = {w.method for w in writes}
                targets = set(klass.thread_targets)
                if methods & targets and methods - targets:
                    continue  # CONC301's domain; don't double-fire
                for write in bare:
                    yield Finding(
                        rule="CONC303", path=relpath, line=write.line,
                        col=write.col, context=write.context,
                        message=(f"self.{attr} is written under a "
                                 f"lock in {sorted(w.method for w in locked)} "
                                 f"but bare here in {write.method}(); "
                                 "either every write holds the lock "
                                 "or none needs to"))


@rule(
    "CONC304", "CONC",
    summary="lock-acquisition-order cycle across the call graph",
    rationale="thread A holding daemon._lock while calling into the "
              "journal, and thread B holding journal._lock while "
              "calling back into the daemon, deadlocks under load; "
              "a cycle in the acquisition-order graph is the static "
              "signature of that hang",
    scope="project",
)
def conc304_lock_order_cycle(
        project: ProjectContext) -> Iterator[Finding]:
    graph = build_lock_graph(project)
    for cycle in find_lock_cycles(graph):
        first, second = cycle[0], cycle[1 % len(cycle)]
        witness = graph[first][second]
        yield Finding(
            rule="CONC304", path=witness["relpath"],
            line=witness["line"], col=0, context=witness["context"],
            message=("lock acquisition order forms a cycle: "
                     + " -> ".join(cycle + [cycle[0]])
                     + "; impose one global order (or drop a lock) "
                     "to make the deadlock impossible"))
