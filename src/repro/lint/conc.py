"""CONC pack — concurrency rules.

The daemon and the distributed coordinator are the only places this
codebase spawns threads, and both have to shut down cleanly for the
chaos tests' crash/resume equivalence to mean anything. These rules
flag unlocked cross-thread attribute mutation and threads that nobody
can join.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.asthelpers import call_name, iter_scopes, keyword_value
from repro.lint.model import Finding, ModuleContext, rule


def _is_thread_call(call: ast.Call) -> bool:
    return call_name(call).split(".")[-1] == "Thread"


def _self_target_name(call: ast.Call) -> str | None:
    """``"_serve"`` for ``Thread(target=self._serve, ...)``."""
    target = keyword_value(call, "target")
    if isinstance(target, ast.Attribute) \
            and isinstance(target.value, ast.Name) \
            and target.value.id == "self":
        return target.attr
    return None


class _MutationCollector(ast.NodeVisitor):
    """Collect self-attribute writes, tracking lock context."""

    def __init__(self) -> None:
        self.mutations: list[tuple[str, ast.AST, bool]] = []
        self._lock_depth = 0

    def _record(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self.mutations.append(
                (target.attr, node, self._lock_depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        held = any("lock" in call_name_of(item.context_expr).lower()
                   for item in node.items)
        self._lock_depth += held
        self.generic_visit(node)
        self._lock_depth -= held

    # Nested defs get their own collector pass; don't descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def call_name_of(expr: ast.expr) -> str:
    """Dotted name of a with-item's context expression."""
    from repro.lint.asthelpers import dotted_name
    if isinstance(expr, ast.Call):
        expr = expr.func
    return dotted_name(expr)


def _method_mutations(method: ast.FunctionDef | ast.AsyncFunctionDef):
    collector = _MutationCollector()
    for statement in method.body:
        collector.visit(statement)
    return collector.mutations


@rule(
    "CONC301", "CONC",
    summary="attribute mutated across threads without a lock",
    rationale="an attribute written both inside a Thread target and "
              "from other methods races unless every write holds "
              "`with self._lock`; torn state corrupts shutdown and "
              "journal ordering",
)
def conc301_unlocked_shared_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    for klass in ast.walk(ctx.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        target_names = {
            name
            for node in ast.walk(klass)
            if isinstance(node, ast.Call) and _is_thread_call(node)
            for name in [_self_target_name(node)]
            if name is not None
        }
        if not target_names:
            continue
        methods = [node for node in klass.body
                   if isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        inside: dict[str, list[tuple[ast.AST, bool]]] = {}
        outside: dict[str, list[tuple[ast.AST, bool]]] = {}
        for method in methods:
            if method.name == "__init__":
                continue  # construction happens before any thread runs
            bucket = inside if method.name in target_names else outside
            for attr, node, locked in _method_mutations(method):
                bucket.setdefault(attr, []).append((node, locked))
        for attr in sorted(set(inside) & set(outside)):
            for node, locked in inside[attr] + outside[attr]:
                if not locked:
                    yield ctx.finding(
                        "CONC301", node,
                        f"self.{attr} is written both in thread target"
                        f"(s) {sorted(target_names)} and outside; this "
                        "write does not hold self._lock")


def _registered(scope: ast.AST, name: str) -> bool:
    """True if thread ``name`` is appended, joined, or stored."""
    for node in _scope_walk(scope):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute):
            if node.func.attr == "append" and any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in node.args):
                return True
            if node.func.attr == "join" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == name:
                return True
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == name \
                and any(isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in node.targets):
            return True
    return False


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function defs."""
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue  # its own scope; visited by iter_scopes
            stack.append(child)


def _binding_name(scope: ast.AST, call: ast.Call) -> str | None:
    """The simple name a thread call is assigned to, if any."""
    for node in _scope_walk(scope):
        if isinstance(node, ast.Assign) and node.value is call:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    return target.id
    return None


@rule(
    "CONC302", "CONC",
    summary="daemon thread spawned without registration",
    rationale="a daemon thread nobody tracks cannot be joined at "
              "shutdown, so it can die mid-write after the main "
              "thread thinks the process quiesced",
)
def conc302_unregistered_daemon(ctx: ModuleContext) -> Iterator[Finding]:
    for scope in iter_scopes(ctx.tree):
        for node in _scope_walk(scope):
            if not isinstance(node, ast.Call) or not _is_thread_call(node):
                continue
            daemon = keyword_value(node, "daemon")
            if not (isinstance(daemon, ast.Constant)
                    and daemon.value is True):
                continue
            bound = _binding_name(scope, node)
            if bound is None or not _registered(scope, bound):
                yield ctx.finding(
                    "CONC302", node,
                    "daemon thread is never appended to a joinable "
                    "list (or joined); register it so shutdown can "
                    "wait for it")
