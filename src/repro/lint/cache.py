"""Fact cache: warm re-scans skip every unchanged module.

One JSON document maps ``relpath -> {digest, scan}``, where ``scan``
is the full phase-1 output (:class:`~repro.lint.engine.ModuleScan` as
JSON: raw findings, suppression records, module facts). A warm hit
means no read-for-parse, no AST, no module rules — the project pass
rebuilds its cross-module views from the cached facts alone, which is
the payoff of keeping facts AST-free.

The digest is over source *bytes*, so any edit — including one that
only touches a suppression comment — invalidates exactly that module.
The file is published with the same atomic-rename idiom every durable
store in this codebase uses; a torn cache is indistinguishable from a
cold one (load failures just start empty).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runtime.atomicio import atomic_write_json

__all__ = ["FactCache"]

_FORMAT = 1


class FactCache:
    """Digest-keyed store of per-module scan results."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._modules: dict[str, dict] = {}
        self._dirty = False
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if isinstance(data, dict) and data.get("format") == _FORMAT:
            modules = data.get("modules")
            if isinstance(modules, dict):
                self._modules = modules

    def get(self, relpath: str, digest: str) -> dict | None:
        """The cached scan JSON for an unchanged module, else None."""
        entry = self._modules.get(relpath)
        if entry is not None and entry.get("digest") == digest:
            return entry.get("scan")
        return None

    def put(self, relpath: str, digest: str, scan: dict) -> None:
        self._modules[relpath] = {"digest": digest, "scan": scan}
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.path,
                          {"format": _FORMAT, "modules": self._modules})
        self._dirty = False
