"""Small AST utilities shared by the rule packs."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "call_name", "keyword_value", "iter_scopes",
           "is_unordered"]


def dotted_name(node: ast.AST) -> str:
    """Render a Name/Attribute chain as ``"np.random.default_rng"``.

    Anything that is not a plain dotted chain (a call result, a
    subscript) renders its non-name part as ``"?"`` so callers can
    still match on the trailing attributes.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted_name(node.value)}.{node.attr}"
    return "?"


def call_name(call: ast.Call) -> str:
    """The dotted name a call targets (empty for computed callees)."""
    name = dotted_name(call.func)
    return "" if name.startswith("?") else name


def keyword_value(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module plus every (async) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# Set-producing method names: calling one of these *on a set* yields
# another set, so the chain stays unordered.
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
})
# Binary operators that combine sets into sets.
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def is_unordered(node: ast.expr) -> bool:
    """True when ``node`` syntactically evaluates to a ``set``.

    Deliberately shallow — it follows literal sets, ``set()`` /
    ``frozenset()`` calls, set operators, and set-method chains, but
    not assignments, because a name-level dataflow would need whole-
    module type inference for little gain: the hazardous pattern in
    this codebase is the inline union (``set(a) | set(b)``).
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name) and callee.id in ("set", "frozenset"):
            return True
        if (isinstance(callee, ast.Attribute)
                and callee.attr in _SET_METHODS
                and is_unordered(callee.value)):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return is_unordered(node.left) or is_unordered(node.right)
    return False
