"""Findings, rules, and the rule registry.

A *rule* is one named, suppressible check over a parsed module; a
*finding* is one place a rule fired. Rules carry their pack (DET, DUR,
CONC, PROTO), a one-line summary, and the rationale tying them to the
byte-equivalence contract — the CLI's ``--list-rules`` and the README
catalog render straight from this metadata, so the docs cannot drift
from the code.

Rule applicability is *path-scoped*: a rule may declare
``path_tokens`` (substrings of the module's posix path — e.g. DUR
rules only police store/journal/checkpoint modules) and
``exclude_basenames`` (the allowlist — e.g. ``atomicio`` is the one
module licensed to consult the wall clock, for its stale-tmp sweep).
Scoping lives in the rule, not in per-site suppressions, so an
allowlisted module never accretes inline noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

__all__ = ["Finding", "ModuleContext", "Rule", "RULES", "rule",
           "rules_by_pack"]

# Every rule pack, in catalog order.
PACKS = ("DET", "DUR", "CONC", "PROTO", "OBS", "FLOW", "LINT")


@dataclass(frozen=True)
class Finding:
    """One place a rule fired."""

    rule: str
    path: str  # posix, relative to the scan invocation when possible
    line: int
    col: int
    message: str
    context: str  # the stripped source line, the baseline's anchor

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching.

        Line numbers shift with every unrelated edit, so the baseline
        anchors on ``(rule, path, stripped source line)`` instead — an
        entry survives reformatting around it but dies with the code
        it describes.
        """
        return (self.rule, self.path, self.context)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Finding":
        return cls(
            rule=data["rule"],
            path=data["path"],
            line=int(data.get("line", 0)),
            col=int(data.get("col", 0)),
            message=data.get("message", ""),
            context=data.get("context", ""),
        )


@dataclass
class ModuleContext:
    """One parsed module handed to every applicable rule."""

    path: Path
    relpath: str  # posix form used in findings and scoping
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @property
    def basename(self) -> str:
        """Module stem (``journal`` for ``.../service/journal.py``)."""
        return self.path.stem

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        return Finding(
            rule=rule_id,
            path=self.relpath,
            line=lineno,
            col=getattr(node, "col_offset", 0),
            message=message,
            context=self.line_text(lineno),
        )


@dataclass(frozen=True)
class Rule:
    """One named check and the scope it polices.

    ``scope`` separates the two analysis phases: a ``"module"`` rule's
    checker receives one :class:`ModuleContext` at a time; a
    ``"project"`` rule's checker receives the whole-program
    :class:`~repro.lint.project.ProjectContext` once per scan and may
    report findings in any scanned module. Path scoping applies to a
    module rule before it runs, and to a project rule's *findings*
    (each finding lands in some module; the scope decides whether it
    survives there).
    """

    id: str
    pack: str
    summary: str
    rationale: str
    check: Callable[..., Iterable[Finding]]
    # Any-of substrings of the module's posix path; empty = every file.
    path_tokens: tuple[str, ...] = ()
    # Module stems the rule never applies to (the allowlist).
    exclude_basenames: tuple[str, ...] = ()
    # Path substrings the rule never applies to (the directory-wide
    # allowlist — e.g. DET103 licenses all of ``obs/`` to timestamp
    # its sidecar trace files).
    exclude_path_tokens: tuple[str, ...] = ()
    # "module" (phase 1, per file) or "project" (phase 2, whole program).
    scope: str = "module"

    def applies_to_path(self, relpath: str) -> bool:
        basename = relpath.rsplit("/", 1)[-1].removesuffix(".py")
        if basename in self.exclude_basenames:
            return False
        if any(token in relpath for token in self.exclude_path_tokens):
            return False
        if not self.path_tokens:
            return True
        return any(token in relpath for token in self.path_tokens)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return self.applies_to_path(ctx.relpath)


RULES: dict[str, Rule] = {}


def rule(
    id: str,
    pack: str,
    summary: str,
    rationale: str,
    path_tokens: tuple[str, ...] = (),
    exclude_basenames: tuple[str, ...] = (),
    exclude_path_tokens: tuple[str, ...] = (),
    scope: str = "module",
):
    """Register one rule; the decorated function is its checker."""
    if pack not in PACKS:
        raise ValueError(f"unknown rule pack {pack!r}; packs: {PACKS}")
    if id in RULES:
        raise ValueError(f"duplicate rule id {id!r}")
    if scope not in ("module", "project"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def decorate(check: Callable) -> Callable:
        RULES[id] = Rule(id=id, pack=pack, summary=summary,
                         rationale=rationale, check=check,
                         path_tokens=path_tokens,
                         exclude_basenames=exclude_basenames,
                         exclude_path_tokens=exclude_path_tokens,
                         scope=scope)
        return check

    return decorate


def rules_by_pack() -> dict[str, list[Rule]]:
    """The catalog, grouped by pack in registration order."""
    grouped: dict[str, list[Rule]] = {pack: [] for pack in PACKS}
    for registered in RULES.values():
        grouped[registered.pack].append(registered)
    return grouped
