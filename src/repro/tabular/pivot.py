"""Pivoting long tables into wide layouts.

The paper's Table 1 is a *wide* layout — one column pair per ISP, one
row per speed tier — while the analysis produces the same data long
(one row per (ISP, tier)). ``pivot`` performs that reshape generically.
"""

from __future__ import annotations

from typing import Any

from repro.tabular.frame import Table

__all__ = ["pivot"]


def pivot(
    table: Table,
    index: str,
    columns: str,
    values: str | list[str],
    fill: Any = 0.0,
) -> Table:
    """Reshape ``table`` so each ``columns`` value becomes a column set.

    Output columns are named ``{column_value}_{value_name}`` (or just
    ``{column_value}`` for a single value column). Duplicate
    (index, column) cells are an error — pivoting is for tidy inputs.
    """
    value_names = [values] if isinstance(values, str) else list(values)
    for name in (index, columns, *value_names):
        if name not in table:
            raise KeyError(f"no column {name!r} to pivot on")

    column_values = sorted(set(table[columns]))
    index_values: list[Any] = []
    seen_index: set[Any] = set()
    cells: dict[tuple[Any, Any, str], Any] = {}
    for row in table.iter_rows():
        idx, col = row[index], row[columns]
        if idx not in seen_index:
            seen_index.add(idx)
            index_values.append(idx)
        for name in value_names:
            key = (idx, col, name)
            if key in cells:
                raise ValueError(
                    f"duplicate cell for ({idx!r}, {col!r}, {name!r})")
            cells[key] = row[name]

    def out_name(col: Any, name: str) -> str:
        if len(value_names) == 1:
            return str(col)
        return f"{col}_{name}"

    data: dict[str, list[Any]] = {index: index_values}
    for col in column_values:
        for name in value_names:
            data[out_name(col, name)] = [
                cells.get((idx, col, name), fill) for idx in index_values
            ]
    return Table(data)
