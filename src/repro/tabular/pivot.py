"""Pivoting long tables into wide layouts.

The paper's Table 1 is a *wide* layout — one column pair per ISP, one
row per speed tier — while the analysis produces the same data long
(one row per (ISP, tier)). ``pivot`` performs that reshape generically.

The reshape is vectorized: the index and column keys are factorized
once (:func:`~repro.tabular.frame.factorize`), output row positions
come from array indexing rather than per-row dict lookups, and
duplicate (index, column) cells are detected from one segment pass
over the combined key codes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.tabular.frame import Table, factorize, group_codes

__all__ = ["pivot"]


def _first_seen_positions(column: np.ndarray) -> tuple[list[Any], np.ndarray]:
    """Map a column to its first-seen distinct values.

    Returns ``(values, positions)`` where ``values`` lists the distinct
    cell values in order of first appearance and ``positions[i]`` is the
    index into ``values`` for row ``i``.
    """
    length = column.shape[0]
    codes, _ = factorize(column)
    uniques, inverse = np.unique(codes, return_inverse=True)
    inverse = inverse.reshape(-1)
    first_rows = np.full(uniques.shape[0], length, dtype=np.intp)
    np.minimum.at(first_rows, inverse, np.arange(length, dtype=np.intp))
    seen_order = np.argsort(first_rows, kind="stable")
    rank = np.empty(uniques.shape[0], dtype=np.intp)
    rank[seen_order] = np.arange(uniques.shape[0], dtype=np.intp)
    values = [column[row] for row in first_rows[seen_order]]
    return values, rank[inverse]


def pivot(
    table: Table,
    index: str,
    columns: str,
    values: str | list[str],
    fill: Any = 0.0,
) -> Table:
    """Reshape ``table`` so each ``columns`` value becomes a column set.

    Output columns are named ``{column_value}_{value_name}`` (or just
    ``{column_value}`` for a single value column). Duplicate
    (index, column) cells are an error — pivoting is for tidy inputs.
    """
    value_names = [values] if isinstance(values, str) else list(values)
    for name in (index, columns, *value_names):
        if name not in table:
            raise KeyError(f"no column {name!r} to pivot on")

    table_len = len(table)
    index_column = table[index]
    columns_column = table[columns]
    column_values = sorted(set(columns_column))
    index_values, row_positions = _first_seen_positions(index_column)

    # Duplicate detection: any (index, column) pair seen twice. Report
    # the earliest second occurrence, as the row scan used to.
    pair_codes = group_codes([index_column, columns_column], table_len)
    pair_order = np.argsort(pair_codes, kind="stable")
    sorted_pairs = pair_codes[pair_order]
    if table_len:
        same_as_prev = np.flatnonzero(sorted_pairs[1:] == sorted_pairs[:-1]) + 1
        if same_as_prev.size:
            dup_row = int(pair_order[same_as_prev].min())
            raise ValueError(
                f"duplicate cell for ({index_column[dup_row]!r}, "
                f"{columns_column[dup_row]!r}, {value_names[0]!r})"
            )

    def out_name(col: Any, name: str) -> str:
        if len(value_names) == 1:
            return str(col)
        return f"{col}_{name}"

    data: dict[str, list[Any]] = {index: index_values}
    n_index = len(index_values)
    for col in column_values:
        rows = np.flatnonzero(columns_column == col)
        positions = row_positions[rows].tolist()
        for name in value_names:
            cells = [fill] * n_index
            for position, value in zip(positions, table[name][rows].tolist()):
                cells[position] = value
            data[out_name(col, name)] = cells
    return Table(data)
