"""CSV and JSON-lines persistence for tables.

The pipeline checkpoints its datasets (the sampled addresses, the BQT
query log, the audit table) so experiments can be re-run without
rebuilding the world. CSV is the interchange format the real USAC open
data portal uses; JSONL round-trips types exactly.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.tabular.frame import Table


def _atomic_write_text(path: Path, text: str) -> Path:
    # Imported lazily: repro.tabular loads during repro.bqt's own
    # import, before repro.runtime's package init can complete.
    from repro.runtime.atomicio import atomic_write_text

    return atomic_write_text(path, text)

__all__ = ["write_csv", "read_csv", "write_jsonl", "read_jsonl"]


def _plain(value: Any) -> Any:
    """Convert numpy scalars to built-in types for serialization."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def write_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as UTF-8 CSV with a header row.

    The file is published atomically (tmp + fsync + rename via
    :mod:`repro.runtime.atomicio`): a writer killed mid-serialization
    leaves the previous table intact, never a torn one.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.column_names)
    columns = [table[name] for name in table.column_names]
    for row_index in range(len(table)):
        writer.writerow([_plain(column[row_index]) for column in columns])
    _atomic_write_text(destination, buffer.getvalue())


def _has_leading_zero(cell: str) -> bool:
    """True for numerals like ``"01001"`` whose leading zero is data.

    Census FIPS/CBG codes are fixed-width digit strings; parsing them
    numerically drops the zero and corrupts every geo join key. Plain
    ``"0"``, ``"0.5"``, and ``"0e5"`` are unaffected — only a zero
    followed by another digit disqualifies the cell.
    """
    digits = cell.strip().lstrip("+-")
    return len(digits) > 1 and digits[0] == "0" and digits[1].isdigit()


def _parse_int(cell: str) -> int:
    if _has_leading_zero(cell):
        raise ValueError(f"leading-zero numeral {cell!r} is not an int")
    return int(cell)


def _parse_float(cell: str) -> float:
    if _has_leading_zero(cell):
        raise ValueError(f"leading-zero numeral {cell!r} is not a float")
    return float(cell)


def _coerce_csv_column(raw: list[str]) -> list[Any]:
    """Parse a CSV column as int, then float, then bool, else string.

    Leading-zero numerals ("01001") stay strings — see
    :func:`_has_leading_zero`.
    """
    def try_parse(parser: Any) -> list[Any] | None:
        parsed = []
        for cell in raw:
            try:
                parsed.append(parser(cell))
            except (ValueError, KeyError):
                return None
        return parsed

    for parser in (_parse_int, _parse_float,
                   {"True": True, "False": False}.__getitem__):
        parsed = try_parse(parser)
        if parsed is not None:
            return parsed
    return list(raw)


def read_csv(path: str | Path) -> Table:
    """Read a CSV written by :func:`write_csv`, inferring column types."""
    with Path(path).open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV file") from None
        buffers: list[list[str]] = [[] for _ in header]
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(header)} cells, got {len(row)}"
                )
            for buffer, cell in zip(buffers, row):
                buffer.append(cell)
    return Table(
        {name: _coerce_csv_column(buffer) for name, buffer in zip(header, buffers)}
    )


# A zero-row table has no rows to carry its column names, so write_jsonl
# emits this one-key schema marker instead; read_jsonl recognizes (and
# otherwise skips) it, keeping the empty round trip schema-preserving.
_SCHEMA_KEY = "__tabular_schema__"


def write_jsonl(table: Table, path: str | Path) -> None:
    """Write one JSON object per row (a schema marker if no rows).

    Published atomically, like :func:`write_csv`.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    if len(table) == 0:
        lines = [json.dumps({_SCHEMA_KEY: list(table.column_names)})]
    else:
        lines = [json.dumps({k: _plain(v) for k, v in row.items()})
                 for row in table.iter_rows()]
    _atomic_write_text(destination, "\n".join(lines) + "\n")


def read_jsonl(path: str | Path) -> Table:
    """Read a JSONL file written by :func:`write_jsonl`."""
    rows = []
    schema: list[str] | None = None
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON: {error}") from None
            if isinstance(row, dict) and set(row) == {_SCHEMA_KEY}:
                schema = [str(name) for name in row[_SCHEMA_KEY]]
                continue
            rows.append(row)
    if not rows and schema is not None:
        return Table({name: [] for name in schema})
    return Table.from_rows(rows)
