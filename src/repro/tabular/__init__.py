"""A small column-oriented table library (the repository's pandas substitute).

The reproduction environment ships numpy but not pandas/geopandas, so
this package provides the minimal relational layer the analysis
pipeline needs:

* :class:`repro.tabular.Table` — an immutable-ish column store with
  filtering, projection, sorting, derived columns and vectorized access.
* :mod:`repro.tabular.groupby` — split/apply/combine with named
  aggregations (the paper's per-CBG → per-state/ISP rollups).
* :mod:`repro.tabular.join` — inner/left hash joins (CBG metadata joins,
  USAC ↔ BQT merges).
* :mod:`repro.tabular.tableio` — CSV and JSON-lines persistence.
* :mod:`repro.tabular.render` — fixed-width text rendering used by the
  benchmark harness to print the paper's tables.
"""

from repro.tabular.frame import Column, Table
from repro.tabular.groupby import GroupBy
from repro.tabular.join import join
from repro.tabular.pivot import pivot
from repro.tabular.render import render_table
from repro.tabular.tableio import (
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)

__all__ = [
    "Column",
    "GroupBy",
    "Table",
    "join",
    "pivot",
    "read_csv",
    "read_jsonl",
    "render_table",
    "write_csv",
    "write_jsonl",
]
