"""A small column-oriented table library (the repository's pandas substitute).

The reproduction environment ships numpy but not pandas/geopandas, so
this package provides the minimal relational layer the analysis
pipeline needs:

* :class:`repro.tabular.Table` — an immutable-ish column store with
  filtering, projection, sorting, derived columns and vectorized access.
* :mod:`repro.tabular.groupby` — split/apply/combine with named
  aggregations (the paper's per-CBG → per-state/ISP rollups), built on
  a factorize + stable-argsort segment index.
* :mod:`repro.tabular.join` — inner/left hash joins (CBG metadata joins,
  USAC ↔ BQT merges) with a vectorized ``searchsorted`` probe.
* :mod:`repro.tabular.tableio` — CSV and JSON-lines persistence.
* :mod:`repro.tabular.colio` — compact binary column serialization
  (typed buffers + validity masks + a JSON header); backs the analysis
  row cache's format-2 files.
* :mod:`repro.tabular.render` — fixed-width text rendering used by the
  benchmark harness to print the paper's tables.
"""

from repro.tabular.colio import (
    decode_columns,
    decode_row_document,
    encode_columns,
    encode_row_document,
)
from repro.tabular.frame import Column, Table, factorize, group_codes
from repro.tabular.groupby import GroupBy
from repro.tabular.join import join
from repro.tabular.pivot import pivot
from repro.tabular.render import render_table
from repro.tabular.tableio import (
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)

__all__ = [
    "Column",
    "GroupBy",
    "Table",
    "decode_columns",
    "decode_row_document",
    "encode_columns",
    "encode_row_document",
    "factorize",
    "group_codes",
    "join",
    "pivot",
    "read_csv",
    "read_jsonl",
    "render_table",
    "write_csv",
    "write_jsonl",
]
