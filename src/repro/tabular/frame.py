"""The :class:`Table` column store.

Design notes
------------
Columns are numpy arrays. Numeric and boolean columns use native
dtypes; everything else (strings, enums, tuples) is stored as
``dtype=object``. A :class:`Table` never shares column arrays with its
callers: construction copies, and accessors return copies or read-only
views. Transformations (``filter``, ``select``, ``sort_by``,
``with_column``) return new tables, keeping analysis code free of
aliasing bugs — the style the project guides recommend ("it's safer to
create a new list object and leave the original alone").
"""

from __future__ import annotations

from itertools import count
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Column", "Table", "factorize", "group_codes"]

Column = np.ndarray

# Keep combined group codes comfortably inside int64 when merging key
# columns; past this bound the codes are re-compacted first.
_CODE_COMPACT_BOUND = np.int64(2) ** 62


def factorize(column: np.ndarray) -> tuple[np.ndarray, int]:
    """Integer equality codes for a column.

    Returns ``(codes, bound)``: ``codes[i]`` is a non-negative int64
    with ``codes[i] == codes[j]`` iff the values compare equal, and
    every code is ``< bound``. Code *order* is unspecified (sorted
    rank for typed columns, first-occurrence row for object columns)
    — callers needing first-seen group order derive it from the first
    occurrence rows. NaN values share one code (``np.unique``
    semantics).
    """
    if column.dtype.kind == "O":
        # Hashing beats sorting for object cells: ``dict.setdefault``
        # via ``map`` stays in C, and the default iterator hands each
        # first occurrence its row index — monotone in first-seen
        # order, bounded by the row count.
        seen: dict[Any, int] = {}
        codes = np.fromiter(
            map(seen.setdefault, column.tolist(), count()),
            dtype=np.int64, count=column.size,
        )
        return codes, column.size
    uniques, inverse = np.unique(column, return_inverse=True)
    return inverse.astype(np.int64, copy=False).reshape(-1), len(uniques)


def group_codes(columns: Sequence[np.ndarray], length: int) -> np.ndarray:
    """One int64 code per row, equal iff the rows' key tuples are equal.

    Multi-column keys are merged arithmetically (``code * bound +
    next``), re-compacting through :func:`factorize` whenever the
    combined bound would overflow int64.
    """
    if not columns:
        return np.zeros(length, dtype=np.int64)
    codes, bound = factorize(columns[0])
    for column in columns[1:]:
        nxt, nxt_bound = factorize(column)
        nxt_bound = max(nxt_bound, 1)
        if bound > int(_CODE_COMPACT_BOUND) // nxt_bound:
            codes, bound = factorize(codes)
        codes = codes * nxt_bound + nxt
        bound = max(bound, 1) * nxt_bound
    return codes


def _normalize_column(name: str, values: Any, length: int | None) -> np.ndarray:
    """Coerce ``values`` into a 1-D column array of a sensible dtype."""
    if isinstance(values, np.ndarray):
        array = values
    else:
        materialized = list(values)
        array = np.asarray(materialized)
        if array.dtype.kind in ("U", "S"):
            array = np.asarray(materialized, dtype=object)
        elif array.dtype.kind == "O":
            array = np.asarray(materialized, dtype=object)
    if array.ndim != 1:
        # Sequences of tuples land here; keep them as object cells.
        if isinstance(values, np.ndarray):
            raise ValueError(f"column {name!r} must be 1-D, got shape {array.shape}")
        cells = np.empty(len(values), dtype=object)
        for i, cell in enumerate(values):
            cells[i] = cell
        array = cells
    if length is not None and array.size != length:
        raise ValueError(
            f"column {name!r} has {array.size} rows, expected {length}"
        )
    if array.dtype.kind in ("U", "S"):
        array = array.astype(object)
    return array.copy()


class Table:
    """An ordered mapping of named columns with equal row counts."""

    __slots__ = ("_columns", "_length")

    def __init__(self, columns: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        self._length = 0
        if columns:
            length: int | None = None
            normalized: dict[str, np.ndarray] = {}
            for name, values in columns.items():
                array = _normalize_column(name, values, length)
                length = array.size
                normalized[name] = array
            self._columns = normalized
            self._length = length or 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls, rows: Iterable[Mapping[str, Any]], columns: Sequence[str] | None = None
    ) -> "Table":
        """Build a table from an iterable of row dicts.

        When ``columns`` is omitted, the first row defines the schema and
        every subsequent row must match it exactly.
        """
        materialized = list(rows)
        if not materialized:
            return cls({name: [] for name in columns} if columns else None)
        names = list(columns) if columns is not None else list(materialized[0].keys())
        buffers: dict[str, list[Any]] = {name: [] for name in names}
        for index, row in enumerate(materialized):
            if set(row.keys()) != set(names):
                raise ValueError(
                    f"row {index} keys {sorted(row)} do not match schema {sorted(names)}"
                )
            for name in names:
                buffers[name].append(row[name])
        return cls(buffers)

    @classmethod
    def from_records(cls, records: Iterable[Any], fields: Sequence[str]) -> "Table":
        """Build a table from attribute access on objects (dataclasses)."""
        buffers: dict[str, list[Any]] = {name: [] for name in fields}
        for record in records:
            for name in fields:
                buffers[name].append(getattr(record, name))
        return cls(buffers)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return self._length

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return a read-only view of a column."""
        try:
            column = self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._columns)}"
            ) from None
        view = column.view()
        view.flags.writeable = False
        return view

    def column(self, name: str) -> np.ndarray:
        """Alias of :meth:`__getitem__` for readability at call sites."""
        return self[name]

    def row(self, index: int) -> dict[str, Any]:
        """Return row ``index`` as a plain dict."""
        if not -self._length <= index < self._length:
            raise IndexError(f"row {index} out of range for {self._length} rows")
        return {name: col[index] for name, col in self._columns.items()}

    def iter_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate rows as dicts (convenient, not fast — prefer columns)."""
        for index in range(self._length):
            yield {name: col[index] for name, col in self._columns.items()}

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialize all rows as dicts."""
        return list(self.iter_rows())

    def __repr__(self) -> str:
        cols = ", ".join(self._columns)
        return f"Table({self._length} rows: {cols})"

    def __eq__(self, other: object) -> bool:
        """Exact, NaN-aware equality.

        Float columns compare value-exact (NaN == NaN, no tolerance) —
        this codebase's oracles are byte-equality, and a tolerance here
        would let real float regressions hide inside tests. Callers
        that genuinely want tolerance use :meth:`approx_equal`.
        """
        if not isinstance(other, Table):
            return NotImplemented
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        for name in self.column_names:
            left, right = self._columns[name], other._columns[name]
            if left.dtype.kind == "f" and right.dtype.kind == "f":
                if not np.array_equal(left, right, equal_nan=True):
                    return False
            elif not np.array_equal(left, right):
                return False
        return True

    def approx_equal(self, other: "Table", rtol: float = 1e-5,
                     atol: float = 1e-8) -> bool:
        """Tolerance-based equality for float columns.

        Same schema/length/NaN-position rules as ``==``, but float
        columns compare through ``np.allclose``. For recomputed rates
        that legitimately differ in the last bits; never for oracle
        comparisons.
        """
        if not isinstance(other, Table):
            raise TypeError(f"cannot compare Table with {type(other).__name__}")
        if self.column_names != other.column_names or len(self) != len(other):
            return False
        for name in self.column_names:
            left, right = self._columns[name], other._columns[name]
            if left.dtype.kind == "f" and right.dtype.kind == "f":
                if not np.allclose(left, right, rtol=rtol, atol=atol,
                                   equal_nan=True):
                    return False
            elif not np.array_equal(left, right):
                return False
        return True

    # ------------------------------------------------------------------
    # Transformations (all return new tables)
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "Table":
        """Project onto ``names`` in the given order."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise KeyError(f"no such columns: {missing}")
        return Table({name: self._columns[name] for name in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping``."""
        missing = [name for name in mapping if name not in self._columns]
        if missing:
            raise KeyError(f"no such columns: {missing}")
        return Table(
            {mapping.get(name, name): col for name, col in self._columns.items()}
        )

    def with_column(self, name: str, values: Any) -> "Table":
        """Return a table with ``name`` added or replaced.

        ``values`` may be a sequence/array of row length, a scalar to
        broadcast, or a callable receiving this table and returning the
        column values.
        """
        if callable(values) and not isinstance(values, np.ndarray):
            values = values(self)
        if np.isscalar(values) or values is None:
            values = [values] * self._length
        columns = dict(self._columns)
        columns[name] = _normalize_column(name, values, self._length or None)
        return Table(columns)

    def drop(self, names: Sequence[str]) -> "Table":
        """Return a table without ``names``."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise KeyError(f"no such columns: {missing}")
        dropped = set(names)
        return Table(
            {name: col for name, col in self._columns.items() if name not in dropped}
        )

    def take(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Return the rows at ``indices`` (gather)."""
        index_array = np.asarray(indices, dtype=np.intp)
        return Table({name: col[index_array] for name, col in self._columns.items()})

    def mask(self, predicate: np.ndarray) -> "Table":
        """Return the rows where boolean ``predicate`` is True."""
        mask_array = np.asarray(predicate)
        if mask_array.dtype != bool:
            raise TypeError(f"mask must be boolean, got dtype {mask_array.dtype}")
        if mask_array.size != self._length:
            raise ValueError(
                f"mask has {mask_array.size} entries for {self._length} rows"
            )
        return Table({name: col[mask_array] for name, col in self._columns.items()})

    def filter(self, predicate: Callable[["Table"], np.ndarray]) -> "Table":
        """Return rows where ``predicate(table)`` is True."""
        return self.mask(predicate(self))

    def where_equal(self, **conditions: Any) -> "Table":
        """Return rows where every named column equals the given value."""
        if not conditions:
            return self.take(np.arange(self._length))
        mask = np.ones(self._length, dtype=bool)
        for name, value in conditions.items():
            mask &= self[name] == value
        return self.mask(mask)

    def sort_by(
        self,
        names: str | Sequence[str],
        descending: bool | Sequence[bool] = False,
    ) -> "Table":
        """Stable sort by one or more columns.

        ``descending`` is a single flag applied to every key, or one
        flag per key. Direction is applied *per key inside* the
        lexsort loop, so tied rows always keep their first-seen order
        and a multi-key sort can mix directions — reversing the
        ascending permutation after the fact would reverse ties and
        flip every key at once.
        """
        keys = [names] if isinstance(names, str) else list(names)
        if not keys:
            raise ValueError("sort_by needs at least one column")
        if isinstance(descending, bool):
            flags = [descending] * len(keys)
        else:
            flags = [bool(flag) for flag in descending]
            if len(flags) != len(keys):
                raise ValueError(
                    f"descending has {len(flags)} flags for {len(keys)} keys"
                )
        order = np.arange(self._length)
        # np.lexsort sorts by the *last* key first; apply keys in reverse.
        for name, flag in zip(reversed(keys), reversed(flags)):
            column = self[name][order]
            if flag:
                # Descending with stable ties: sort the *negated sorted
                # ranks* ascending (rank arithmetic works for any
                # comparable dtype, strings included).
                uniques, inverse = np.unique(column, return_inverse=True)
                ranks = inverse.astype(np.int64, copy=False).reshape(-1)
                order = order[np.argsort(len(uniques) - 1 - ranks,
                                         kind="stable")]
            else:
                order = order[np.argsort(column, kind="stable")]
        return self.take(order)

    def head(self, n: int) -> "Table":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._length)))

    def concat(self, other: "Table") -> "Table":
        """Stack ``other`` beneath this table (schemas must match)."""
        if self.column_names != other.column_names:
            raise ValueError(
                f"schemas differ: {self.column_names} vs {other.column_names}"
            )
        if len(self) == 0:
            return other.take(np.arange(len(other)))
        if len(other) == 0:
            return self.take(np.arange(len(self)))
        merged = {}
        for name in self.column_names:
            left, right = self._columns[name], other._columns[name]
            if left.dtype.kind == "O" or right.dtype.kind == "O":
                merged[name] = np.concatenate(
                    [left.astype(object), right.astype(object)]
                )
            else:
                merged[name] = np.concatenate([left, right])
        return Table(merged)

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of a column."""
        return np.unique(self[name])

    def value_counts(self, name: str) -> dict[Any, int]:
        """Return ``{value: count}`` for a column, descending by count."""
        values, counts = np.unique(self[name], return_counts=True)
        order = np.argsort(-counts, kind="stable")
        return {values[i]: int(counts[i]) for i in order}

    def group_by(self, names: str | Sequence[str]) -> "GroupBy":
        """Start a split/apply/combine over ``names``."""
        from repro.tabular.groupby import GroupBy

        keys = [names] if isinstance(names, str) else list(names)
        return GroupBy(self, keys)
