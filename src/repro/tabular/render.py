"""Fixed-width text rendering of tables.

The benchmark harness prints the same rows the paper's tables report;
this renderer keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.tabular.frame import Table

__all__ = ["render_table"]


def _format_cell(value: Any, float_format: str) -> str:
    if isinstance(value, (float, np.floating)):
        if np.isnan(value):
            return "-"
        return format(float(value), float_format)
    if isinstance(value, (bool, np.bool_)):
        return "yes" if value else "no"
    if isinstance(value, (int, np.integer)):
        return f"{int(value):,}"
    return str(value)


def render_table(
    table: Table,
    title: str | None = None,
    float_format: str = ".2f",
    max_rows: int | None = None,
) -> str:
    """Render ``table`` as an aligned text block."""
    shown = table if max_rows is None else table.head(max_rows)
    names = list(shown.column_names)
    grid = [names]
    for row in shown.iter_rows():
        grid.append([_format_cell(row[name], float_format) for name in names])
    widths = [max(len(line[i]) for line in grid) for i in range(len(names))]

    def line(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(grid[0]))
    parts.append("  ".join("-" * width for width in widths))
    parts.extend(line(cells) for cells in grid[1:])
    if max_rows is not None and len(table) > max_rows:
        parts.append(f"… {len(table) - max_rows} more rows")
    return "\n".join(parts)
