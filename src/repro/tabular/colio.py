"""Compact binary column serialization.

The on-disk format backing :class:`~repro.analysis.incremental
.WaveRowCache` format 2, and a general codec for column data: a small
JSON header describing the layout, followed by raw typed buffers —
numbers as fixed-width little-endian machine words instead of decimal
text, strings as one UTF-8 blob with an offsets array, and a packed
validity bitmask wherever ``None`` appears. Values that fit none of
those (dicts, mixed types, oversized ints) fall back to an embedded
JSON column, so any JSON-representable value round-trips.

Layout::

    MAGIC (8 bytes) | header length (uint32 LE) | header JSON (UTF-8)
    | column buffers, concatenated in header order

Per column the buffers are ``[validity bitmask]`` (only when the spec
says so), then kind-specific data: the value buffer for ``"buffer"``
columns, an ``int64 × (length + 1)`` offsets array plus the UTF-8 blob
for ``"utf8"`` columns, or a JSON array for ``"json"`` columns. The
decoder restores plain Python values (``int``/``float``/``bool``/
``str``/``None``/...), bit-exact for floats, so a decoded row hashes
identically to the row that was encoded.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "MAGIC",
    "decode_columns",
    "decode_row_document",
    "encode_columns",
    "encode_row_document",
]

MAGIC = b"RPCOLv2\n"
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1
_BUFFER_DTYPES = {"<i8": np.dtype("<i8"), "<f8": np.dtype("<f8"),
                  "|b1": np.dtype("|b1")}


def _pack_validity(valid: Sequence[bool]) -> bytes:
    return np.packbits(np.asarray(valid, dtype=bool)).tobytes()


def _unpack_validity(buffer: bytes, length: int) -> np.ndarray:
    bits = np.unpackbits(np.frombuffer(buffer, dtype=np.uint8),
                         count=length)
    return bits.astype(bool)


def _classify(values: list[Any]) -> str:
    """Pick the tightest storable dtype for a list of Python values."""
    present = [value for value in values if value is not None]
    if not present:
        return "<i8"  # all-None column: any buffer dtype works
    if all(type(value) is bool for value in present):
        return "|b1"
    if all(type(value) is int for value in present):
        if all(_INT64_MIN <= value <= _INT64_MAX for value in present):
            return "<i8"
        return "json"
    if all(type(value) is float for value in present):
        return "<f8"
    if all(type(value) is str for value in present):
        return "utf8"
    return "json"


def _as_value_list(column: Any) -> list[Any]:
    if isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


def encode_columns(columns: Mapping[str, Iterable[Any]], length: int,
                   meta: Any = None) -> bytes:
    """Serialize named columns (all of ``length`` values) to bytes.

    Columns may be numpy arrays or plain sequences; ``meta`` is any
    JSON-serializable value stored in the header and returned verbatim
    by :func:`decode_columns`.
    """
    specs: list[dict[str, Any]] = []
    buffers: list[bytes] = []
    for name, column in columns.items():
        values = _as_value_list(column)
        if len(values) != length:
            raise ValueError(
                f"column {name!r} has {len(values)} values, expected {length}")
        kind = _classify(values)
        valid = [value is not None for value in values]
        has_validity = not all(valid)
        spec: dict[str, Any] = {"name": name}
        if kind == "json":
            payload = json.dumps(values, ensure_ascii=False,
                                 separators=(",", ":")).encode("utf-8")
            spec.update(kind="json", nbytes=len(payload))
            buffers.append(payload)
        elif kind == "utf8":
            spec.update(kind="utf8", validity=has_validity)
            if has_validity:
                buffers.append(_pack_validity(valid))
            encoded = [b"" if value is None else value.encode("utf-8")
                       for value in values]
            sizes = np.fromiter((len(piece) for piece in encoded),
                                dtype="<i8", count=length)
            offsets = np.zeros(length + 1, dtype="<i8")
            np.cumsum(sizes, out=offsets[1:])
            buffers.append(offsets.tobytes())
            buffers.append(b"".join(encoded))
        else:
            spec.update(kind="buffer", dtype=kind, validity=has_validity)
            if has_validity:
                buffers.append(_pack_validity(valid))
            dtype = _BUFFER_DTYPES[kind]
            filler = False if kind == "|b1" else 0
            dense = [filler if value is None else value for value in values]
            buffers.append(np.asarray(dense, dtype=dtype).tobytes())
        specs.append(spec)
    header = json.dumps(
        {"meta": meta, "length": length, "columns": specs},
        ensure_ascii=False, separators=(",", ":")).encode("utf-8")
    return b"".join([MAGIC, struct.pack("<I", len(header)), header, *buffers])


def _take(data: bytes, offset: int, nbytes: int) -> tuple[bytes, int]:
    end = offset + nbytes
    if end > len(data):
        raise ValueError("column payload truncated")
    return data[offset:end], end


def decode_columns(data: bytes) -> tuple[Any, int, dict[str, list[Any]]]:
    """Inverse of :func:`encode_columns`: ``(meta, length, columns)``.

    Columns come back as lists of plain Python values. Raises
    ``ValueError`` on any structural damage (bad magic, truncation,
    malformed header).
    """
    if data[:len(MAGIC)] != MAGIC:
        raise ValueError("not a column payload (bad magic)")
    offset = len(MAGIC)
    raw_len, offset = _take(data, offset, 4)
    header_bytes, offset = _take(data, offset, struct.unpack("<I", raw_len)[0])
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed column header: {exc}") from exc
    if (not isinstance(header, dict)
            or not isinstance(header.get("length"), int)
            or not isinstance(header.get("columns"), list)):
        raise ValueError("malformed column header")
    length = header["length"]
    columns: dict[str, list[Any]] = {}
    for spec in header["columns"]:
        if not isinstance(spec, dict) or not isinstance(spec.get("name"), str):
            raise ValueError("malformed column spec")
        name, kind = spec["name"], spec.get("kind")
        valid: np.ndarray | None = None
        if spec.get("validity"):
            mask_bytes, offset = _take(data, offset, (length + 7) // 8)
            valid = _unpack_validity(mask_bytes, length)
        if kind == "json":
            nbytes = spec.get("nbytes")
            if not isinstance(nbytes, int) or nbytes < 0:
                raise ValueError("malformed json column spec")
            payload, offset = _take(data, offset, nbytes)
            try:
                values = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(f"malformed json column: {exc}") from exc
            if not isinstance(values, list) or len(values) != length:
                raise ValueError("json column length mismatch")
        elif kind == "utf8":
            raw_offsets, offset = _take(data, offset, 8 * (length + 1))
            offsets = np.frombuffer(raw_offsets, dtype="<i8")
            if (offsets[0] != 0 or np.any(np.diff(offsets) < 0)):
                raise ValueError("malformed utf8 offsets")
            blob, offset = _take(data, offset, int(offsets[-1]))
            try:
                values = [
                    blob[offsets[i]:offsets[i + 1]].decode("utf-8")
                    for i in range(length)
                ]
            except UnicodeDecodeError as exc:
                raise ValueError(f"malformed utf8 column: {exc}") from exc
        elif kind == "buffer":
            dtype = _BUFFER_DTYPES.get(spec.get("dtype"))
            if dtype is None:
                raise ValueError(f"unknown buffer dtype {spec.get('dtype')!r}")
            raw, offset = _take(data, offset, dtype.itemsize * length)
            values = np.frombuffer(raw, dtype=dtype).tolist()
        else:
            raise ValueError(f"unknown column kind {kind!r}")
        if valid is not None:
            values = [value if ok else None
                      for value, ok in zip(values, valid.tolist())]
        columns[name] = values
    if offset != len(data):
        raise ValueError("trailing bytes after column payload")
    return header.get("meta"), length, columns


# ----------------------------------------------------------------------
# Row documents — one record (or its absence) per payload
# ----------------------------------------------------------------------

def encode_row_document(row: Mapping[str, Any] | None,
                        meta: Any = None) -> bytes:
    """Serialize one row dict (or ``None``) with attached metadata.

    Each field becomes a length-1 column, so numbers are stored as
    machine words, not decimal text. A ``None`` row — a real cached
    value, distinct from a cache miss — is encoded with zero columns.
    """
    if row is None:
        return encode_columns({}, 0, {"row": None, "meta": meta})
    columns = {name: [value] for name, value in row.items()}
    return encode_columns(columns, 1, {"row": "present", "meta": meta})


def decode_row_document(data: bytes) -> tuple[Any, dict[str, Any] | None]:
    """Inverse of :func:`encode_row_document`: ``(meta, row_or_None)``."""
    wrapper, length, columns = decode_columns(data)
    if not isinstance(wrapper, dict) or "row" not in wrapper:
        raise ValueError("not a row document")
    if wrapper["row"] is None:
        if length != 0 or columns:
            raise ValueError("malformed None-row document")
        return wrapper.get("meta"), None
    if wrapper["row"] != "present" or length != 1:
        raise ValueError("malformed row document")
    return wrapper.get("meta"), {name: values[0]
                                 for name, values in columns.items()}
