"""Split/apply/combine over :class:`~repro.tabular.Table`.

The analysis pipeline's dominant access pattern is "group the audit
rows by census block group, compute a rate per group, then roll the
groups up by state or ISP". :class:`GroupBy` supports both steps:
named-aggregation via :meth:`agg` and arbitrary per-group reduction via
:meth:`apply`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.tabular.frame import Table

__all__ = ["GroupBy"]

Aggregation = tuple[str, Callable[[np.ndarray], Any]]


class GroupBy:
    """Lazy grouping of a table by one or more key columns."""

    def __init__(self, table: Table, keys: Sequence[str]):
        if not keys:
            raise ValueError("group_by needs at least one key column")
        for key in keys:
            if key not in table:
                raise KeyError(f"no column {key!r} to group by")
        self._table = table
        self._keys = list(keys)
        self._index = self._build_index()

    def _build_index(self) -> dict[tuple[Any, ...], np.ndarray]:
        """Map each key tuple to the row indices holding it."""
        columns = [self._table[key] for key in self._keys]
        buckets: dict[tuple[Any, ...], list[int]] = {}
        for row_index in range(len(self._table)):
            key = tuple(column[row_index] for column in columns)
            buckets.setdefault(key, []).append(row_index)
        return {
            key: np.asarray(indices, dtype=np.intp)
            for key, indices in buckets.items()
        }

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    @property
    def keys(self) -> tuple[str, ...]:
        """The grouping column names."""
        return tuple(self._keys)

    def groups(self) -> Iterator[tuple[tuple[Any, ...], Table]]:
        """Iterate ``(key_tuple, sub_table)`` pairs in first-seen order."""
        for key, indices in self._index.items():
            yield key, self._table.take(indices)

    def group(self, *key: Any) -> Table:
        """Return the sub-table for one key tuple."""
        lookup = tuple(key)
        if lookup not in self._index:
            raise KeyError(f"no group {lookup!r}")
        return self._table.take(self._index[lookup])

    def size(self) -> Table:
        """Return a table of group sizes (columns: keys + ``count``)."""
        rows = []
        for key, indices in self._index.items():
            row = dict(zip(self._keys, key))
            row["count"] = int(indices.size)
            rows.append(row)
        return Table.from_rows(rows, columns=[*self._keys, "count"])

    def agg(self, **aggregations: Aggregation) -> Table:
        """Aggregate columns per group.

        Each keyword is an output column name mapped to a
        ``(source_column, reducer)`` pair::

            table.group_by("state").agg(
                served=("is_served", np.sum),
                queried=("is_served", len),
            )
        """
        if not aggregations:
            raise ValueError("agg needs at least one aggregation")
        for name, (source, _) in aggregations.items():
            if source not in self._table:
                raise KeyError(f"aggregation {name!r} reads missing column {source!r}")
        rows = []
        for key, indices in self._index.items():
            row: dict[str, Any] = dict(zip(self._keys, key))
            for name, (source, reducer) in aggregations.items():
                row[name] = reducer(self._table[source][indices])
            rows.append(row)
        return Table.from_rows(rows, columns=[*self._keys, *aggregations])

    def apply(self, func: Callable[[Table], Mapping[str, Any]]) -> Table:
        """Reduce each group with ``func`` returning a dict of outputs."""
        rows = []
        output_names: list[str] | None = None
        for key, indices in self._index.items():
            result = dict(func(self._table.take(indices)))
            overlap = set(result) & set(self._keys)
            if overlap:
                raise ValueError(f"apply result overwrites key columns {sorted(overlap)}")
            if output_names is None:
                output_names = list(result)
            row: dict[str, Any] = dict(zip(self._keys, key))
            row.update(result)
            rows.append(row)
        if output_names is None:
            return Table({key: [] for key in self._keys})
        return Table.from_rows(rows, columns=[*self._keys, *output_names])
